//! MUPOD-rs: multi-objective precision optimization of deep neural
//! networks for edge devices.
//!
//! A from-scratch Rust reproduction of Ho, Vaddi & Wong, *"Multi-
//! objective Precision Optimization of Deep Neural Networks for Edge
//! Devices"*, DATE 2019 — together with every substrate the method
//! needs: a CNN inference engine with error-injection hooks, the eight
//! evaluated network topologies, fixed-point quantization, a
//! simplex-constrained optimizer, hardware cost models and the
//! search-based baselines the paper compares against.
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `mupod-core` | profiler, σ-search, multi-objective allocator, end-to-end [`core::PrecisionOptimizer`] |
//! | [`nn`] | `mupod-nn` | inference graph, taps, suffix replay |
//! | [`models`] | `mupod-models` | AlexNet … MobileNet at reduced scale |
//! | [`quant`] | `mupod-quant` | `I.F` formats, quantizers, allocations |
//! | [`tensor`] | `mupod-tensor` | tensors, conv/pool/GEMM kernels |
//! | [`data`] | `mupod-data` | synthetic labelled image generator |
//! | [`optim`] | `mupod-optim` | simplex solvers (the `sqp` substitute) |
//! | [`hw`] | `mupod-hw` | MAC energy, bandwidth, bit-serial models |
//! | [`baselines`] | `mupod-baselines` | Stripes-style search baselines |
//! | [`train`] | `mupod-train` | SGD backprop for genuinely trained networks |
//! | [`stats`] | `mupod-stats` | moments, regression, histograms, RNG |
//! | [`obs`] | `mupod-obs` | spans, counters, histograms, Chrome trace export |
//! | [`runtime`] | `mupod-runtime` | stage supervision (deadlines, retry, cancellation), crash-safe checksummed artifacts, the shared status-code table |
//! | [`serve`] | `mupod-serve` | fault-tolerant batched TCP inference serving: worker pool, admission control, deadlines, graceful drain |
//!
//! # Quickstart
//!
//! ```no_run
//! use mupod::core::{Objective, PrecisionOptimizer};
//! use mupod::data::{Dataset, DatasetSpec};
//! use mupod::models::{calibrate::calibrate_head, ModelKind, ModelScale};
//!
//! let scale = ModelScale::small();
//! let mut net = ModelKind::AlexNet.build(&scale, 42);
//! let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
//! let data = Dataset::generate(&spec, 7, 200);
//! calibrate_head(&mut net, &data, 0.1).unwrap();
//!
//! let result = PrecisionOptimizer::new(&net, &data)
//!     .layers(ModelKind::AlexNet.analyzable_layers(&net))
//!     .relative_accuracy_loss(0.01)
//!     .run(Objective::Bandwidth)
//!     .unwrap();
//! for (fmt, bits) in result.allocation.layers().iter().zip(result.allocation.bits()) {
//!     println!("{:>8}  {}  ({} bits)", fmt.layer, fmt.format, bits);
//! }
//! ```
//!
//! See `DESIGN.md` for the substitution table (what stands in for
//! ImageNet, Caffe weights, and the TSMC 40 nm MAC) and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and
//! figure.

pub use mupod_baselines as baselines;
pub use mupod_core as core;
pub use mupod_data as data;
pub use mupod_hw as hw;
pub use mupod_models as models;
pub use mupod_nn as nn;
pub use mupod_obs as obs;
pub use mupod_optim as optim;
pub use mupod_quant as quant;
pub use mupod_runtime as runtime;
pub use mupod_serve as serve;
pub use mupod_stats as stats;
pub use mupod_tensor as tensor;
pub use mupod_train as train;
