//! Cross-crate property-based tests (proptest).

use mupod::optim::{is_in_simplex, project_to_simplex_lb, FnObjective, ProjectedGradient};
use mupod::quant::{effective_bitwidth, FixedPointFormat};
use mupod::stats::{LinearFit, RunningStats, SeededRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rounding never errs by more than Δ for in-range values.
    #[test]
    fn quantize_error_bounded_by_delta(
        x in -1000.0f64..1000.0,
        int_bits in 11i32..16,
        frac_bits in -2i32..12,
    ) {
        let fmt = FixedPointFormat::new(int_bits, frac_bits);
        prop_assume!(x.abs() < fmt.max_magnitude() - fmt.step());
        let q = fmt.quantize(x);
        prop_assert!((q - x).abs() <= fmt.delta() + 1e-12);
        // Quantized values lie on the grid.
        let steps = q / fmt.step();
        prop_assert!((steps - steps.round()).abs() < 1e-9);
    }

    /// Quantization is monotone: x ≤ y ⇒ q(x) ≤ q(y).
    #[test]
    fn quantize_is_monotone(
        a in -500.0f64..500.0,
        b in -500.0f64..500.0,
        frac_bits in -2i32..10,
    ) {
        let fmt = FixedPointFormat::new(12, frac_bits);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fmt.quantize(lo) <= fmt.quantize(hi) + 1e-12);
    }

    /// Simplex projection always lands on the constraint set and is
    /// idempotent.
    #[test]
    fn simplex_projection_feasible_and_idempotent(
        v in prop::collection::vec(-10.0f64..10.0, 1..12),
        lb_scale in 0.0f64..0.9,
    ) {
        let lb = lb_scale / v.len() as f64;
        let mut p = v.clone();
        project_to_simplex_lb(&mut p, lb);
        prop_assert!(is_in_simplex(&p, lb, 1e-7), "not feasible: {p:?}");
        let mut q = p.clone();
        project_to_simplex_lb(&mut q, lb);
        for (x, y) in p.iter().zip(&q) {
            prop_assert!((x - y).abs() < 1e-9, "not idempotent");
        }
    }

    /// The PGD solution never exceeds the uniform point's objective.
    #[test]
    fn pgd_no_worse_than_uniform(
        targets in prop::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let dim = targets.len();
        let t = targets.clone();
        let obj = FnObjective::new(dim, move |xi: &[f64]| {
            xi.iter().zip(&t).map(|(x, t)| (x - t).powi(2)).sum()
        });
        let uniform = vec![1.0 / dim as f64; dim];
        let uniform_value: f64 = uniform
            .iter()
            .zip(&targets)
            .map(|(x, t)| (x - t).powi(2))
            .sum();
        let sol = ProjectedGradient::default().minimize(&obj);
        prop_assert!(sol.value <= uniform_value + 1e-9);
        prop_assert!(is_in_simplex(&sol.xi, 0.0, 1e-6));
    }

    /// Effective bitwidth is a weighted mean: bounded by min/max bits.
    #[test]
    fn effective_bitwidth_bounded(
        bits in prop::collection::vec(1u32..24, 1..20),
        weights in prop::collection::vec(0.1f64..100.0, 1..20),
    ) {
        let n = bits.len().min(weights.len());
        let bits = &bits[..n];
        let weights = &weights[..n];
        let eff = effective_bitwidth(bits, weights);
        let lo = *bits.iter().min().unwrap() as f64;
        let hi = *bits.iter().max().unwrap() as f64;
        prop_assert!(eff >= lo - 1e-9 && eff <= hi + 1e-9);
    }

    /// Uniform-noise samples respect their half-width and have the
    /// Widrow variance (on aggregate).
    #[test]
    fn uniform_noise_bounds(seed in 0u64..1000, delta in 1e-6f64..100.0) {
        let mut rng = SeededRng::new(seed);
        let mut s = RunningStats::new();
        for _ in 0..2000 {
            let v = rng.symmetric_uniform(delta);
            prop_assert!(v.abs() <= delta);
            s.push(v);
        }
        let expected = delta / 3.0f64.sqrt();
        prop_assert!((s.population_std() - expected).abs() / expected < 0.15);
    }

    /// Regression through noiseless collinear points is exact.
    #[test]
    fn regression_recovers_exact_line(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in prop::collection::vec(-50.0f64..50.0, 3..30),
    ) {
        // Need spread in x.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-3);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!(
            (fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs())
        );
    }

    /// Streaming merge equals sequential accumulation.
    #[test]
    fn running_stats_merge_associative(
        a in prop::collection::vec(-1e3f64..1e3, 0..50),
        b in prop::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut sa = RunningStats::new();
        sa.extend(a.iter().copied());
        let mut sb = RunningStats::new();
        sb.extend(b.iter().copied());
        sa.merge(&sb);

        let mut seq = RunningStats::new();
        seq.extend(a.iter().chain(b.iter()).copied());
        prop_assert_eq!(sa.count(), seq.count());
        prop_assert!((sa.mean() - seq.mean()).abs() < 1e-6);
        prop_assert!(
            (sa.population_variance() - seq.population_variance()).abs()
                < 1e-6 * (1.0 + seq.population_variance())
        );
    }
}
