//! Integration tests: the full pipeline across crates.

use mupod::baselines::uniform_search;
use mupod::core::{
    AccuracyEvaluator, AccuracyMode, Objective, PrecisionOptimizer, Profile, ProfileConfig,
};
use mupod::data::{Dataset, DatasetSpec};
use mupod::hw::{bandwidth, MacEnergyModel};
use mupod::models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod::nn::inventory::LayerInventory;
use mupod::nn::Network;

fn prepared(kind: ModelKind, seed: u64) -> (Network, Dataset, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = kind.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let calib = Dataset::generate(&spec, seed ^ 1, 96);
    let eval = Dataset::generate(&spec, seed ^ 2, 48);
    calibrate_head(&mut net, &calib, 0.1).expect("calibration");
    (net, calib, eval)
}

fn quick_profile_config() -> ProfileConfig {
    ProfileConfig {
        n_deltas: 10,
        repeats: 2,
        ..Default::default()
    }
}

#[test]
fn pipeline_meets_constraint_out_of_sample() {
    // Optimize against the calibration set, validate on a *disjoint*
    // evaluation set — guarding against the over-fitting the paper
    // levels at search-based methods.
    let (net, calib, eval) = prepared(ModelKind::AlexNet, 0xE2E);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let result = PrecisionOptimizer::new(&net, &calib)
        .layers(layers.clone())
        .relative_accuracy_loss(0.05)
        .profile_config(quick_profile_config())
        .profile_images(8)
        .run(Objective::Bandwidth)
        .expect("pipeline");

    let ev = AccuracyEvaluator::new(&net, &eval, AccuracyMode::FpAgreement);
    let out_of_sample = ev.accuracy_of_allocation(&layers, &result.allocation);
    let target = 0.95;
    // Allow finite-sample wiggle (48 images) on top of the budget.
    assert!(
        out_of_sample >= target - 0.08,
        "out-of-sample accuracy {out_of_sample} too far below {target}"
    );
}

#[test]
fn analytic_allocation_not_worse_than_uniform_baseline() {
    let (net, calib, _) = prepared(ModelKind::Nin, 0xBEE);
    let layers = ModelKind::Nin.analyzable_layers(&net);
    let inventory = LayerInventory::measure(&net, calib.images().iter().cloned());
    let ev = AccuracyEvaluator::new(&net, &calib, AccuracyMode::FpAgreement);
    let target = ev.fp_accuracy() * 0.95;

    let baseline = uniform_search(&ev, &inventory, &layers, target, 16);
    let result = PrecisionOptimizer::new(&net, &calib)
        .layers(layers.clone())
        .relative_accuracy_loss(0.05)
        .profile_config(quick_profile_config())
        .profile_images(8)
        .run(Objective::Bandwidth)
        .expect("pipeline");

    let inputs: Vec<u64> = layers
        .iter()
        .map(|&id| inventory.find(id).unwrap().input_elems)
        .collect();
    let bw_base = bandwidth::total_input_bits(&inputs, &baseline.allocation.bits());
    let bw_opt = bandwidth::total_input_bits(&inputs, &result.allocation.bits());
    // The analytical allocation should be competitive: no more than a
    // small overhead over the uniform-search baseline, usually better.
    assert!(
        bw_opt <= bw_base * 1.15,
        "optimized traffic {bw_opt} far above baseline {bw_base}"
    );
}

#[test]
fn profile_roundtrips_through_csv_and_reoptimizes() {
    let (net, calib, _) = prepared(ModelKind::AlexNet, 0xC51);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let first = PrecisionOptimizer::new(&net, &calib)
        .layers(layers.clone())
        .relative_accuracy_loss(0.05)
        .profile_config(quick_profile_config())
        .profile_images(8)
        .skip_validation()
        .run(Objective::Bandwidth)
        .expect("first run");

    // Persist the profile, reload it, and run the MAC objective from it.
    let mut buf = Vec::new();
    first.profile.save_csv(&mut buf).expect("save");
    let reloaded = Profile::load_csv(buf.as_slice()).expect("load");
    assert_eq!(reloaded.len(), first.profile.len());

    let second = PrecisionOptimizer::new(&net, &calib)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .with_profile(reloaded)
        .skip_validation()
        .run(Objective::MacEnergy)
        .expect("second run");
    assert_eq!(second.allocation.len(), first.allocation.len());
}

#[test]
fn energy_model_sees_savings_from_lower_loss_budget() {
    // A looser accuracy budget must never cost *more* energy.
    let (net, calib, _) = prepared(ModelKind::AlexNet, 0xEE);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let inventory = LayerInventory::measure(&net, calib.images().iter().cloned());
    let macs: Vec<u64> = layers
        .iter()
        .map(|&id| inventory.find(id).unwrap().macs)
        .collect();

    let base = PrecisionOptimizer::new(&net, &calib)
        .layers(layers.clone())
        .relative_accuracy_loss(0.01)
        .profile_config(quick_profile_config())
        .profile_images(8)
        .skip_validation()
        .run(Objective::MacEnergy)
        .expect("tight run");
    let loose = PrecisionOptimizer::new(&net, &calib)
        .layers(layers)
        .relative_accuracy_loss(0.10)
        .with_profile(base.profile.clone())
        .skip_validation()
        .run(Objective::MacEnergy)
        .expect("loose run");

    let model = MacEnergyModel::dwip_40nm();
    let e_tight = model.network_energy(&macs, &base.allocation.bits(), 8);
    let e_loose = model.network_energy(&macs, &loose.allocation.bits(), 8);
    assert!(
        e_loose <= e_tight * 1.001,
        "loose budget used more energy: {e_loose} vs {e_tight}"
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // Types from different re-exported crates interoperate.
    let fmt = mupod::quant::FixedPointFormat::for_range_and_delta(10.0, 0.1);
    let mut t = mupod::tensor::Tensor::from_vec(&[2], vec![1.234, -5.0]);
    fmt.quantize_tensor(&mut t);
    assert!((t.data()[0] - 1.234).abs() <= fmt.delta() as f32 + 1e-6);

    let sd = mupod::quant::noise_std_for_delta(fmt.delta());
    let mut rng = mupod::stats::SeededRng::new(1);
    let sample = rng.symmetric_uniform(fmt.delta());
    assert!(sample.abs() <= fmt.delta());
    assert!(sd > 0.0);
}
