//! Integration: SGD training feeding the precision pipeline — the
//! closest end-to-end analogue of the paper's setting (a genuinely
//! trained network, then analytical precision allocation).

use mupod::core::{Objective, PrecisionOptimizer, ProfileConfig};
use mupod::data::{Dataset, DatasetSpec};
use mupod::nn::{Network, NetworkBuilder};
use mupod::stats::SeededRng;
use mupod::tensor::conv::Conv2dParams;
use mupod::tensor::pool::Pool2dParams;
use mupod::tensor::Tensor;
use mupod::train::{train, SgdConfig};

fn random_tensor(rng: &mut SeededRng, dims: &[usize], std: f64) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(
        dims,
        (0..n).map(|_| rng.gaussian(0.0, std) as f32).collect(),
    )
}

fn small_cnn(seed: u64, classes: usize) -> Network {
    let mut rng = SeededRng::new(seed);
    let mut b = NetworkBuilder::new(&[3, 12, 12]);
    let input = b.input();
    let c1 = b.conv2d(
        "conv1",
        input,
        Conv2dParams::new(3, 6, 3, 1, 1),
        random_tensor(&mut rng, &[6, 3, 3, 3], 0.15),
        vec![0.0; 6],
    );
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool("pool1", r1, Pool2dParams::new(2, 2, 0));
    let c2 = b.conv2d(
        "conv2",
        p1,
        Conv2dParams::new(6, 10, 3, 1, 1),
        random_tensor(&mut rng, &[10, 6, 3, 3], 0.1),
        vec![0.0; 10],
    );
    let r2 = b.relu("relu2", c2);
    let gap = b.global_avg_pool("gap", r2);
    let fc = b.fully_connected(
        "fc",
        gap,
        random_tensor(&mut rng, &[classes, 10], 0.3),
        vec![0.0; classes],
    );
    b.build(fc).unwrap()
}

#[test]
fn trained_network_optimizes_and_validates() {
    let classes = 4;
    let mut net = small_cnn(0x7101, classes);
    let spec = DatasetSpec {
        amplitude: 40.0,
        noise_std: 8.0,
        ..DatasetSpec::new(classes, 3, 12, 12).with_class_seed(21)
    };
    let train_set = Dataset::generate(&spec, 22, 96);
    let eval_set = Dataset::generate(&spec, 23, 48);

    let report = train(
        &mut net,
        &train_set,
        &SgdConfig {
            learning_rate: 2e-4,
            epochs: 10,
            ..Default::default()
        },
    )
    .expect("training succeeds");
    assert!(report.final_loss < report.initial_loss);

    let result = PrecisionOptimizer::new(&net, &eval_set)
        .relative_accuracy_loss(0.05)
        .profile_config(ProfileConfig {
            n_deltas: 10,
            repeats: 2,
            ..Default::default()
        })
        .profile_images(8)
        .run(Objective::MacEnergy)
        .expect("pipeline on trained network");

    // The trained network tolerates aggressive quantization: effective
    // bitwidth well below fp32, accuracy within budget.
    let rho = vec![1.0; result.allocation.len()];
    let eff = result.allocation.effective_bitwidth(&rho);
    assert!(eff < 16.0, "effective bitwidth {eff} suspiciously high");
    assert!(
        result.validated_accuracy >= result.fp_accuracy * 0.95 - 0.1,
        "validated {} vs fp {}",
        result.validated_accuracy,
        result.fp_accuracy
    );
}

#[test]
fn sigma_budget_scales_with_logit_margins() {
    // Scale invariance: shrinking the classifier's logits by a factor c
    // shrinks the tolerable output error σ* by roughly the same factor
    // (the decision boundaries move proportionally), while the final
    // *allocation* stays almost unchanged — λ_K shrinks by c too, so
    // Eq. 7's Δ grants cancel the scale. This is why the reproduction's
    // smaller-logit probe heads still yield paper-like bitwidths.
    let classes = 4;
    let spec = DatasetSpec {
        amplitude: 40.0,
        noise_std: 8.0,
        ..DatasetSpec::new(classes, 3, 12, 12).with_class_seed(31)
    };
    let train_set = Dataset::generate(&spec, 32, 96);
    let eval_set = Dataset::generate(&spec, 33, 48);

    let mut trained = small_cnn(0x7102, classes);
    train(
        &mut trained,
        &train_set,
        &SgdConfig {
            learning_rate: 2e-4,
            epochs: 10,
            ..Default::default()
        },
    )
    .expect("training succeeds");

    // A clone with 10x smaller logits (same argmax everywhere).
    let mut scaled = trained.clone();
    let fc = scaled.find("fc").unwrap();
    scaled.update_layer_weights(fc, |w, b| {
        for v in w.data_mut() {
            *v *= 0.1;
        }
        for v in b.iter_mut() {
            *v *= 0.1;
        }
    });

    let run = |net: &Network| {
        PrecisionOptimizer::new(net, &eval_set)
            .relative_accuracy_loss(0.05)
            .profile_config(ProfileConfig {
                n_deltas: 10,
                repeats: 2,
                ..Default::default()
            })
            .profile_images(8)
            .skip_validation()
            .run(Objective::Unweighted)
            .expect("pipeline")
    };
    let full = run(&trained);
    let small = run(&scaled);
    let ratio = small.sigma.sigma / full.sigma.sigma;
    assert!(
        (0.02..0.6).contains(&ratio),
        "σ should shrink with the logits: ratio {ratio}"
    );
    // The allocations differ by at most ~1 bit per layer on average.
    let rho = vec![1.0; full.allocation.len()];
    let e_full = full.allocation.effective_bitwidth(&rho);
    let e_small = small.allocation.effective_bitwidth(&rho);
    assert!(
        (e_full - e_small).abs() < 1.5,
        "allocation should be scale-invariant: {e_full} vs {e_small}"
    );
}
