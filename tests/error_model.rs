//! Integration tests of the paper's statistical error model (§II–§IV)
//! against the real inference engine.

use mupod::data::{Dataset, DatasetSpec};
use mupod::models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod::nn::tap::UniformNoiseTap;
use mupod::nn::{Network, NodeId};
use mupod::quant::{delta_for_noise_std, noise_std_for_delta, FixedPointFormat};
use mupod::stats::{RunningStats, SeededRng};
use std::collections::HashMap;

fn setup(kind: ModelKind, seed: u64) -> (Network, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = kind.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let data = Dataset::generate(&spec, seed ^ 5, 24);
    calibrate_head(&mut net, &data, 0.1).expect("calibration");
    (net, data)
}

/// σ of the output error when injecting `deltas` into the given layers.
fn injected_output_sigma(
    net: &Network,
    data: &Dataset,
    deltas: &HashMap<NodeId, f64>,
    seed: u64,
) -> f64 {
    // Several independent noise draws per image: per-image logit errors
    // are correlated (one injected noise field propagates to all logits),
    // so extra repeats — not just extra logits — are what actually shrink
    // the σ estimator's variance.
    const REPEATS: u64 = 6;
    let root = SeededRng::new(seed);
    let mut stats = RunningStats::new();
    for (i, img) in data.images().iter().enumerate() {
        let base = net.forward(img);
        for rep in 0..REPEATS {
            let mut tap = UniformNoiseTap::new(deltas.clone(), root.fork(i as u64 * REPEATS + rep));
            let noisy = net.forward_tapped(img, &mut tap);
            for (a, b) in net
                .output(&noisy)
                .data()
                .iter()
                .zip(net.output(&base).data())
            {
                stats.push((a - b) as f64);
            }
        }
    }
    stats.population_std()
}

#[test]
fn variance_additivity_across_layers_eq6() {
    // Eq. 6: independent per-layer error sources add in variance at the
    // output. Inject at two layers separately, then together — the
    // combined variance must be close to the sum.
    let (net, data) = setup(ModelKind::AlexNet, 0xADD);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let (a, b) = (layers[1], layers[3]);
    let delta = 0.4;

    let sigma_a = injected_output_sigma(&net, &data, &[(a, delta)].into_iter().collect(), 11);
    let sigma_b = injected_output_sigma(&net, &data, &[(b, delta)].into_iter().collect(), 22);
    let sigma_ab = injected_output_sigma(
        &net,
        &data,
        &[(a, delta), (b, delta)].into_iter().collect(),
        33,
    );

    let predicted = (sigma_a.powi(2) + sigma_b.powi(2)).sqrt();
    let rel_err = (sigma_ab - predicted).abs() / predicted;
    assert!(
        rel_err < 0.25,
        "variance additivity violated: combined {sigma_ab}, predicted {predicted}"
    );
}

#[test]
fn quantization_noise_matches_widrow_model() {
    // §II-A: real rounding error of a fixed-point format behaves like
    // U[-Δ, Δ] noise with σ = Δ/√3 — measured on real activations.
    let (net, data) = setup(ModelKind::Nin, 0x91D);
    let layers = ModelKind::Nin.analyzable_layers(&net);
    let layer = layers[4];
    let producer = net.node(layer).inputs[0];

    let fmt = FixedPointFormat::new(10, 4);
    let mut err_stats = RunningStats::new();
    for img in data.images() {
        let acts = net.forward(img);
        let x = acts.get(producer);
        for &v in x.data() {
            if v != 0.0 {
                let q = fmt.quantize_f32(v);
                err_stats.push((q - v) as f64);
            }
        }
    }
    let measured = err_stats.population_std();
    let modelled = noise_std_for_delta(fmt.delta());
    let rel = (measured - modelled).abs() / modelled;
    assert!(
        rel < 0.15,
        "rounding σ {measured} deviates from Widrow model {modelled}"
    );
    // Mean rounding error is approximately zero.
    assert!(err_stats.mean().abs() < 0.2 * modelled);
}

#[test]
fn relu_preserves_linear_error_scaling() {
    // §III-C: scaling the injected Δ scales the output error σ linearly
    // even through ReLU/pool stacks (the basis of Eq. 5).
    let (net, data) = setup(ModelKind::AlexNet, 0x4E1);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let layer = layers[0];
    let s1 = injected_output_sigma(&net, &data, &[(layer, 0.05)].into_iter().collect(), 7);
    let s2 = injected_output_sigma(&net, &data, &[(layer, 0.10)].into_iter().collect(), 7);
    let ratio = s2 / s1;
    assert!(
        (ratio - 2.0).abs() < 0.3,
        "doubling Δ scaled σ by {ratio}, expected ≈ 2"
    );
}

#[test]
fn delta_sigma_conversions_are_inverse() {
    for d in [1e-3, 0.1, 1.0, 64.0] {
        let s = noise_std_for_delta(d);
        assert!((delta_for_noise_std(s) - d).abs() < 1e-9 * d.max(1.0));
    }
}

#[test]
fn residual_network_error_model_holds() {
    // The same Eq. 6 additivity on a residual topology (ResNet-50),
    // where errors reconverge through skip connections.
    let (net, data) = setup(ModelKind::ResNet50, 0x6E5);
    let layers = ModelKind::ResNet50.analyzable_layers(&net);
    let (a, b) = (layers[2], layers[20]);
    let delta = 0.5;
    let sigma_a = injected_output_sigma(&net, &data, &[(a, delta)].into_iter().collect(), 1);
    let sigma_b = injected_output_sigma(&net, &data, &[(b, delta)].into_iter().collect(), 2);
    let sigma_ab = injected_output_sigma(
        &net,
        &data,
        &[(a, delta), (b, delta)].into_iter().collect(),
        3,
    );
    let predicted = (sigma_a.powi(2) + sigma_b.powi(2)).sqrt();
    let rel_err = (sigma_ab - predicted).abs() / predicted;
    assert!(
        rel_err < 0.3,
        "residual additivity violated: {sigma_ab} vs {predicted}"
    );
}
