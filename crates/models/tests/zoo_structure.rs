//! Structural fingerprints of every zoo architecture.
//!
//! The substitution argument in `DESIGN.md` rests on the scaled models
//! preserving the *topology* of the originals: these tests pin the
//! structural facts (branching, residuals, grouped/depthwise layers,
//! pooling skeletons, channel progressions) that the reproduction's
//! claims depend on.

use mupod_models::{ModelKind, ModelScale};
use mupod_nn::{Network, Op};

fn count_op<F: Fn(&Op) -> bool>(net: &Network, pred: F) -> usize {
    net.iter().filter(|(_, n)| pred(&n.op)).count()
}

#[test]
fn alexnet_has_lrn_and_overlapping_pools() {
    let net = ModelKind::AlexNet.build(&ModelScale::tiny(), 1);
    assert_eq!(count_op(&net, |o| matches!(o, Op::Lrn { .. })), 2);
    assert_eq!(count_op(&net, |o| matches!(o, Op::MaxPool(_))), 3);
    assert_eq!(
        count_op(&net, |o| matches!(o, Op::FullyConnected { .. })),
        3
    );
}

#[test]
fn nin_is_fully_convolutional() {
    let net = ModelKind::Nin.build(&ModelScale::tiny(), 2);
    assert_eq!(
        count_op(&net, |o| matches!(o, Op::FullyConnected { .. })),
        0
    );
    assert_eq!(count_op(&net, |o| matches!(o, Op::GlobalAvgPool)), 1);
    // Eight of the twelve convs are 1x1 mlpconvs.
    let one_by_one = net
        .iter()
        .filter(|(_, n)| match &n.op {
            Op::Conv2d { params, .. } => params.kernel == 1,
            _ => false,
        })
        .count();
    assert_eq!(one_by_one, 8);
}

#[test]
fn googlenet_has_nine_inception_modules() {
    let net = ModelKind::GoogleNet.build(&ModelScale::tiny(), 3);
    // Each module contributes exactly one concat and one 3x3/1 max pool.
    assert_eq!(count_op(&net, |o| matches!(o, Op::Concat)), 9);
    let fives = net
        .iter()
        .filter(|(_, n)| match &n.op {
            Op::Conv2d { params, .. } => params.kernel == 5,
            _ => false,
        })
        .count();
    assert_eq!(fives, 10, "9 inception 5x5 branches + the stem conv1");
}

#[test]
fn vgg19_is_plain_sequential() {
    let net = ModelKind::Vgg19.build(&ModelScale::tiny(), 4);
    assert_eq!(count_op(&net, |o| matches!(o, Op::Add)), 0);
    assert_eq!(count_op(&net, |o| matches!(o, Op::Concat)), 0);
    // All convs are 3x3 stride 1.
    for (_, node) in net.iter() {
        if let Op::Conv2d { params, .. } = &node.op {
            assert_eq!(params.kernel, 3);
            assert_eq!(params.stride, 1);
        }
    }
}

#[test]
fn resnets_have_expected_projection_counts() {
    for (kind, blocks) in [(ModelKind::ResNet50, 16), (ModelKind::ResNet152, 50)] {
        let net = kind.build(&ModelScale::tiny(), 5);
        assert_eq!(
            count_op(&net, |o| matches!(o, Op::Add)),
            blocks,
            "{kind}: one residual add per bottleneck"
        );
        // Projection convs are the 1x1 layers named *_proj.
        let projections = net
            .iter()
            .filter(|(_, n)| n.name.ends_with("_proj"))
            .count();
        assert_eq!(projections, 4, "{kind}: one projection per stage");
        // Folded BN affine follows every convolution.
        let convs = count_op(&net, |o| matches!(o, Op::Conv2d { .. }));
        assert_eq!(
            count_op(&net, |o| matches!(o, Op::ChannelAffine { .. })),
            convs,
            "{kind}"
        );
    }
}

#[test]
fn squeezenet_fire_modules_squeeze_then_expand() {
    let net = ModelKind::SqueezeNet.build(&ModelScale::tiny(), 6);
    for i in 2..=9 {
        let s = net.find(&format!("fire{i}_s1")).expect("squeeze layer");
        let e1 = net.find(&format!("fire{i}_e1")).expect("expand 1x1");
        let (s_out, e_in) = match (&net.node(s).op, &net.node(e1).op) {
            (Op::Conv2d { params: a, .. }, Op::Conv2d { params: b, .. }) => {
                (a.out_channels, b.in_channels)
            }
            _ => panic!("fire layers are convs"),
        };
        assert_eq!(s_out, e_in, "fire{i}: expand reads the squeeze output");
        // The squeeze layer has fewer outputs than the expand layer.
        let e_out = match &net.node(e1).op {
            Op::Conv2d { params, .. } => params.out_channels,
            _ => unreachable!(),
        };
        assert!(s_out < 2 * e_out, "fire{i}: squeeze must bottleneck");
    }
}

#[test]
fn mobilenet_alternates_depthwise_and_pointwise() {
    let net = ModelKind::MobileNet.build(&ModelScale::tiny(), 7);
    for i in 1..=13 {
        let dw = net.find(&format!("dws{i}_dw")).expect("depthwise");
        let pw = net.find(&format!("dws{i}_pw")).expect("pointwise");
        match &net.node(dw).op {
            Op::Conv2d { params, .. } => {
                assert_eq!(params.groups, params.in_channels, "dws{i} depthwise");
                assert_eq!(params.kernel, 3);
            }
            _ => panic!("dws{i}_dw is a conv"),
        }
        match &net.node(pw).op {
            Op::Conv2d { params, .. } => {
                assert_eq!(params.groups, 1, "dws{i} pointwise");
                assert_eq!(params.kernel, 1);
            }
            _ => panic!("dws{i}_pw is a conv"),
        }
    }
}

#[test]
fn activation_ranges_stay_bounded_at_both_scales() {
    // The fix for residual variance growth (branch gain) must hold at
    // every scale.
    for scale in [ModelScale::tiny(), ModelScale::small()] {
        for kind in ModelKind::ALL {
            let net = kind.build(&scale, 11);
            let image = mupod_tensor::Tensor::filled(&scale.input_dims(), 100.0);
            let acts = net.forward(&image);
            let mut worst = 0.0f32;
            for (id, _) in net.iter() {
                worst = worst.max(acts.get(id).max_abs());
            }
            // The bound guards against *exponential* residual variance
            // growth (which reached ~10^7 before the branch-gain fix);
            // a saturated constant-100 image legitimately drives a few
            // thousand.
            assert!(
                worst < 16384.0,
                "{kind} at {}px: activations reach {worst}",
                scale.input_hw
            );
        }
    }
}

#[test]
fn summaries_render_for_every_model() {
    for kind in ModelKind::ALL {
        let net = kind.build(&ModelScale::tiny(), 13);
        let s = net.summary();
        assert!(s.contains("dot-product layers"), "{kind}");
        let dot = net.to_dot();
        assert!(dot.contains("digraph"), "{kind}");
    }
}
