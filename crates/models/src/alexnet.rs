//! AlexNet: 5 convolutions (2 grouped), LRN, overlapping pools, 3 FC.
//!
//! The paper's Table II case study. Following the original, conv2, conv4
//! and conv5 use two channel groups; LRN follows conv1 and conv2. The
//! three FC layers are present (errors propagate through them to the
//! logits) but excluded from bitwidth analysis per Stripes' convention.

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds AlexNet at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // conv1 + LRN + pool: spatial H -> H/2.
    let c1 = a.conv_relu("conv1", input, 3, ch(b, 2.0), 5, 1, 2, 1);
    let l1 = a.b.lrn("lrn1", c1, 5, 1e-4, 0.75, 2.0);
    let p1 = a.max_pool2("pool1", l1);

    // conv2 (grouped) + LRN + pool: H/2 -> H/4.
    let c2 = a.conv_relu("conv2", p1, ch(b, 2.0), ch(b, 3.0), 5, 1, 2, 2);
    let l2 = a.b.lrn("lrn2", c2, 5, 1e-4, 0.75, 2.0);
    let p2 = a.max_pool2("pool2", l2);

    // conv3, conv4 (grouped), conv5 (grouped) + pool: H/4 -> H/8.
    let c3 = a.conv_relu("conv3", p2, ch(b, 3.0), ch(b, 4.0), 3, 1, 1, 1);
    let c4 = a.conv_relu("conv4", c3, ch(b, 4.0), ch(b, 3.0), 3, 1, 1, 2);
    let c5 = a.conv_relu("conv5", c4, ch(b, 3.0), ch(b, 3.0), 3, 1, 1, 2);
    let p5 = a.max_pool2("pool5", c5);

    // FC head (ignored by the analysis for this network).
    let fl = a.b.flatten("flatten", p5);
    let side = scale.input_hw / 8;
    let feat = ch(b, 3.0) * side * side;
    let f6 = a.fc("fc6", fl, feat, ch(b, 4.0));
    let r6 = a.b.relu("fc6_relu", f6);
    let f7 = a.fc("fc7", r6, ch(b, 4.0), ch(b, 4.0));
    let r7 = a.b.relu("fc7_relu", f7);
    let f8 = a.fc("fc8", r7, ch(b, 4.0), scale.classes);
    a.b.build(f8).expect("AlexNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_nn::Op;

    #[test]
    fn five_convs_three_fcs() {
        let net = build(&ModelScale::tiny(), 3);
        let convs = net
            .dot_product_layers()
            .into_iter()
            .filter(|&id| matches!(net.node(id).op, Op::Conv2d { .. }))
            .count();
        let fcs = net.dot_product_layers().len() - convs;
        assert_eq!(convs, 5);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn grouped_convs_match_original() {
        let net = build(&ModelScale::tiny(), 3);
        let groups: Vec<usize> = net
            .dot_product_layers()
            .into_iter()
            .filter_map(|id| match &net.node(id).op {
                Op::Conv2d { params, .. } => Some(params.groups),
                _ => None,
            })
            .collect();
        assert_eq!(groups, vec![1, 2, 1, 2, 2]);
    }
}
