//! MobileNet: a full convolution + 13 depthwise-separable blocks
//! (2 convolutions each) + FC = 28 analyzable layers.
//!
//! The depthwise convolutions (`groups == channels`) are the stress test
//! for the engine's grouped-convolution path and for per-layer formats on
//! very cheap layers.

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds MobileNet at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // conv1: H -> H/2.
    let c1 = a.conv_bn_relu("conv1", input, 3, ch(b, 1.0), 3, 2, 1, 1);

    // 13 depthwise-separable blocks; two downsamples (the original's
    // five are reduced to fit the scaled spatial extent; depth is
    // unchanged). Channel plan follows the original's doubling ramp.
    let out_mult = [
        2.0, 2.0, 2.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 6.0, 6.0, 8.0, 8.0,
    ];
    let strides = [1usize, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1];

    let mut node = c1;
    let mut in_c = ch(b, 1.0);
    for i in 0..13 {
        let out_c = ch(b, out_mult[i]);
        node = a.dw_separable(&format!("dws{}", i + 1), node, in_c, out_c, strides[i]);
        in_c = out_c;
    }

    let gap = a.b.global_avg_pool("gap", node);
    let fc = a.fc("fc", gap, in_c, scale.classes);
    a.b.build(fc).expect("MobileNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_nn::Op;

    #[test]
    fn twenty_eight_layers() {
        let net = build(&ModelScale::tiny(), 37);
        assert_eq!(net.dot_product_layers().len(), 28);
    }

    #[test]
    fn thirteen_depthwise_convs() {
        let net = build(&ModelScale::tiny(), 37);
        let depthwise = net
            .dot_product_layers()
            .into_iter()
            .filter(|&id| match &net.node(id).op {
                Op::Conv2d { params, .. } => {
                    params.groups > 1 && params.groups == params.in_channels
                }
                _ => false,
            })
            .count();
        assert_eq!(depthwise, 13);
    }
}
