//! SqueezeNet: conv1 + 8 fire modules × 3 convolutions + conv10 = 26
//! analyzable layers, no fully-connected layer at all.

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds SqueezeNet at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // conv1: H -> H/2, then pool to H/4.
    let c1 = a.conv_relu("conv1", input, 3, ch(b, 2.0), 3, 2, 1, 1);
    let p1 = a.max_pool2("pool1", c1);

    // Fire modules 2-9 with gently growing widths; pool midway.
    let squeeze = [0.5, 0.5, 1.0, 1.0, 1.5, 1.5, 2.0, 2.0];
    let expand = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0];
    let mut node = p1;
    let mut in_c = ch(b, 2.0);
    for i in 0..8 {
        let (out, out_c) = a.fire(
            &format!("fire{}", i + 2),
            node,
            in_c,
            ch(b, squeeze[i]),
            ch(b, expand[i]),
        );
        node = out;
        in_c = out_c;
        if i == 3 {
            node = a.max_pool2("pool5", node);
        }
    }

    // conv10 produces class maps; global average pool yields logits.
    let c10 = a.conv("conv10", node, in_c, scale.classes, 1, 1, 0, 1);
    let gap = a.b.global_avg_pool("gap", c10);
    a.b.build(gap).expect("SqueezeNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_convs_no_fc() {
        let net = build(&ModelScale::tiny(), 31);
        assert_eq!(net.dot_product_layers().len(), 26);
    }

    #[test]
    fn fire_concats_present() {
        let net = build(&ModelScale::tiny(), 31);
        let concats = net
            .iter()
            .filter(|(_, n)| matches!(n.op, mupod_nn::Op::Concat))
            .count();
        assert_eq!(concats, 8);
    }
}
