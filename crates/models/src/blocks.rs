//! Shared building blocks for the architecture builders.

use crate::init::{bn_affine, he_conv, he_fc, small_bias};
use mupod_nn::{NetworkBuilder, NodeId};
use mupod_stats::SeededRng;
use mupod_tensor::conv::Conv2dParams;
use mupod_tensor::pool::Pool2dParams;

/// A [`NetworkBuilder`] paired with a seeded RNG and naming helpers —
/// the common scaffolding of every architecture in the zoo.
pub(crate) struct ArchBuilder {
    pub b: NetworkBuilder,
    pub rng: SeededRng,
}

/// Rounds `base · mult` to a channel count, clamped at 1.
pub(crate) fn ch(base: usize, mult: f64) -> usize {
    ((base as f64 * mult).round() as usize).max(1)
}

impl ArchBuilder {
    pub(crate) fn new(input_dims: &[usize], seed: u64) -> Self {
        Self {
            b: NetworkBuilder::new(input_dims),
            rng: SeededRng::new(seed),
        }
    }

    pub(crate) fn input(&self) -> NodeId {
        self.b.input()
    }

    /// Plain convolution with He weights.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv(
        &mut self,
        name: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> NodeId {
        let params = Conv2dParams::grouped(in_c, out_c, k, stride, pad, groups);
        let weight = he_conv(&mut self.rng, out_c, in_c / groups, k, 1.0);
        let bias = small_bias(&mut self.rng, out_c);
        self.b.conv2d(name, input, params, weight, bias)
    }

    /// Convolution followed by ReLU.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_relu(
        &mut self,
        name: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> NodeId {
        let c = self.conv(name, input, in_c, out_c, k, stride, pad, groups);
        self.b.relu(format!("{name}_relu"), c)
    }

    /// Convolution → folded-BN affine → ReLU (ResNet/MobileNet style).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_bn_relu(
        &mut self,
        name: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> NodeId {
        let bn = self.conv_bn(name, input, in_c, out_c, k, stride, pad, groups);
        self.b.relu(format!("{name}_relu"), bn)
    }

    /// Convolution → folded-BN affine, no activation (residual tails).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_bn(
        &mut self,
        name: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> NodeId {
        self.conv_bn_gain(name, input, in_c, out_c, k, stride, pad, groups, 1.0)
    }

    /// [`ArchBuilder::conv_bn`] with the affine scaled by `gain`.
    ///
    /// Residual networks need `gain < 1` on each branch tail: a real
    /// trained ResNet's batch norms keep activations bounded with depth,
    /// but a He-initialized stack with identity-like affines *doubles*
    /// activation variance at every residual addition — 2⁵⁰ after
    /// ResNet-152's 50 blocks. Scaling the branch by `√(2/N_blocks)`
    /// (Fixup-style) bounds total growth to ≈ e², matching the bounded
    /// dynamic ranges the paper's `max|X_K|` measurements rely on.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn conv_bn_gain(
        &mut self,
        name: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        groups: usize,
        gain: f64,
    ) -> NodeId {
        let c = self.conv(name, input, in_c, out_c, k, stride, pad, groups);
        let (mut scale, shift) = bn_affine(&mut self.rng, out_c);
        for v in &mut scale {
            *v *= gain as f32;
        }
        self.b.channel_affine(format!("{name}_bn"), c, scale, shift)
    }

    /// Fully-connected layer with He weights.
    pub(crate) fn fc(&mut self, name: &str, input: NodeId, in_d: usize, out_d: usize) -> NodeId {
        let weight = he_fc(&mut self.rng, out_d, in_d, 1.0);
        let bias = small_bias(&mut self.rng, out_d);
        self.b.fully_connected(name, input, weight, bias)
    }

    /// 3×3/2 max pool (the classic stage-reduction pool).
    pub(crate) fn max_pool2(&mut self, name: &str, input: NodeId) -> NodeId {
        self.b.max_pool(name, input, Pool2dParams::new(2, 2, 0))
    }

    /// GoogleNet inception module: four parallel branches concatenated.
    ///
    /// Contributes exactly **6** convolutions (1×1, 3×3-reduce, 3×3,
    /// 5×5-reduce, 5×5, pool-proj). Returns `(output, out_channels)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn inception(
        &mut self,
        prefix: &str,
        input: NodeId,
        in_c: usize,
        o1: usize,
        r3: usize,
        o3: usize,
        r5: usize,
        o5: usize,
        pp: usize,
    ) -> (NodeId, usize) {
        let b1 = self.conv_relu(&format!("{prefix}_1x1"), input, in_c, o1, 1, 1, 0, 1);
        let b3r = self.conv_relu(&format!("{prefix}_3x3r"), input, in_c, r3, 1, 1, 0, 1);
        let b3 = self.conv_relu(&format!("{prefix}_3x3"), b3r, r3, o3, 3, 1, 1, 1);
        let b5r = self.conv_relu(&format!("{prefix}_5x5r"), input, in_c, r5, 1, 1, 0, 1);
        let b5 = self.conv_relu(&format!("{prefix}_5x5"), b5r, r5, o5, 5, 1, 2, 1);
        let pool = self
            .b
            .max_pool(format!("{prefix}_pool"), input, Pool2dParams::new(3, 1, 1));
        let bp = self.conv_relu(&format!("{prefix}_pp"), pool, in_c, pp, 1, 1, 0, 1);
        let cat = self.b.concat(format!("{prefix}_cat"), &[b1, b3, b5, bp]);
        (cat, o1 + o3 + o5 + pp)
    }

    /// ResNet bottleneck block (1×1 → 3×3 → 1×1 with shortcut).
    ///
    /// Contributes **3** convolutions, plus **1** projection convolution
    /// when `project` is set (channel or stride change). Returns the
    /// block output.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bottleneck(
        &mut self,
        prefix: &str,
        input: NodeId,
        in_c: usize,
        mid_c: usize,
        out_c: usize,
        stride: usize,
        project: bool,
        branch_gain: f64,
    ) -> NodeId {
        let c1 = self.conv_bn_relu(&format!("{prefix}_a"), input, in_c, mid_c, 1, 1, 0, 1);
        let c2 = self.conv_bn_relu(&format!("{prefix}_b"), c1, mid_c, mid_c, 3, stride, 1, 1);
        let c3 = self.conv_bn_gain(
            &format!("{prefix}_c"),
            c2,
            mid_c,
            out_c,
            1,
            1,
            0,
            1,
            branch_gain,
        );
        let shortcut = if project {
            self.conv_bn(
                &format!("{prefix}_proj"),
                input,
                in_c,
                out_c,
                1,
                stride,
                0,
                1,
            )
        } else {
            assert_eq!(in_c, out_c, "identity shortcut requires equal channels");
            assert_eq!(stride, 1, "identity shortcut requires stride 1");
            input
        };
        let sum = self.b.add(format!("{prefix}_add"), &[c3, shortcut]);
        self.b.relu(format!("{prefix}_relu"), sum)
    }

    /// SqueezeNet fire module (squeeze 1×1, expand 1×1 ∥ 3×3, concat).
    ///
    /// Contributes **3** convolutions. Returns `(output, out_channels)`.
    pub(crate) fn fire(
        &mut self,
        prefix: &str,
        input: NodeId,
        in_c: usize,
        squeeze_c: usize,
        expand_c: usize,
    ) -> (NodeId, usize) {
        let s = self.conv_relu(&format!("{prefix}_s1"), input, in_c, squeeze_c, 1, 1, 0, 1);
        let e1 = self.conv_relu(&format!("{prefix}_e1"), s, squeeze_c, expand_c, 1, 1, 0, 1);
        let e3 = self.conv_relu(&format!("{prefix}_e3"), s, squeeze_c, expand_c, 3, 1, 1, 1);
        let cat = self.b.concat(format!("{prefix}_cat"), &[e1, e3]);
        (cat, 2 * expand_c)
    }

    /// MobileNet depthwise-separable block (3×3 depthwise + 1×1
    /// pointwise, each with BN+ReLU).
    ///
    /// Contributes **2** convolutions. Returns the block output.
    pub(crate) fn dw_separable(
        &mut self,
        prefix: &str,
        input: NodeId,
        in_c: usize,
        out_c: usize,
        stride: usize,
    ) -> NodeId {
        let dw = self.conv_bn_relu(
            &format!("{prefix}_dw"),
            input,
            in_c,
            in_c,
            3,
            stride,
            1,
            in_c,
        );
        self.conv_bn_relu(&format!("{prefix}_pw"), dw, in_c, out_c, 1, 1, 0, 1)
    }
}
