//! GoogleNet: 3 stem convolutions + 9 inception modules × 6 convolutions
//! = 57 analyzable layers, plus an (ignored) FC classifier.
//!
//! Module widths follow the original's growth pattern at reduced scale.
//! The mid-network downsampling pools are folded away (the scaled input
//! is already small); depth and branch structure are unchanged.

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds GoogleNet at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // Stem: conv1 (7x7/2 in the original; 5x5/2 here), pool, 1x1 reduce,
    // 3x3. Three convolutions total.
    let c1 = a.conv_relu("conv1", input, 3, ch(b, 2.0), 5, 2, 2, 1);
    let l1 = a.b.lrn("lrn1", c1, 5, 1e-4, 0.75, 2.0);
    let p1 = a.max_pool2("pool1", l1);
    let c2r = a.conv_relu("conv2r", p1, ch(b, 2.0), ch(b, 2.0), 1, 1, 0, 1);
    let c2 = a.conv_relu("conv2", c2r, ch(b, 2.0), ch(b, 3.0), 3, 1, 1, 1);
    let l2 = a.b.lrn("lrn2", c2, 5, 1e-4, 0.75, 2.0);

    // Nine inception modules (3a..3b, 4a..4e, 5a..5b): branch widths grow
    // following the original's pattern, scaled by the base channel count.
    // Each tuple is (o1, r3, o3, r5, o5, pp) in units of b/4.
    let widths: [(f64, f64, f64, f64, f64, f64); 9] = [
        (2.0, 3.0, 4.0, 0.5, 1.0, 1.0),   // 3a
        (4.0, 4.0, 6.0, 1.0, 3.0, 2.0),   // 3b
        (6.0, 3.0, 6.5, 0.5, 1.5, 2.0),   // 4a
        (5.0, 3.5, 7.0, 1.0, 2.0, 2.0),   // 4b
        (4.0, 4.0, 8.0, 1.0, 2.0, 2.0),   // 4c
        (3.5, 4.5, 9.0, 1.0, 2.0, 2.0),   // 4d
        (8.0, 5.0, 10.0, 1.0, 4.0, 4.0),  // 4e
        (8.0, 5.0, 10.0, 1.0, 4.0, 4.0),  // 5a
        (12.0, 6.0, 12.0, 1.5, 4.0, 4.0), // 5b
    ];
    let names = ["3a", "3b", "4a", "4b", "4c", "4d", "4e", "5a", "5b"];

    let mut node = l2;
    let mut in_c = ch(b, 3.0);
    let unit = b as f64 / 4.0;
    for (name, &(o1, r3, o3, r5, o5, pp)) in names.iter().zip(&widths) {
        let (out, out_c) = a.inception(
            &format!("inc{name}"),
            node,
            in_c,
            ch(1, o1 * unit),
            ch(1, r3 * unit),
            ch(1, o3 * unit),
            ch(1, r5 * unit),
            ch(1, o5 * unit),
            ch(1, pp * unit),
        );
        node = out;
        in_c = out_c;
    }

    // Classifier: global average pool + FC (ignored by the analysis).
    let gap = a.b.global_avg_pool("gap", node);
    let fc = a.fc("fc", gap, in_c, scale.classes);
    a.b.build(fc).expect("GoogleNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_nn::Op;

    #[test]
    fn fifty_seven_convs_one_fc() {
        let net = build(&ModelScale::tiny(), 13);
        let convs = net
            .dot_product_layers()
            .into_iter()
            .filter(|&id| matches!(net.node(id).op, Op::Conv2d { .. }))
            .count();
        assert_eq!(convs, 57);
        assert_eq!(net.dot_product_layers().len(), 58);
    }

    #[test]
    fn inception_concat_channels_consistent() {
        let scale = ModelScale::tiny();
        let net = build(&scale, 13);
        // The network builds (shape validation passed) and classifies.
        assert_eq!(net.node_out_dims(net.output_id()), &[scale.classes]);
    }
}
