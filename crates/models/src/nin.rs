//! Network-in-Network: 12 convolutions in four mlpconv blocks.
//!
//! Each block is one spatial convolution followed by two 1×1 "mlp"
//! convolutions; the last block's final 1×1 produces class maps that a
//! global average pool turns into logits (no FC layer at all). This is
//! the network of the paper's Fig. 4 energy case study.

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds NiN at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // Block 1: 5x5 mlpconv, H -> H/2.
    let c1 = a.conv_relu("conv1", input, 3, ch(b, 2.0), 5, 1, 2, 1);
    let m1a = a.conv_relu("cccp1", c1, ch(b, 2.0), ch(b, 2.0), 1, 1, 0, 1);
    let m1b = a.conv_relu("cccp2", m1a, ch(b, 2.0), ch(b, 2.0), 1, 1, 0, 1);
    let p1 = a.max_pool2("pool1", m1b);

    // Block 2: 5x5 mlpconv, H/2 -> H/4.
    let c2 = a.conv_relu("conv2", p1, ch(b, 2.0), ch(b, 3.0), 5, 1, 2, 1);
    let m2a = a.conv_relu("cccp3", c2, ch(b, 3.0), ch(b, 3.0), 1, 1, 0, 1);
    let m2b = a.conv_relu("cccp4", m2a, ch(b, 3.0), ch(b, 3.0), 1, 1, 0, 1);
    let p2 = a.max_pool2("pool2", m2b);

    // Block 3: 3x3 mlpconv, H/4 -> H/8.
    let c3 = a.conv_relu("conv3", p2, ch(b, 3.0), ch(b, 4.0), 3, 1, 1, 1);
    let m3a = a.conv_relu("cccp5", c3, ch(b, 4.0), ch(b, 4.0), 1, 1, 0, 1);
    let m3b = a.conv_relu("cccp6", m3a, ch(b, 4.0), ch(b, 4.0), 1, 1, 0, 1);
    let p3 = a.max_pool2("pool3", m3b);

    // Block 4: 3x3 mlpconv ending in class maps.
    let c4 = a.conv_relu("conv4", p3, ch(b, 4.0), ch(b, 4.0), 3, 1, 1, 1);
    let m4a = a.conv_relu("cccp7", c4, ch(b, 4.0), ch(b, 4.0), 1, 1, 0, 1);
    let m4b = a.conv("cccp8", m4a, ch(b, 4.0), scale.classes, 1, 1, 0, 1);
    let gap = a.b.global_avg_pool("gap", m4b);
    a.b.build(gap).expect("NiN builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_convs_no_fc() {
        let net = build(&ModelScale::tiny(), 5);
        assert_eq!(net.dot_product_layers().len(), 12);
    }

    #[test]
    fn output_is_class_logits() {
        let scale = ModelScale::tiny();
        let net = build(&scale, 5);
        assert_eq!(net.node_out_dims(net.output_id()), &[scale.classes]);
    }
}
