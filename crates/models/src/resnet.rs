//! ResNet-50 and ResNet-152: bottleneck residual networks.
//!
//! Layer accounting matches the paper's Table III exactly:
//!
//! * ResNet-50, stages `[3, 4, 6, 3]`: 1 stem + 16·3 bottleneck convs +
//!   4 stage projections + 1 FC = **54**.
//! * ResNet-152, stages `[3, 8, 36, 3]`: 1 stem + 50·3 + 4 + 1 = **156**.
//!
//! ResNet-152 is the paper's headline scalability case ("allocating
//! precision at the granularity of layers for very deep networks such as
//! Resnet-152, which hitherto was not achievable").

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;
use mupod_tensor::pool::Pool2dParams;

/// Builds ResNet-50 at the given scale.
pub(crate) fn build_resnet50(scale: &ModelScale, seed: u64) -> Network {
    build_resnet(scale, seed, &[3, 4, 6, 3])
}

/// Builds ResNet-152 at the given scale.
pub(crate) fn build_resnet152(scale: &ModelScale, seed: u64) -> Network {
    build_resnet(scale, seed, &[3, 8, 36, 3])
}

fn build_resnet(scale: &ModelScale, seed: u64, stages: &[usize; 4]) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    // Stem: one convolution (7x7/2 in the original; 3x3 here) + pool.
    let stem = a.conv_bn_relu("conv1", input, 3, ch(b, 1.0), 3, 1, 1, 1);
    let mut node = a.b.max_pool("pool1", stem, Pool2dParams::new(2, 2, 0));

    // Branch gain bounding activation growth with depth (see
    // `ArchBuilder::conv_bn_gain`).
    let total_blocks: usize = stages.iter().sum();
    let branch_gain = (2.0 / total_blocks as f64).sqrt();

    let mut in_c = ch(b, 1.0);
    for (stage, &blocks) in stages.iter().enumerate() {
        let mid_c = ch(b, (1 << stage) as f64);
        let out_c = 2 * mid_c;
        for block in 0..blocks {
            // First block of each stage projects; stages 2-4 downsample.
            let (stride, project) = if block == 0 {
                (if stage == 0 { 1 } else { 2 }, true)
            } else {
                (1, false)
            };
            node = a.bottleneck(
                &format!("res{}_{}", stage + 2, block),
                node,
                in_c,
                mid_c,
                out_c,
                stride,
                project,
                branch_gain,
            );
            in_c = out_c;
        }
    }

    let gap = a.b.global_avg_pool("gap", node);
    let fc = a.fc("fc", gap, in_c, scale.classes);
    a.b.build(fc).expect("ResNet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_nn::Op;

    fn conv_fc_counts(net: &Network) -> (usize, usize) {
        let layers = net.dot_product_layers();
        let convs = layers
            .iter()
            .filter(|&&id| matches!(net.node(id).op, Op::Conv2d { .. }))
            .count();
        (convs, layers.len() - convs)
    }

    #[test]
    fn resnet50_counts() {
        let net = build_resnet50(&ModelScale::tiny(), 21);
        let (convs, fcs) = conv_fc_counts(&net);
        assert_eq!(convs, 53); // 1 stem + 48 + 4 projections
        assert_eq!(fcs, 1);
    }

    #[test]
    fn resnet152_counts() {
        let net = build_resnet152(&ModelScale::tiny(), 21);
        let (convs, fcs) = conv_fc_counts(&net);
        assert_eq!(convs, 155); // 1 stem + 150 + 4 projections
        assert_eq!(fcs, 1);
    }

    #[test]
    fn residual_additions_present() {
        let net = build_resnet50(&ModelScale::tiny(), 21);
        let adds = net.iter().filter(|(_, n)| matches!(n.op, Op::Add)).count();
        assert_eq!(adds, 16); // one per bottleneck block
    }

    #[test]
    fn deep_forward_stays_finite() {
        let scale = ModelScale::tiny();
        let net = build_resnet152(&scale, 23);
        let image = mupod_tensor::Tensor::filled(&scale.input_dims(), 50.0);
        let acts = net.forward(&image);
        let out = net.output(&acts);
        assert!(out.data().iter().all(|v| v.is_finite()));
        assert!(out.max_abs() > 0.0);
    }
}
