//! VGG-19: 16 convolutions in five stages plus a 3-layer FC head.
//!
//! Stage layout `[2, 2, 4, 4, 4]` with channel doubling, exactly the
//! original; to keep the scaled-down spatial extent positive, the pool
//! after the final stage is omitted (documented spatial adaptation —
//! depth and the analyzable layer count are unchanged).

use crate::blocks::{ch, ArchBuilder};
use crate::ModelScale;
use mupod_nn::Network;

/// Builds VGG-19 at the given scale.
pub(crate) fn build(scale: &ModelScale, seed: u64) -> Network {
    let mut a = ArchBuilder::new(&scale.input_dims(), seed);
    let b = scale.base_channels;
    let input = a.input();

    let stage_convs = [2usize, 2, 4, 4, 4];
    let stage_mult = [1.0, 2.0, 3.0, 4.0, 4.0];

    let mut node = input;
    let mut in_c = 3usize;
    let mut conv_idx = 0usize;
    for (s, (&n_convs, &mult)) in stage_convs.iter().zip(&stage_mult).enumerate() {
        let out_c = ch(b, mult);
        for _ in 0..n_convs {
            conv_idx += 1;
            node = a.conv_relu(&format!("conv{conv_idx}"), node, in_c, out_c, 3, 1, 1, 1);
            in_c = out_c;
        }
        // Pool after stages 1-4 only (H/16 at the end).
        if s < 4 {
            node = a.max_pool2(&format!("pool{}", s + 1), node);
        }
    }

    let fl = a.b.flatten("flatten", node);
    let side = scale.input_hw / 16;
    let feat = in_c * side * side;
    let f1 = a.fc("fc6", fl, feat, ch(b, 4.0));
    let r1 = a.b.relu("fc6_relu", f1);
    let f2 = a.fc("fc7", r1, ch(b, 4.0), ch(b, 4.0));
    let r2 = a.b.relu("fc7_relu", f2);
    let f3 = a.fc("fc8", r2, ch(b, 4.0), scale.classes);
    a.b.build(f3).expect("VGG-19 builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_nn::Op;

    #[test]
    fn sixteen_convs_three_fcs() {
        let net = build(&ModelScale::tiny(), 9);
        let convs = net
            .dot_product_layers()
            .into_iter()
            .filter(|&id| matches!(net.node(id).op, Op::Conv2d { .. }))
            .count();
        assert_eq!(convs, 16);
        assert_eq!(net.dot_product_layers().len(), 19);
    }

    #[test]
    fn channels_double_by_stage() {
        let net = build(&ModelScale::tiny(), 9);
        let out_cs: Vec<usize> = net
            .dot_product_layers()
            .into_iter()
            .filter_map(|id| match &net.node(id).op {
                Op::Conv2d { params, .. } => Some(params.out_channels),
                _ => None,
            })
            .collect();
        assert_eq!(out_cs[0], out_cs[1]);
        assert!(out_cs[2] > out_cs[1]);
        assert_eq!(out_cs[15], out_cs[12]);
    }
}
