//! He-style weight initialization.
//!
//! The reproduction cannot load the Caffe Model Zoo weights the paper
//! used, so weights are drawn from the fan-in-scaled Gaussian of He et
//! al. (2015). For ReLU networks this keeps per-layer activation variance
//! approximately constant with depth, which is what makes the profiled
//! `λ_K`/`θ_K` statistics (and the `max|X_K|` dynamic ranges) behave like
//! those of a trained network.

use mupod_stats::SeededRng;
use mupod_tensor::Tensor;

/// Draws a He-normal convolution filter bank
/// `[out_c, in_c/groups, k, k]` with `std = gain·√(2/fan_in)`.
pub fn he_conv(
    rng: &mut SeededRng,
    out_c: usize,
    in_c_per_group: usize,
    k: usize,
    gain: f64,
) -> Tensor {
    let fan_in = (in_c_per_group * k * k) as f64;
    let std = gain * (2.0 / fan_in).sqrt();
    let n = out_c * in_c_per_group * k * k;
    Tensor::from_vec(
        &[out_c, in_c_per_group, k, k],
        (0..n).map(|_| rng.gaussian(0.0, std) as f32).collect(),
    )
}

/// Draws a He-normal fully-connected weight matrix `[out, in]`.
pub fn he_fc(rng: &mut SeededRng, out: usize, inp: usize, gain: f64) -> Tensor {
    let std = gain * (2.0 / inp as f64).sqrt();
    Tensor::from_vec(
        &[out, inp],
        (0..out * inp)
            .map(|_| rng.gaussian(0.0, std) as f32)
            .collect(),
    )
}

/// Small random biases (std 0.01) — exact zeros would make early ReLU
/// outputs degenerate on zero-mean patches.
pub fn small_bias(rng: &mut SeededRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gaussian(0.0, 0.01) as f32).collect()
}

/// Folded-batch-norm affine parameters: scale ≈ 1, shift ≈ 0 with mild
/// per-channel variation, mimicking inference-time BN folding.
pub fn bn_affine(rng: &mut SeededRng, channels: usize) -> (Vec<f32>, Vec<f32>) {
    let scale = (0..channels)
        .map(|_| (1.0 + rng.gaussian(0.0, 0.05)) as f32)
        .collect();
    let shift = (0..channels)
        .map(|_| rng.gaussian(0.0, 0.02) as f32)
        .collect();
    (scale, shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_stats::RunningStats;

    #[test]
    fn he_conv_std_matches_fan_in() {
        let mut rng = SeededRng::new(1);
        let w = he_conv(&mut rng, 64, 16, 3, 1.0);
        let mut s = RunningStats::new();
        s.extend(w.data().iter().map(|&v| v as f64));
        let expected = (2.0_f64 / (16.0 * 9.0)).sqrt();
        assert!((s.population_std() - expected).abs() / expected < 0.05);
        assert!(s.mean().abs() < 0.01);
    }

    #[test]
    fn he_fc_std_matches_fan_in() {
        let mut rng = SeededRng::new(2);
        let w = he_fc(&mut rng, 100, 400, 1.0);
        let mut s = RunningStats::new();
        s.extend(w.data().iter().map(|&v| v as f64));
        let expected = (2.0_f64 / 400.0).sqrt();
        assert!((s.population_std() - expected).abs() / expected < 0.05);
    }

    #[test]
    fn gain_scales_std() {
        let mut rng = SeededRng::new(3);
        let w1 = he_conv(&mut rng, 32, 8, 3, 1.0);
        let mut rng = SeededRng::new(3);
        let w2 = he_conv(&mut rng, 32, 8, 3, 2.0);
        for (a, b) in w1.data().iter().zip(w2.data()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
    }

    #[test]
    fn bn_affine_near_identity() {
        let mut rng = SeededRng::new(4);
        let (scale, shift) = bn_affine(&mut rng, 1000);
        let mut s = RunningStats::new();
        s.extend(scale.iter().map(|&v| v as f64));
        assert!((s.mean() - 1.0).abs() < 0.01);
        let mut sh = RunningStats::new();
        sh.extend(shift.iter().map(|&v| v as f64));
        assert!(sh.mean().abs() < 0.01);
    }
}
