//! Linear-probe calibration of the classifier head.
//!
//! The paper uses networks trained on ImageNet; this reproduction cannot
//! (see `DESIGN.md`). Instead, each zoo network keeps its He-initialized
//! feature extractor frozen and re-fits only the final classifier layer
//! with ridge regression on the synthetic dataset — a *linear probe* on
//! random convolutional features. The result is a network with genuinely
//! above-chance accuracy whose accuracy-vs-noise curve is smooth and
//! monotone, which is all the paper's binary search (§V-C) needs.
//!
//! Two head shapes are supported, covering all eight zoo models:
//!
//! * a final [`Op::FullyConnected`] layer (AlexNet, VGG, GoogleNet,
//!   ResNets, MobileNet);
//! * a final 1×1 [`Op::Conv2d`] followed by [`Op::GlobalAvgPool`] (NiN,
//!   SqueezeNet) — GAP commutes with the 1×1 convolution, so the probe
//!   fits on globally-pooled features and writes the weights back into
//!   the convolution.

use mupod_data::Dataset;
use mupod_nn::{ExecArena, Network, NodeId, Op};
use mupod_stats::linalg::{ridge_regression, Matrix, SolveError};
use mupod_tensor::pool::global_avg_pool;
use mupod_tensor::Tensor;

/// Errors from [`calibrate_head`].
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The network's output structure is not a supported head shape.
    UnsupportedHead(String),
    /// The dataset is empty.
    EmptyDataset,
    /// The ridge solve failed (alpha too small for the feature rank).
    Solve(SolveError),
}

impl std::fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrateError::UnsupportedHead(s) => {
                write!(f, "unsupported classifier head: {s}")
            }
            CalibrateError::EmptyDataset => write!(f, "calibration dataset is empty"),
            CalibrateError::Solve(e) => write!(f, "ridge solve failed: {e}"),
        }
    }
}

impl std::error::Error for CalibrateError {}

impl From<SolveError> for CalibrateError {
    fn from(e: SolveError) -> Self {
        CalibrateError::Solve(e)
    }
}

/// Outcome of a head calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Name of the re-fitted layer.
    pub head_layer: String,
    /// Top-1 accuracy on the calibration set before re-fitting.
    pub accuracy_before: f64,
    /// Top-1 accuracy on the calibration set after re-fitting.
    pub accuracy_after: f64,
    /// Feature dimensionality seen by the probe.
    pub feature_dim: usize,
}

/// The two recognized head shapes.
enum Head {
    /// Final FC layer; features are its rank-1 input.
    Fc(NodeId),
    /// Final 1×1 conv followed by GAP; features are GAP of the conv
    /// input.
    ConvGap(NodeId),
}

fn identify_head(net: &Network) -> Result<Head, CalibrateError> {
    let out = net.output_id();
    match &net.node(out).op {
        Op::FullyConnected { .. } => Ok(Head::Fc(out)),
        Op::GlobalAvgPool => {
            let producer = net.node(out).inputs[0];
            match &net.node(producer).op {
                Op::Conv2d { params, .. } if params.kernel == 1 && params.groups == 1 => {
                    Ok(Head::ConvGap(producer))
                }
                op => Err(CalibrateError::UnsupportedHead(format!(
                    "global pool fed by {}, expected a 1x1 convolution",
                    op.mnemonic()
                ))),
            }
        }
        op => Err(CalibrateError::UnsupportedHead(format!(
            "output op is {}, expected fc or gap",
            op.mnemonic()
        ))),
    }
}

/// Extracts the probe feature vector for one image.
///
/// Runs on a caller-owned [`ExecArena`] so the per-image forward pass
/// allocates nothing; results are bit-identical to the allocating
/// executor.
fn features(net: &Network, head: &Head, image: &Tensor, arena: &mut ExecArena) -> Vec<f64> {
    let acts = net.forward_arena(image, arena);
    match head {
        Head::Fc(fc) => {
            let producer = net.node(*fc).inputs[0];
            acts.get(producer)
                .data()
                .iter()
                .map(|&v| v as f64)
                .collect()
        }
        Head::ConvGap(conv) => {
            let producer = net.node(*conv).inputs[0];
            global_avg_pool(acts.get(producer))
                .data()
                .iter()
                .map(|&v| v as f64)
                .collect()
        }
    }
}

/// Re-fits the network's classifier head on `dataset` by ridge
/// regression of one-hot targets onto frozen features.
///
/// `alpha` is the ridge regularizer (try `1e-3 · n` for `n` samples; the
/// exact value is uncritical).
///
/// # Errors
///
/// Returns [`CalibrateError::UnsupportedHead`] for unrecognized head
/// shapes, [`CalibrateError::EmptyDataset`] for an empty dataset, and
/// [`CalibrateError::Solve`] if the regularized normal equations are
/// still singular.
pub fn calibrate_head(
    net: &mut Network,
    dataset: &Dataset,
    alpha: f64,
) -> Result<CalibrationReport, CalibrateError> {
    if dataset.is_empty() {
        return Err(CalibrateError::EmptyDataset);
    }
    let mut arena = ExecArena::for_network(net);
    let accuracy_before = dataset.accuracy_of(|img| net.classify_arena(img, &mut arena));
    let (head_layer, feature_dim) = fit_head(net, dataset, alpha, &mut arena)?;
    let accuracy_after = dataset.accuracy_of(|img| net.classify_arena(img, &mut arena));
    Ok(CalibrationReport {
        head_layer,
        accuracy_before,
        accuracy_after,
        feature_dim,
    })
}

/// [`calibrate_head`] without the before/after accuracy sweeps.
///
/// The sweeps exist only to fill [`CalibrationReport`]; they cost two
/// full passes over the dataset, which dominates pipeline start-up when
/// the caller discards the report (as the CLI's prepare stage does). The
/// fitted weights are bit-identical to [`calibrate_head`]'s.
///
/// # Errors
///
/// As for [`calibrate_head`].
pub fn calibrate_head_quick(
    net: &mut Network,
    dataset: &Dataset,
    alpha: f64,
) -> Result<(), CalibrateError> {
    if dataset.is_empty() {
        return Err(CalibrateError::EmptyDataset);
    }
    let mut arena = ExecArena::for_network(net);
    fit_head(net, dataset, alpha, &mut arena).map(|_| ())
}

/// Shared core of the calibrators: fits the ridge probe and writes the
/// head weights back, returning the head layer's name and the feature
/// dimensionality.
fn fit_head(
    net: &mut Network,
    dataset: &Dataset,
    alpha: f64,
    arena: &mut ExecArena,
) -> Result<(String, usize), CalibrateError> {
    let head = identify_head(net)?;
    let classes = dataset.spec().classes;

    // Design matrix with a trailing bias column of ones.
    let n = dataset.len();
    let d = features(net, &head, dataset.sample(0).0, arena).len();
    let mut x = Matrix::zeros(n, d + 1);
    let mut y = Matrix::zeros(n, classes);
    for (i, (img, label)) in dataset.iter().enumerate() {
        let f = features(net, &head, img, arena);
        let row = x.row_mut(i);
        row[..d].copy_from_slice(&f);
        row[d] = 1.0;
        // Centered one-hot targets give zero-mean logits.
        for c in 0..classes {
            y[(i, c)] = if c == label {
                1.0
            } else {
                -1.0 / (classes as f64 - 1.0)
            };
        }
    }
    let w = ridge_regression(&x, &y, alpha)?;

    // Write the fit back into the head layer.
    let (head_id, head_name) = match head {
        Head::Fc(id) | Head::ConvGap(id) => (id, net.node(id).name.clone()),
    };
    let mut bias = vec![0.0f32; classes];
    for (c, b) in bias.iter_mut().enumerate() {
        *b = w[(d, c)] as f32;
    }
    let weight = match &net.node(head_id).op {
        Op::FullyConnected { .. } => {
            let mut data = vec![0.0f32; classes * d];
            for c in 0..classes {
                for j in 0..d {
                    data[c * d + j] = w[(j, c)] as f32;
                }
            }
            Tensor::from_vec(&[classes, d], data)
        }
        Op::Conv2d { .. } => {
            let mut data = vec![0.0f32; classes * d];
            for c in 0..classes {
                for j in 0..d {
                    data[c * d + j] = w[(j, c)] as f32;
                }
            }
            Tensor::from_vec(&[classes, d, 1, 1], data)
        }
        _ => unreachable!("head is a dot-product layer by construction"),
    };
    net.set_layer_weights(head_id, weight, bias);
    Ok((head_name, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, ModelScale};
    use mupod_data::DatasetSpec;

    fn calib_dataset(scale: &ModelScale, n: usize) -> Dataset {
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        Dataset::generate(&spec, 101, n)
    }

    #[test]
    fn calibration_beats_chance_on_fc_head() {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 55);
        let data = calib_dataset(&scale, 96);
        let report = calibrate_head(&mut net, &data, 1e-1).unwrap();
        let chance = 1.0 / scale.classes as f64;
        assert!(
            report.accuracy_after > 2.0 * chance,
            "probe accuracy {} too close to chance {chance}",
            report.accuracy_after
        );
        assert!(report.accuracy_after >= report.accuracy_before);
        assert_eq!(report.head_layer, "fc8");
    }

    #[test]
    fn calibration_works_on_conv_gap_head() {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::Nin.build(&scale, 56);
        let data = calib_dataset(&scale, 96);
        let report = calibrate_head(&mut net, &data, 1e-1).unwrap();
        let chance = 1.0 / scale.classes as f64;
        assert!(
            report.accuracy_after > 2.0 * chance,
            "probe accuracy {} too close to chance {chance}",
            report.accuracy_after
        );
        assert_eq!(report.head_layer, "cccp8");
    }

    #[test]
    fn calibrated_accuracy_generalizes() {
        // Accuracy on fresh images (same distribution) stays well above
        // chance: the probe learns the classes, not the samples.
        let scale = ModelScale::tiny();
        let mut net = ModelKind::SqueezeNet.build(&scale, 57);
        let spec =
            DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(77);
        let train = Dataset::generate(&spec, 300, 128);
        let test = Dataset::generate(&spec, 301, 64);
        calibrate_head(&mut net, &train, 1e-1).unwrap();
        let acc = test.accuracy_of(|img| net.classify(img));
        let chance = 1.0 / scale.classes as f64;
        assert!(acc > 1.5 * chance, "held-out accuracy {acc}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 58);
        let data = calib_dataset(&scale, 0);
        assert_eq!(
            calibrate_head(&mut net, &data, 1.0).unwrap_err(),
            CalibrateError::EmptyDataset
        );
    }
}
