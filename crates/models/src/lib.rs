//! The model zoo: the eight CNN architectures of the paper's Table III.
//!
//! The paper evaluates AlexNet, NiN, GoogleNet, VGG-19, ResNet-50,
//! ResNet-152, SqueezeNet and MobileNet with pretrained Caffe weights.
//! This crate rebuilds the same eight *topologies* — preserving the
//! paper's analyzable-layer counts exactly (5, 12, 57, 16, 54, 156, 26,
//! 28) and every structural feature the method must cope with (grouped
//! convolutions, LRN, inception branches, residual additions, fire
//! modules, depthwise separability) — at reduced channel/spatial scale,
//! with He-initialized weights and a ridge-regression-calibrated
//! classifier head (see `DESIGN.md`, substitution table).
//!
//! Following Stripes, the paper ignores fully-connected layers for
//! AlexNet, NiN, GoogleNet and VGG-19; [`ModelKind::analyzable_layers`]
//! encodes that convention.
//!
//! # Example
//!
//! ```
//! use mupod_models::{ModelKind, ModelScale};
//!
//! let net = ModelKind::AlexNet.build(&ModelScale::tiny(), 42);
//! let analyzable = ModelKind::AlexNet.analyzable_layers(&net);
//! assert_eq!(analyzable.len(), 5); // the paper's "# layers" column
//! ```

mod alexnet;
mod blocks;
pub mod calibrate;
mod googlenet;
pub mod init;
mod mobilenet;
mod nin;
mod resnet;
mod squeezenet;
mod vgg;

use mupod_nn::{Network, NodeId, Op};

/// The eight networks of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// AlexNet (5 analyzable conv layers; FC layers present but ignored).
    AlexNet,
    /// Network-in-Network (12 conv layers).
    Nin,
    /// GoogleNet (57 conv layers; the FC classifier is ignored).
    GoogleNet,
    /// VGG-19 (16 conv layers; FC layers present but ignored).
    Vgg19,
    /// ResNet-50 (53 convs + 1 FC = 54 analyzable layers).
    ResNet50,
    /// ResNet-152 (155 convs + 1 FC = 156 analyzable layers).
    ResNet152,
    /// SqueezeNet (26 conv layers).
    SqueezeNet,
    /// MobileNet (27 convs + 1 FC = 28 analyzable layers).
    MobileNet,
}

impl ModelKind {
    /// All eight kinds, in the paper's Table III row order.
    pub const ALL: [ModelKind; 8] = [
        ModelKind::AlexNet,
        ModelKind::Nin,
        ModelKind::GoogleNet,
        ModelKind::Vgg19,
        ModelKind::ResNet50,
        ModelKind::ResNet152,
        ModelKind::SqueezeNet,
        ModelKind::MobileNet,
    ];

    /// The paper's "# layers" column for this network.
    pub fn paper_layer_count(&self) -> usize {
        match self {
            ModelKind::AlexNet => 5,
            ModelKind::Nin => 12,
            ModelKind::GoogleNet => 57,
            ModelKind::Vgg19 => 16,
            ModelKind::ResNet50 => 54,
            ModelKind::ResNet152 => 156,
            ModelKind::SqueezeNet => 26,
            ModelKind::MobileNet => 28,
        }
    }

    /// Whether the paper (following Stripes) excludes fully-connected
    /// layers from the bitwidth analysis for this network.
    pub fn ignores_fc(&self) -> bool {
        matches!(
            self,
            ModelKind::AlexNet | ModelKind::Nin | ModelKind::GoogleNet | ModelKind::Vgg19
        )
    }

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::AlexNet => "AlexNet",
            ModelKind::Nin => "NiN",
            ModelKind::GoogleNet => "GoogleNet",
            ModelKind::Vgg19 => "VGG-19",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::ResNet152 => "ResNet-152",
            ModelKind::SqueezeNet => "SqueezeNet",
            ModelKind::MobileNet => "MobileNet",
        }
    }

    /// Builds the network at the given scale with seeded He weights.
    pub fn build(&self, scale: &ModelScale, seed: u64) -> Network {
        match self {
            ModelKind::AlexNet => alexnet::build(scale, seed),
            ModelKind::Nin => nin::build(scale, seed),
            ModelKind::GoogleNet => googlenet::build(scale, seed),
            ModelKind::Vgg19 => vgg::build(scale, seed),
            ModelKind::ResNet50 => resnet::build_resnet50(scale, seed),
            ModelKind::ResNet152 => resnet::build_resnet152(scale, seed),
            ModelKind::SqueezeNet => squeezenet::build(scale, seed),
            ModelKind::MobileNet => mobilenet::build(scale, seed),
        }
    }

    /// The dot-product layers the paper's method allocates bitwidths
    /// over: all of them, minus fully-connected layers for the four
    /// networks where Stripes ignored them.
    pub fn analyzable_layers(&self, net: &Network) -> Vec<NodeId> {
        net.dot_product_layers()
            .into_iter()
            .filter(|&id| !self.ignores_fc() || matches!(net.node(id).op, Op::Conv2d { .. }))
            .collect()
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scale preset controlling input resolution, channel widths and class
/// count.
///
/// Architectural *depth* (the paper's layer counts) never changes with
/// scale; only the per-layer widths and image size do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelScale {
    /// Input image side (images are square, 3-channel).
    pub input_hw: usize,
    /// Base channel multiplier: stage widths are small multiples of it.
    pub base_channels: usize,
    /// Output classes.
    pub classes: usize,
}

impl ModelScale {
    /// Minimal scale for unit tests (16×16 input, 4 base channels).
    pub fn tiny() -> Self {
        Self {
            input_hw: 16,
            base_channels: 4,
            classes: 8,
        }
    }

    /// Experiment scale (32×32 input, 8 base channels).
    pub fn small() -> Self {
        Self {
            input_hw: 32,
            base_channels: 8,
            classes: 10,
        }
    }

    /// CHW input dimensions.
    pub fn input_dims(&self) -> [usize; 3] {
        [3, self.input_hw, self.input_hw]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layer_counts_match_table3() {
        let counts: Vec<usize> = ModelKind::ALL
            .iter()
            .map(|k| k.paper_layer_count())
            .collect();
        assert_eq!(counts, vec![5, 12, 57, 16, 54, 156, 26, 28]);
    }

    #[test]
    fn fc_ignore_convention() {
        assert!(ModelKind::AlexNet.ignores_fc());
        assert!(ModelKind::Vgg19.ignores_fc());
        assert!(!ModelKind::ResNet50.ignores_fc());
        assert!(!ModelKind::MobileNet.ignores_fc());
    }

    #[test]
    fn every_model_matches_its_paper_layer_count() {
        let scale = ModelScale::tiny();
        for kind in ModelKind::ALL {
            let net = kind.build(&scale, 7);
            let layers = kind.analyzable_layers(&net);
            assert_eq!(
                layers.len(),
                kind.paper_layer_count(),
                "{kind} has {} analyzable layers, paper says {}",
                layers.len(),
                kind.paper_layer_count()
            );
        }
    }

    #[test]
    fn every_model_runs_forward() {
        let scale = ModelScale::tiny();
        let image = mupod_tensor::Tensor::filled(&scale.input_dims(), 10.0);
        for kind in ModelKind::ALL {
            let net = kind.build(&scale, 11);
            let acts = net.forward(&image);
            let out = net.output(&acts);
            assert_eq!(out.dims(), &[scale.classes], "{kind} output shape");
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "{kind} produced non-finite logits"
            );
        }
    }

    #[test]
    fn seeds_change_weights() {
        let scale = ModelScale::tiny();
        let a = ModelKind::AlexNet.build(&scale, 1);
        let b = ModelKind::AlexNet.build(&scale, 2);
        let image = mupod_tensor::Tensor::filled(&scale.input_dims(), 5.0);
        let oa = a.forward(&image);
        let ob = b.forward(&image);
        assert_ne!(a.output(&oa).data(), b.output(&ob).data());
    }
}
