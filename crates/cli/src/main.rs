//! The `mupod` command-line tool. See [`mupod_cli::USAGE`].

use mupod_cli::CliError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mupod_cli::parse(&args).and_then(|cmd| mupod_cli::run(&cmd)) {
        Ok(text) => print!("{text}"),
        // Bad invocation: explain and show usage (exit 2). Runtime
        // failure: one-line diagnostic only (exit 1) — the arguments
        // were fine, repeating the usage text would bury the error.
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}");
            eprintln!();
            eprintln!("{}", mupod_cli::USAGE);
            std::process::exit(2);
        }
        Err(e @ CliError::Run(_)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
