//! The `mupod` command-line tool. See [`mupod_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mupod_cli::parse(&args).and_then(|cmd| mupod_cli::run(&cmd)) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!();
            eprintln!("{}", mupod_cli::USAGE);
            std::process::exit(2);
        }
    }
}
