//! The `mupod` command-line tool. See [`mupod_cli::USAGE`].

use mupod_cli::CliError;
use mupod_runtime::StatusCode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // One token for the whole run: SIGINT flips it, every stage drains
    // at its next checkpoint, observability still exports, and the exit
    // status tells scripts exactly what happened.
    let token = mupod_runtime::CancelToken::new();
    mupod_runtime::install_sigint(&token);
    // Bad invocation: explain and show usage (exit 2). Runtime failure:
    // one-line diagnostic only (exit 1) — the arguments were fine,
    // repeating the usage text would bury the error. Supervised
    // failures get their own codes so unattended sweeps can tell "raise
    // the deadline" (4) from "investigate" (3) from "the user hit
    // Ctrl-C" (130). All codes come from the one shared table,
    // `mupod_runtime::StatusCode`, which the serving stack also uses
    // for its wire statuses.
    let status =
        match mupod_cli::parse(&args).and_then(|cmd| mupod_cli::run_with_token(&cmd, &token)) {
            Ok(text) => {
                print!("{text}");
                StatusCode::Ok
            }
            Err(CliError::Usage(msg)) => {
                eprintln!("usage error: {msg}");
                eprintln!();
                eprintln!("{}", mupod_cli::USAGE);
                StatusCode::UsageError
            }
            Err(e @ CliError::Run(_)) => {
                eprintln!("error: {e}");
                StatusCode::RunError
            }
            Err(e @ CliError::StageFailed(_)) => {
                eprintln!("error: {e}");
                StatusCode::StageFailed
            }
            Err(e @ CliError::StageTimeout(_)) => {
                eprintln!("error: {e}");
                StatusCode::StageTimeout
            }
            Err(e @ CliError::Interrupted) => {
                eprintln!("error: {e}");
                StatusCode::Interrupted
            }
        };
    std::process::exit(status.exit_code());
}
