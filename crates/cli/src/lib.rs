//! Argument parsing and command implementations for the `mupod` CLI.
//!
//! The binary exposes the paper's workflow as three subcommands, plus a
//! serving pair:
//!
//! ```text
//! mupod inspect  --model alexnet [--scale tiny|small]
//! mupod profile  --model alexnet --out profile.csv [--images N]
//! mupod optimize --model alexnet --objective bandwidth --loss 1
//!                [--profile profile.csv] [--scheme equal|gaussian]
//! mupod serve    --model alexnet [--addr 127.0.0.1:0] [--workers N]
//! mupod query    --model alexnet --addr 127.0.0.1:PORT [--count N]
//! ```
//!
//! `profile` is the expensive stage; its CSV can be fed to any number of
//! later `optimize` invocations with different constraints — the
//! workflow §VI-A of the paper describes. `serve` runs the calibrated
//! model behind the fault-tolerant batched TCP server in `mupod-serve`
//! (DESIGN.md §12) and `query` is its loopback client. With
//! `--metrics-addr` the server also binds a live telemetry plane
//! (`/metrics`, `/health`, `/flight`; DESIGN.md §13), and
//! `query --dump-flight` seals its flight recorder to disk.
//!
//! Every subcommand also accepts the observability flags: `--log-level`
//! controls structured stderr events, `--metrics-out` writes the final
//! counter/histogram/span snapshot as JSON, and `--trace-out` writes a
//! Chrome `trace_event` timeline loadable in `chrome://tracing` (see
//! DESIGN.md §8).

use mupod_core::{Objective, PrecisionOptimizer, Profile, ProfileConfig, SearchScheme};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head_quick, ModelKind, ModelScale};
use mupod_nn::inventory::LayerInventory;
use mupod_nn::{KernelTier, Network};
use mupod_runtime::{CancelToken, ErrorClass, RetryPolicy, StageError, StagePolicy, Supervisor};
use std::fmt::Write as _;
use std::time::Duration;

/// Test hook: when set to a number of milliseconds, every supervised
/// pipeline inserts a cancellable delay inside its first stage. This
/// gives the integration tests a deterministic window in which to
/// deliver SIGINT or let a `--stage-timeout` watchdog fire, without
/// depending on how fast profiling happens to run on the host.
pub const TEST_STAGE_DELAY_ENV: &str = "MUPOD_TEST_STAGE_DELAY_MS";

/// Test hook: when set to a number of milliseconds, `mupod serve`
/// workers sleep that long before executing each batch. The chaos tests
/// use it to hold a batch in flight while they deliver SIGINT or let a
/// request deadline expire, without guessing at host speed.
pub const SERVE_TEST_SLOW_ENV: &str = "MUPOD_SERVE_TEST_SLOW_MS";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print the per-layer inventory of a model.
    Inspect(CommonArgs),
    /// Profile λ/θ and write the CSV.
    Profile(CommonArgs, ProfileArgs),
    /// Run the optimizer and print the allocation.
    Optimize(CommonArgs, OptimizeArgs),
    /// Serve the calibrated model over TCP until SIGINT drains it.
    Serve(CommonArgs, ServeArgs),
    /// Send classify requests to a running `mupod serve`.
    Query(CommonArgs, QueryArgs),
    /// Run the multi-shard routing front until SIGINT drains it.
    /// Model-free: the router forwards frames, it never executes them.
    Route(RouteArgs),
    /// Hot-swap the model of a running shard (drain-and-swap).
    Reload(ReloadArgs),
    /// Print usage.
    Help,
}

/// Arguments shared by all subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Which zoo model to build.
    pub model: ModelKind,
    /// Scale preset.
    pub scale: ModelScale,
    /// Master seed (weights, data).
    pub seed: u64,
    /// Dataset size for calibration + evaluation.
    pub images: usize,
    /// Verbosity of structured stderr events.
    pub log_level: mupod_obs::Level,
    /// Optional path for the final metrics snapshot (JSON).
    pub metrics_out: Option<String>,
    /// Optional path for the Chrome `trace_event` timeline (JSON).
    pub trace_out: Option<String>,
    /// Watchdog deadline per pipeline stage (`--stage-timeout`);
    /// `None` means unbounded.
    pub stage_timeout: Option<Duration>,
    /// Attempt budget per stage for transient failures (`--retries`).
    pub retries: u32,
    /// Worker threads for the profiling sweep and parallel evaluators
    /// (`--threads`); `0` means "use the machine's available
    /// parallelism". Results are bit-identical for any value.
    pub threads: usize,
    /// Kernel tier for every forward pass (`--kernel-tier`). `Exact`
    /// (the default) keeps artifacts byte-reproducible; `Fast` trades
    /// bit-exactness for SIMD/FMA throughput (DESIGN.md §16).
    pub kernel_tier: KernelTier,
}

/// `profile` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArgs {
    /// Output CSV path.
    pub out: String,
    /// Noise magnitudes per layer.
    pub n_deltas: usize,
    /// Optional checkpoint journal: completed layers are appended here
    /// and skipped on re-runs after an interruption.
    pub journal: Option<String>,
}

/// `optimize` options.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeArgs {
    /// Hardware criterion.
    pub objective: Objective,
    /// Relative accuracy loss budget (fraction, e.g. 0.01).
    pub loss: f64,
    /// Optional pre-computed profile CSV.
    pub profile: Option<String>,
    /// σ-search scheme.
    pub scheme: SearchScheme,
    /// Optional path to write the resulting allocation CSV.
    pub save: Option<String>,
}

/// `serve` options; defaults mirror [`mupod_serve::ServeConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Bind address (`--addr`); port 0 picks an ephemeral port, printed
    /// on the "serving on ..." line once the listener is live.
    pub addr: String,
    /// Worker threads, each with its own batch arena (`--workers`).
    pub workers: usize,
    /// Bounded admission queue capacity (`--queue-depth`).
    pub queue_depth: usize,
    /// Largest batch gathered per forward pass (`--max-batch`).
    pub max_batch: usize,
    /// Default per-request deadline, ms (`--deadline-ms`).
    pub deadline_ms: u64,
    /// Worker panics tolerated before the server drains
    /// (`--restart-budget`).
    pub restart_budget: u32,
    /// Honor fault-injection frames (`--chaos`; tests only).
    pub chaos: bool,
    /// Bind address for the telemetry plane (`--metrics-addr`);
    /// `None` disables the `/metrics`, `/health` and `/flight`
    /// endpoints. Printed on the "metrics on ..." line once live.
    pub metrics_addr: Option<String>,
    /// Where worker panics and budget exhaustion seal the flight
    /// recorder (`--flight-out`); `None` disables automatic dumps.
    pub flight_out: Option<String>,
}

/// `query` options.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Server address (`--addr`, required).
    pub addr: String,
    /// Number of sequential requests to send (`--count`).
    pub count: usize,
    /// Per-request deadline, ms; 0 uses the server default
    /// (`--deadline-ms`).
    pub deadline_ms: u32,
    /// Mark requests sheddable under load (`--low-priority`).
    pub low_priority: bool,
    /// Fetch `/flight` from the telemetry plane at `--addr` (the
    /// server's *metrics* address, not its frame port) and seal it to
    /// this path instead of sending classify requests
    /// (`--dump-flight`).
    pub dump_flight: Option<String>,
    /// Attempts per request for connect failures and retryable wire
    /// statuses (`--retries`; shares the flag with the pipeline's
    /// per-stage budget). Exhaustion exits 3.
    pub retries: u32,
    /// Base delay between attempts (`--retry-backoff-ms`), doubled per
    /// retry with deterministic jitter from `--seed`.
    pub retry_backoff_ms: u64,
}

/// `route` options; defaults mirror [`mupod_serve::RouteConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouteArgs {
    /// Front bind address (`--addr`); port 0 picks an ephemeral port,
    /// printed on the "routing on ..." line once live.
    pub addr: String,
    /// Backend shard addresses (`--shard`, repeatable, at least one).
    pub shards: Vec<String>,
    /// Deadline for requests that do not carry one, ms
    /// (`--deadline-ms`).
    pub deadline_ms: u64,
    /// Extra attempts per retryable request (`--retry-budget`).
    pub retry_budget: u32,
    /// Hedge-timer floor, ms (`--hedge-ms`); the effective timer is
    /// the max of this and the windowed p99.
    pub hedge_ms: u64,
    /// Active health-ping cadence, ms (`--health-interval-ms`).
    pub health_interval_ms: u64,
    /// Consecutive failures that open a shard's breaker
    /// (`--breaker-threshold`).
    pub breaker_threshold: u32,
    /// Base breaker cooldown, ms (`--breaker-cooldown-ms`).
    pub breaker_cooldown_ms: u64,
    /// Bind address for the router's own telemetry plane
    /// (`--metrics-addr`).
    pub metrics_addr: Option<String>,
    /// Seal the router flight recorder here at drain (`--flight-out`).
    pub flight_out: Option<String>,
    /// Verbosity of structured stderr events (`--log-level`).
    pub log_level: mupod_obs::Level,
}

/// `reload` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ReloadArgs {
    /// The shard's frame address (`--addr`, required) — reloads go
    /// directly to a shard, never through the router.
    pub addr: String,
    /// Seed for the rebuilt model's weights (`--seed`).
    pub seed: u64,
    /// How long to wait for the rebuild + swap, ms (`--deadline-ms`).
    pub deadline_ms: u64,
    /// Verbosity of structured stderr events (`--log-level`).
    pub log_level: mupod_obs::Level,
}

/// Errors from parsing or running a command.
///
/// Each variant maps to a distinct process exit status drawn from the
/// shared [`mupod_runtime::StatusCode`] table (see `main.rs` and
/// DESIGN.md §9): `Usage` → 2, `Run` → 1, `StageFailed` → 3,
/// `StageTimeout` → 4, `Interrupted` → 130.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; payload is the message to show.
    Usage(String),
    /// Any downstream failure outside a supervised stage.
    Run(String),
    /// A supervised stage exhausted its retry budget (and had no
    /// fallback); partial artifacts on disk are intact.
    StageFailed(String),
    /// A stage overran its `--stage-timeout` watchdog and drained.
    StageTimeout(String),
    /// SIGINT arrived; the pipeline drained to a graceful stop.
    Interrupted,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Run(m) => write!(f, "{m}"),
            CliError::StageFailed(m) => write!(f, "{m}"),
            CliError::StageTimeout(m) => write!(f, "{m}"),
            CliError::Interrupted => {
                write!(f, "interrupted; drained to a graceful stop")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// A supervised stage's failure, tagged with whether a retry could
/// plausibly help. Flaky I/O and panicked workers are transient;
/// deterministic pipeline errors (bad model, failed validation,
/// malformed input files) are permanent — retrying replays the same
/// deterministic computation.
#[derive(Debug)]
enum StageFault {
    Transient(String),
    Permanent(String),
}

impl std::fmt::Display for StageFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageFault::Transient(m) | StageFault::Permanent(m) => write!(f, "{m}"),
        }
    }
}

fn classify(fault: &StageFault) -> ErrorClass {
    match fault {
        StageFault::Transient(_) => ErrorClass::Transient,
        StageFault::Permanent(_) => ErrorClass::Permanent,
    }
}

/// Lowers a supervisor verdict into the CLI's exit-code-bearing error.
fn stage_err(e: StageError<StageFault>) -> CliError {
    match e {
        StageError::Cancelled { .. } => CliError::Interrupted,
        StageError::TimedOut { stage, timeout } => CliError::StageTimeout(format!(
            "stage `{stage}` exceeded its {:.1}s deadline and was drained \
             (raise --stage-timeout for larger models)",
            timeout.as_secs_f64()
        )),
        StageError::Failed {
            stage,
            attempts,
            error,
        } => CliError::StageFailed(format!(
            "stage `{stage}` failed after {attempts} attempt(s): {error}"
        )),
    }
}

/// The cancellable test-hook delay (see [`TEST_STAGE_DELAY_ENV`]).
fn test_stage_delay(token: &CancelToken) -> Result<(), StageFault> {
    if let Ok(ms) = std::env::var(TEST_STAGE_DELAY_ENV) {
        let ms: u64 = ms.parse().unwrap_or(0);
        token
            .sleep_cancellable(Duration::from_millis(ms))
            .map_err(|c| StageFault::Permanent(c.to_string()))?;
    }
    Ok(())
}

/// Usage text shown by `mupod help`.
pub const USAGE: &str = "\
mupod — multi-objective precision optimization (DATE 2019 reproduction)

USAGE:
  mupod inspect  --model <name> [--scale tiny|small] [--seed N] [--images N]
  mupod profile  --model <name> --out <file.csv> [--deltas N]
                 [--journal <file.journal>] [common flags]
  mupod optimize --model <name> --objective <bandwidth|mac|unweighted>
                 [--loss <percent>] [--profile <file.csv>]
                 [--scheme equal|gaussian] [--save <alloc.csv>]
                 [common flags]
  mupod serve    --model <name> [--addr 127.0.0.1:0] [--workers N]
                 [--queue-depth N] [--max-batch N] [--deadline-ms MS]
                 [--restart-budget N] [--metrics-addr host:port]
                 [--flight-out <file.json>] [--kernel-tier exact|fast]
                 [--chaos] [common flags]
  mupod query    --model <name> --addr <host:port> [--count N]
                 [--deadline-ms MS] [--low-priority]
                 [--retries N] [--retry-backoff-ms MS]
                 [--dump-flight <file.json>]
  mupod route    --shard <host:port> [--shard ...] [--addr 127.0.0.1:0]
                 [--retry-budget N] [--hedge-ms MS]
                 [--health-interval-ms MS] [--breaker-threshold N]
                 [--breaker-cooldown-ms MS] [--deadline-ms MS]
                 [--metrics-addr host:port] [--flight-out <file.json>]
  mupod reload   --addr <shard host:port> [--seed N] [--deadline-ms MS]
  mupod help

COMMON FLAGS (observability):
  --log-level off|error|warn|info|debug|trace   stderr event verbosity
                                                (default warn; info adds
                                                per-layer progress lines)
  --metrics-out <file.json>   write final counters/histograms/span timings
  --trace-out <file.json>     write a Chrome trace_event timeline
                              (open in chrome://tracing or Perfetto)

COMMON FLAGS (performance):
  --threads <n>               worker threads for the profiling sweep and
                              accuracy evaluation (default 0 = all cores;
                              results are identical for any value)
  --kernel-tier exact|fast    forward-pass kernel tier (default exact).
                              `exact` is bit-reproducible everywhere;
                              `fast` enables SIMD/FMA reassociated
                              kernels — faster, not byte-comparable
                              against exact artifacts (DESIGN.md §16)

COMMON FLAGS (robustness):
  --stage-timeout <secs>      watchdog deadline per pipeline stage; an
                              overrunning stage drains and exits 4
  --retries <n>               attempts per stage for transient failures
                              (default 3; deterministic errors never retry)

SERVING (see DESIGN.md §12):
  `serve` prints `serving on <addr> kernel-tier=<tier>` once live
  (the active tier also lands in the drain summary and the
  `mupod_serve_kernel_tier` gauge, so chaos/soak logs record which
  tier was under test; `query` answers come from whichever tier the
  server was started with) and runs until SIGINT, then drains:
  in-flight requests finish, queued ones are answered
  `13 draining`, metrics flush, and the process exits 0. Admission
  rejects with `10 server busy` when the queue is full; expired
  requests get `11 deadline exceeded`; a crashed worker answers its
  batch `14 worker crashed` and restarts under --restart-budget.

TELEMETRY (see DESIGN.md §13):
  With --metrics-addr the server binds a second, read-only listener:
  GET /metrics is Prometheus text exposition (counters, gauges, a
  cumulative latency histogram and a 60 s rolling window with
  p50/p99), /health is a JSON liveness document (HTTP 503 while
  draining), and /flight is the bounded in-memory ring of
  request-lifecycle events (admit/dequeue/exec/reply/shed/crash),
  each tagged with the client's optional 8-byte trace ID. Worker
  panics and budget exhaustion seal the ring to --flight-out as a
  verified artifact; `mupod query --addr <metrics-addr>
  --dump-flight <file>` fetches and seals it on demand.

SCALING OUT (see DESIGN.md §14):
  `route` is a model-free front over N `mupod serve` shards speaking
  the same frame protocol: health-checked round-robin with per-shard
  circuit breakers, bounded retry of idempotent requests on another
  shard, and p99-informed hedging — all inside each request's
  deadline. `reload` hot-swaps one shard's model (rebuild at --seed,
  calibrate, drain-and-swap) with zero dropped requests; during the
  swap the router steers traffic to the remaining shards. `query
  --retries` adds the matching client-side retry with deterministic
  jittered backoff; exhausting it exits 3.

EXIT CODES: 0 ok (incl. a drained `serve`), 1 run error, 2 usage,
            3 stage failed after retries / serve restart budget
            exhausted, 4 stage timeout, 130 interrupted (Ctrl-C;
            `serve` only on a forced second Ctrl-C)

MODELS: alexnet nin googlenet vgg19 resnet50 resnet152 squeezenet mobilenet
";

fn parse_model(name: &str) -> Result<ModelKind, CliError> {
    let normalized: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    ModelKind::ALL
        .iter()
        .copied()
        .find(|k| {
            k.name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase()
                == normalized
        })
        .ok_or_else(|| CliError::Usage(format!("unknown model `{name}`")))
}

/// Validates `--addr` at parse time so a typo is a usage error (exit
/// 2), not a runtime bind failure.
fn parse_sock_addr(addr: &str) -> Result<std::net::SocketAddr, CliError> {
    addr.parse()
        .map_err(|_| CliError::Usage(format!("bad --addr `{addr}` (want host:port)")))
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, CliError> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage(format!("missing value for {flag}")))
}

/// Parses a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] with a human-readable message on any
/// malformed input.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    if sub == "help" || sub == "--help" || sub == "-h" {
        return Ok(Command::Help);
    }
    let mut model = None;
    let mut scale = ModelScale::small();
    let mut seed = 42u64;
    let mut images = 160usize;
    let mut out = None;
    let mut n_deltas = 20usize;
    let mut journal = None;
    let mut objective = None;
    let mut loss = 0.01f64;
    let mut profile = None;
    let mut scheme = SearchScheme::EqualScheme;
    let mut save = None;
    let mut log_level = mupod_obs::Level::Warn;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut stage_timeout = None;
    let mut retries = 3u32;
    let mut threads = 0usize;
    let mut kernel_tier = KernelTier::Exact;
    let mut addr = None;
    let mut workers = 2usize;
    let mut queue_depth = 32usize;
    let mut max_batch = 4usize;
    let mut deadline_ms = None;
    let mut restart_budget = 8u32;
    let mut chaos = false;
    let mut metrics_addr = None;
    let mut flight_out = None;
    let mut count = 1usize;
    let mut low_priority = false;
    let mut dump_flight = None;
    let mut retry_backoff_ms = 50u64;
    let mut shards: Vec<String> = Vec::new();
    let mut retry_budget = 2u32;
    let mut hedge_ms = 25u64;
    let mut health_interval_ms = 200u64;
    let mut breaker_threshold = 3u32;
    let mut breaker_cooldown_ms = 500u64;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => model = Some(parse_model(take_value(args, &mut i, "--model")?)?),
            "--scale" => {
                scale = match take_value(args, &mut i, "--scale")? {
                    "tiny" => ModelScale::tiny(),
                    "small" => ModelScale::small(),
                    other => return Err(CliError::Usage(format!("unknown scale `{other}`"))),
                }
            }
            "--seed" => {
                seed = take_value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --seed".into()))?
            }
            "--images" => {
                images = take_value(args, &mut i, "--images")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --images".into()))?
            }
            "--out" => out = Some(take_value(args, &mut i, "--out")?.to_string()),
            "--journal" => journal = Some(take_value(args, &mut i, "--journal")?.to_string()),
            "--deltas" => {
                n_deltas = take_value(args, &mut i, "--deltas")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --deltas".into()))?
            }
            "--objective" => {
                objective = Some(match take_value(args, &mut i, "--objective")? {
                    "bandwidth" | "bw" | "input" => Objective::Bandwidth,
                    "mac" | "energy" | "mac-energy" => Objective::MacEnergy,
                    "unweighted" => Objective::Unweighted,
                    other => return Err(CliError::Usage(format!("unknown objective `{other}`"))),
                })
            }
            "--loss" => {
                let pct: f64 = take_value(args, &mut i, "--loss")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --loss".into()))?;
                loss = pct / 100.0;
            }
            "--profile" => profile = Some(take_value(args, &mut i, "--profile")?.to_string()),
            "--save" => save = Some(take_value(args, &mut i, "--save")?.to_string()),
            "--log-level" => {
                log_level = mupod_obs::Level::parse(take_value(args, &mut i, "--log-level")?)
                    .map_err(CliError::Usage)?
            }
            "--metrics-out" => {
                metrics_out = Some(take_value(args, &mut i, "--metrics-out")?.to_string())
            }
            "--trace-out" => trace_out = Some(take_value(args, &mut i, "--trace-out")?.to_string()),
            "--stage-timeout" => {
                let secs: f64 = take_value(args, &mut i, "--stage-timeout")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --stage-timeout".into()))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(CliError::Usage(
                        "--stage-timeout must be a positive number of seconds".into(),
                    ));
                }
                stage_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--retries" => {
                let n: u32 = take_value(args, &mut i, "--retries")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --retries".into()))?;
                retries = n.max(1);
            }
            "--threads" => {
                threads = take_value(args, &mut i, "--threads")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --threads".into()))?
            }
            "--kernel-tier" => {
                let v = take_value(args, &mut i, "--kernel-tier")?;
                kernel_tier = KernelTier::parse(v).ok_or_else(|| {
                    CliError::Usage(format!("bad --kernel-tier `{v}` (want exact|fast)"))
                })?;
            }
            "--addr" => addr = Some(take_value(args, &mut i, "--addr")?.to_string()),
            "--workers" => {
                let n: usize = take_value(args, &mut i, "--workers")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --workers".into()))?;
                workers = n.max(1);
            }
            "--queue-depth" => {
                let n: usize = take_value(args, &mut i, "--queue-depth")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --queue-depth".into()))?;
                queue_depth = n.max(1);
            }
            "--max-batch" => {
                let n: usize = take_value(args, &mut i, "--max-batch")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --max-batch".into()))?;
                max_batch = n.max(1);
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    take_value(args, &mut i, "--deadline-ms")?
                        .parse::<u64>()
                        .map_err(|_| CliError::Usage("bad --deadline-ms".into()))?,
                )
            }
            "--restart-budget" => {
                restart_budget = take_value(args, &mut i, "--restart-budget")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --restart-budget".into()))?
            }
            "--chaos" => chaos = true,
            "--metrics-addr" => {
                metrics_addr = Some(take_value(args, &mut i, "--metrics-addr")?.to_string())
            }
            "--flight-out" => {
                flight_out = Some(take_value(args, &mut i, "--flight-out")?.to_string())
            }
            "--dump-flight" => {
                dump_flight = Some(take_value(args, &mut i, "--dump-flight")?.to_string())
            }
            "--count" => {
                let n: usize = take_value(args, &mut i, "--count")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --count".into()))?;
                count = n.max(1);
            }
            "--low-priority" => low_priority = true,
            "--retry-backoff-ms" => {
                retry_backoff_ms = take_value(args, &mut i, "--retry-backoff-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --retry-backoff-ms".into()))?
            }
            "--shard" => {
                let s = take_value(args, &mut i, "--shard")?;
                parse_sock_addr(s)
                    .map_err(|_| CliError::Usage(format!("bad --shard `{s}` (want host:port)")))?;
                shards.push(s.to_string());
            }
            "--retry-budget" => {
                retry_budget = take_value(args, &mut i, "--retry-budget")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --retry-budget".into()))?
            }
            "--hedge-ms" => {
                hedge_ms = take_value(args, &mut i, "--hedge-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --hedge-ms".into()))?
            }
            "--health-interval-ms" => {
                let n: u64 = take_value(args, &mut i, "--health-interval-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --health-interval-ms".into()))?;
                health_interval_ms = n.max(10);
            }
            "--breaker-threshold" => {
                let n: u32 = take_value(args, &mut i, "--breaker-threshold")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --breaker-threshold".into()))?;
                breaker_threshold = n.max(1);
            }
            "--breaker-cooldown-ms" => {
                let n: u64 = take_value(args, &mut i, "--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|_| CliError::Usage("bad --breaker-cooldown-ms".into()))?;
                breaker_cooldown_ms = n.max(1);
            }
            "--scheme" => {
                scheme = match take_value(args, &mut i, "--scheme")? {
                    "equal" | "scheme1" => SearchScheme::EqualScheme,
                    "gaussian" | "scheme2" => SearchScheme::GaussianApprox,
                    other => return Err(CliError::Usage(format!("unknown scheme `{other}`"))),
                }
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        i += 1;
    }

    // Model-free subcommands resolve before CommonArgs demands --model.
    match sub.as_str() {
        "route" => {
            let addr = addr.unwrap_or_else(|| "127.0.0.1:0".to_string());
            parse_sock_addr(&addr)?;
            if shards.is_empty() {
                return Err(CliError::Usage(
                    "route needs at least one --shard <host:port>".into(),
                ));
            }
            if let Some(m) = &metrics_addr {
                parse_sock_addr(m).map_err(|_| {
                    CliError::Usage(format!("bad --metrics-addr `{m}` (want host:port)"))
                })?;
            }
            return Ok(Command::Route(RouteArgs {
                addr,
                shards,
                deadline_ms: deadline_ms.unwrap_or(1_000),
                retry_budget,
                hedge_ms,
                health_interval_ms,
                breaker_threshold,
                breaker_cooldown_ms,
                metrics_addr,
                flight_out,
                log_level,
            }));
        }
        "reload" => {
            let addr = addr.ok_or_else(|| CliError::Usage("--addr is required".into()))?;
            parse_sock_addr(&addr)?;
            return Ok(Command::Reload(ReloadArgs {
                addr,
                seed,
                deadline_ms: deadline_ms.unwrap_or(30_000),
                log_level,
            }));
        }
        _ => {}
    }
    let common = CommonArgs {
        model: model.ok_or_else(|| CliError::Usage("--model is required".into()))?,
        scale,
        seed,
        images,
        log_level,
        metrics_out,
        trace_out,
        stage_timeout,
        retries,
        threads,
        kernel_tier,
    };
    match sub.as_str() {
        "inspect" => Ok(Command::Inspect(common)),
        "profile" => Ok(Command::Profile(
            common,
            ProfileArgs {
                out: out.ok_or_else(|| CliError::Usage("--out is required".into()))?,
                n_deltas,
                journal,
            },
        )),
        "optimize" => Ok(Command::Optimize(
            common,
            OptimizeArgs {
                objective: objective
                    .ok_or_else(|| CliError::Usage("--objective is required".into()))?,
                loss,
                profile,
                scheme,
                save,
            },
        )),
        "serve" => {
            let addr = addr.unwrap_or_else(|| "127.0.0.1:0".to_string());
            parse_sock_addr(&addr)?;
            if let Some(m) = &metrics_addr {
                parse_sock_addr(m).map_err(|_| {
                    CliError::Usage(format!("bad --metrics-addr `{m}` (want host:port)"))
                })?;
            }
            Ok(Command::Serve(
                common,
                ServeArgs {
                    addr,
                    workers,
                    queue_depth,
                    max_batch,
                    deadline_ms: deadline_ms.unwrap_or(1_000),
                    restart_budget,
                    chaos,
                    metrics_addr,
                    flight_out,
                },
            ))
        }
        "query" => {
            let addr = addr.ok_or_else(|| CliError::Usage("--addr is required".into()))?;
            parse_sock_addr(&addr)?;
            let deadline_ms = deadline_ms.unwrap_or(0);
            let deadline_ms = u32::try_from(deadline_ms)
                .map_err(|_| CliError::Usage("bad --deadline-ms".into()))?;
            Ok(Command::Query(
                common,
                QueryArgs {
                    addr,
                    count,
                    deadline_ms,
                    low_priority,
                    dump_flight,
                    retries,
                    retry_backoff_ms,
                },
            ))
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// Emits one structured warn event per fallback layer — the single
/// place the fallback warning is formatted, shared by `profile` and
/// `optimize`. The events reach stderr when `--log-level` is `warn` or
/// higher and land in the `--trace-out` timeline either way.
fn warn_fallback_layers(profile: &Profile) {
    for (name, reason) in profile.fallback_layers() {
        mupod_obs::event(
            mupod_obs::Level::Warn,
            "profile.fallback",
            &[("layer", name), ("reason", &reason.to_string())],
        );
    }
}

/// Forwards per-layer profiling progress as info-level events; the
/// recorder prints them to stderr when `--log-level` is `info`+.
fn progress_event(done: usize, total: usize, layer: &str) {
    mupod_obs::event(
        mupod_obs::Level::Info,
        "profile.progress",
        &[
            ("done", &done.to_string()),
            ("total", &total.to_string()),
            ("layer", layer),
        ],
    );
}

/// Renders the post-drain serving summary. The terminal status is part
/// of the first line, so the summary alone distinguishes a clean drain
/// (`status 0 (ok)`) from a budget-exhausted one (`status 3 (stage
/// failed after retries)`).
fn drain_summary(
    report: &mupod_serve::ServeReport,
    status: mupod_runtime::StatusCode,
    tier: KernelTier,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "drained: {} ok, {} busy, {} deadline-expired, {} draining, \
         {} bad frames, {} crashes, {} disconnects — status {status}",
        report.requests_ok,
        report.rejected_busy,
        report.deadline_expired,
        report.rejected_draining,
        report.bad_frames,
        report.worker_crashes,
        report.client_disconnects,
    );
    let _ = writeln!(
        s,
        "{} batches served {} requests; latency p50 {} µs, p99 {} µs; kernel-tier {}",
        report.batches,
        report.batched_requests,
        report.p50_latency_us,
        report.p99_latency_us,
        tier.name(),
    );
    s
}

/// Renders the post-drain routing summary (the router's counterpart to
/// [`drain_summary`]).
fn route_summary(report: &mupod_serve::RouteReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "routed: {} requests, {} ok, {} relayed errors, {} no-healthy-shard, \
         {} deadline-expired, {} bad frames, {} disconnects",
        report.requests,
        report.relayed_ok,
        report.relayed_errors,
        report.no_healthy_shard,
        report.deadline_exceeded,
        report.bad_frames,
        report.client_disconnects,
    );
    let _ = writeln!(
        s,
        "{} attempts ({} retries, {} hedges, {} hedge wins); breaker {} opens / {} closes; \
         latency p50 {} µs, p99 {} µs",
        report.forwarded_attempts,
        report.retries,
        report.hedges,
        report.hedge_wins,
        report.breaker_opens,
        report.breaker_closes,
        report.p50_latency_us,
        report.p99_latency_us,
    );
    s
}

/// Writes `--metrics-out` / `--trace-out` files from the run's recorder.
///
/// Both go through the atomic sealed writer: an export interrupted by a
/// crash leaves any previous snapshot intact, and a truncated file is
/// detected on load. The integrity footer starts with `#` — strip
/// `#mupod-artifact` lines (or use [`mupod_runtime::unseal`]) before
/// handing the JSON to a strict parser.
fn write_observability(
    common: &CommonArgs,
    recorder: &mupod_obs::Recorder,
) -> Result<(), CliError> {
    if let Some(path) = &common.metrics_out {
        let json = recorder.snapshot().to_json();
        mupod_runtime::write_atomic(std::path::Path::new(path), json.as_bytes())
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = &common.trace_out {
        let mut buf = Vec::new();
        recorder
            .write_chrome_trace(&mut buf)
            .map_err(|e| CliError::Run(format!("cannot render trace: {e}")))?;
        mupod_runtime::write_atomic(std::path::Path::new(path), &buf)
            .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

fn prepare(common: &CommonArgs) -> Result<(Network, Dataset), CliError> {
    let _span = mupod_obs::span("cli.prepare");
    let mut net = common.model.build(&common.scale, common.seed);
    let spec = DatasetSpec::new(
        common.scale.classes,
        3,
        common.scale.input_hw,
        common.scale.input_hw,
    )
    .with_class_seed(common.seed);
    let calib = Dataset::generate(&spec, common.seed ^ 0xA, common.images);
    let eval = Dataset::generate(&spec, common.seed ^ 0xB, common.images / 2);
    calibrate_head_quick(&mut net, &calib, 0.1)
        .map_err(|e| CliError::Run(format!("calibration failed: {e}")))?;
    Ok((net, eval))
}

/// Executes a parsed command with a private cancellation token (no
/// SIGINT wiring), returning the text to print. See [`run_with_token`].
///
/// # Errors
///
/// Returns [`CliError::Run`] when a pipeline stage fails (with the
/// underlying message).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    run_with_token(cmd, &CancelToken::new())
}

/// Executes a parsed command under supervision.
///
/// `token` is the run's cancellation token; `main` wires it to SIGINT
/// via [`mupod_runtime::install_sigint`] so Ctrl-C drains the pipeline
/// at the next checkpoint — observability exports still happen, partial
/// artifacts stay intact — and the process exits 130.
///
/// # Errors
///
/// [`CliError::Run`] for unsupervised failures, [`CliError::StageFailed`]
/// / [`CliError::StageTimeout`] / [`CliError::Interrupted`] from the
/// supervisor (distinct exit codes; see [`CliError`]).
pub fn run_with_token(cmd: &Command, token: &CancelToken) -> Result<String, CliError> {
    // Route/reload are model-free and carry their own log level; the
    // pipeline subcommands share CommonArgs (and its export flags).
    let (log_level, common) = match cmd {
        Command::Help => return Ok(USAGE.to_string()),
        Command::Route(r) => (r.log_level, None),
        Command::Reload(r) => (r.log_level, None),
        Command::Inspect(c)
        | Command::Profile(c, _)
        | Command::Optimize(c, _)
        | Command::Serve(c, _)
        | Command::Query(c, _) => (c.log_level, Some(c)),
    };
    // One recorder per invocation. Installing serializes concurrent
    // `run` calls in one process (the facade is process-global); the
    // guard is dropped before the exporters read the snapshot so every
    // span has closed.
    let recorder = mupod_obs::Recorder::new(log_level);
    let guard = recorder.install();
    let result = run_inner(cmd, token);
    drop(guard);
    // Export even when the pipeline failed or was cancelled — a trace of
    // a failed run is exactly what one wants to look at — but report the
    // run error first.
    let exported = match common {
        Some(c) => write_observability(c, &recorder),
        None => Ok(()),
    };
    let text = result?;
    exported?;
    Ok(text)
}

/// The per-stage supervision policy from the common flags.
fn stage_policy(common: &CommonArgs) -> StagePolicy {
    StagePolicy {
        timeout: common.stage_timeout,
        retry: RetryPolicy {
            max_attempts: common.retries.max(1),
            ..RetryPolicy::default()
        },
    }
}

fn run_inner(cmd: &Command, token: &CancelToken) -> Result<String, CliError> {
    let supervisor = Supervisor::new(token.clone());
    // The model/dataset build is deterministic — no retry — but it still
    // runs under the watchdog and honors the test-hook delay, so every
    // subcommand has a cancellable first stage.
    let supervised_prepare = |common: &CommonArgs| -> Result<(Network, Dataset), CliError> {
        supervisor
            .run_stage(
                "prepare",
                StagePolicy {
                    timeout: common.stage_timeout,
                    retry: RetryPolicy::no_retry(),
                },
                classify,
                |tok| {
                    test_stage_delay(tok)?;
                    prepare(common).map_err(|e| StageFault::Permanent(e.to_string()))
                },
            )
            .map(|o| o.value)
            .map_err(stage_err)
    };
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(USAGE),
        Command::Inspect(common) => {
            let _span = mupod_obs::span("cli.inspect");
            let (net, eval) = supervised_prepare(common)?;
            let layers = common.model.analyzable_layers(&net);
            let inventory = LayerInventory::measure(&net, eval.images().iter().cloned());
            let _ = writeln!(
                out,
                "{} — {} analyzable layers, {} parameters, held-out accuracy {:.1}%",
                common.model,
                layers.len(),
                net.parameter_count(),
                eval.accuracy_of(|img| net.classify(img)) * 100.0
            );
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>12} {:>10}",
                "layer", "#inputs", "#MACs", "max|X|"
            );
            for &id in &layers {
                let info = inventory
                    .find(id)
                    .ok_or_else(|| CliError::Run(format!("layer {id} missing from inventory")))?;
                let _ = writeln!(
                    out,
                    "{:<14} {:>10} {:>12} {:>10.1}",
                    info.name, info.input_elems, info.macs, info.max_abs
                );
            }
        }
        Command::Profile(common, pargs) => {
            let _span = mupod_obs::span("cli.profile");
            let (net, eval) = supervised_prepare(common)?;
            let layers = common.model.analyzable_layers(&net);
            let images = &eval.images()[..eval.len().min(24)];
            // Journal I/O and panicked workers are worth a retry — a
            // journaled re-attempt resumes from the layers already
            // committed. Everything else in the sweep is deterministic.
            let classify_profile = |e: &mupod_core::CoreError| match e {
                mupod_core::CoreError::Journal(mupod_core::JournalError::Io(_)) => {
                    StageFault::Transient(format!("profiling failed: {e}"))
                }
                mupod_core::CoreError::Profile(mupod_core::ProfileError::WorkerPanicked) => {
                    StageFault::Transient(format!("profiling failed: {e}"))
                }
                _ => StageFault::Permanent(format!("profiling failed: {e}")),
            };
            let outcome = supervisor
                .run_stage("profile", stage_policy(common), classify, |tok| {
                    let profiler = mupod_core::Profiler::new(&net, images)
                        .with_config(ProfileConfig {
                            n_deltas: pargs.n_deltas,
                            threads: common.threads,
                            kernel_tier: common.kernel_tier,
                            ..Default::default()
                        })
                        .with_progress(progress_event)
                        .with_cancel(tok.clone());
                    match &pargs.journal {
                        Some(journal) => profiler
                            .profile_journaled(&layers, std::path::Path::new(journal))
                            .map(|(p, s)| (p, Some(s)))
                            .map_err(|e| classify_profile(&e)),
                        None => profiler
                            .profile(&layers)
                            .map(|p| (p, None))
                            .map_err(|e| classify_profile(&e.into())),
                    }
                })
                .map_err(stage_err)?;
            let (profile, summary) = outcome.value;
            if let (Some(summary), Some(journal)) = (&summary, &pargs.journal) {
                if summary.resumed > 0 {
                    let _ = writeln!(
                        out,
                        "resumed {} of {} layers from {journal}{}",
                        summary.resumed,
                        profile.len(),
                        if summary.dropped_partial_record {
                            " (dropped one interrupted record)"
                        } else {
                            ""
                        },
                    );
                }
            }
            let mut buf = Vec::new();
            profile
                .save_csv(&mut buf)
                .map_err(|e| CliError::Run(format!("cannot write profile: {e}")))?;
            mupod_runtime::write_atomic(std::path::Path::new(&pargs.out), &buf)
                .map_err(|e| CliError::Run(format!("cannot write {}: {e}", pargs.out)))?;
            let _ = writeln!(
                out,
                "profiled {} layers (min R² {:.4}, worst rel err {:.1}%) -> {}",
                profile.len(),
                profile.min_r_squared(),
                profile.max_relative_error() * 100.0,
                pargs.out
            );
            warn_fallback_layers(&profile);
        }
        Command::Optimize(common, oargs) => {
            let _span = mupod_obs::span("cli.optimize");
            let (net, eval) = supervised_prepare(common)?;
            let layers = common.model.analyzable_layers(&net);
            // A pre-computed profile is validated against its integrity
            // footer before parsing: corruption is a typed diagnostic
            // here, never a silently-wrong allocation downstream.
            let loaded_profile = match &oargs.profile {
                Some(path) => {
                    let bytes = mupod_runtime::read_verified(std::path::Path::new(path))
                        .map_err(|e| CliError::Run(format!("cannot open {path}: {e}")))?;
                    Some(
                        Profile::load_csv(bytes.as_slice())
                            .map_err(|e| CliError::Run(format!("cannot parse {path}: {e}")))?,
                    )
                }
                None => None,
            };
            let run_opt = |scheme: SearchScheme, tok: &CancelToken| {
                let mut optimizer = PrecisionOptimizer::new(&net, &eval)
                    .layers(layers.clone())
                    .relative_accuracy_loss(oargs.loss)
                    .scheme(scheme)
                    .profile_config(ProfileConfig {
                        threads: common.threads,
                        kernel_tier: common.kernel_tier,
                        ..Default::default()
                    })
                    .with_cancel(tok.clone());
                if let Some(profile) = &loaded_profile {
                    optimizer = optimizer.with_profile(profile.clone());
                }
                optimizer
                    .run(oargs.objective.clone())
                    .map_err(|e| StageFault::Permanent(format!("optimization failed: {e}")))
            };
            // Degradation ladder: the Gaussian σ-search is the fragile
            // refinement — if it exhausts its budget, fall back to the
            // conservative equal-σ scheme and flag the result degraded
            // rather than ship nothing.
            let outcome = if oargs.scheme == SearchScheme::GaussianApprox {
                supervisor.run_stage_with_fallback(
                    "optimize",
                    stage_policy(common),
                    classify,
                    |tok| run_opt(SearchScheme::GaussianApprox, tok),
                    |tok| run_opt(SearchScheme::EqualScheme, tok),
                )
            } else {
                supervisor.run_stage("optimize", stage_policy(common), classify, |tok| {
                    run_opt(oargs.scheme, tok)
                })
            }
            .map_err(stage_err)?;
            if outcome.degraded {
                let _ = writeln!(
                    out,
                    "warning: gaussian σ-search failed; allocation below is the \
                     conservative equal-scheme fallback (degraded)"
                );
            }
            let result = outcome.value;
            let _ = writeln!(
                out,
                "{} | objective {} | σ_YŁ {:.4} | fp acc {:.3} -> quantized {:.3}",
                common.model,
                oargs.objective.name(),
                result.sigma.sigma,
                result.fp_accuracy,
                result.validated_accuracy
            );
            let _ = writeln!(out, "{:<14} {:>8} {:>6}", "layer", "format", "bits");
            for (lf, bits) in result
                .allocation
                .layers()
                .iter()
                .zip(result.allocation.bits())
            {
                let _ = writeln!(
                    out,
                    "{:<14} {:>8} {:>6}",
                    lf.layer,
                    lf.format.to_string(),
                    bits
                );
            }
            warn_fallback_layers(&result.profile);
            if let Some(path) = &oargs.save {
                let mut buf = Vec::new();
                result
                    .allocation
                    .save_csv(&mut buf)
                    .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
                mupod_runtime::write_atomic(std::path::Path::new(path), &buf)
                    .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(out, "allocation written to {path}");
            }
        }
        Command::Serve(common, sargs) => {
            let _span = mupod_obs::span("cli.serve");
            let (net, _eval) = supervised_prepare(common)?;
            let slow_batch = std::env::var(SERVE_TEST_SLOW_ENV)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis);
            let cfg = mupod_serve::ServeConfig {
                addr: sargs.addr.clone(),
                workers: sargs.workers,
                queue_depth: sargs.queue_depth,
                max_batch: sargs.max_batch,
                default_deadline: Duration::from_millis(sargs.deadline_ms),
                restart_budget: sargs.restart_budget,
                chaos: sargs.chaos,
                slow_batch,
                metrics_addr: sargs.metrics_addr.clone(),
                flight_out: sargs.flight_out.clone().map(std::path::PathBuf::from),
                kernel_tier: common.kernel_tier,
            };
            // The serve stage is not retried: its internal supervisor
            // (worker restarts under the budget) is the retry layer, and
            // the exit mapping must distinguish a bind failure (run
            // error, 1) from an exhausted restart budget (stage failed,
            // 3) — see `mupod_runtime::StatusCode`.
            //
            // The "serving on" line is the first stdout line by contract
            // (the chaos harness parses it); "metrics on" follows when
            // the telemetry plane is up.
            //
            // The reloader rebuilds this model at the requested seed and
            // re-runs quick calibration; `mupod reload --addr <shard>`
            // swaps it in without dropping accepted requests.
            let model = common.model;
            let scale = common.scale;
            let images = common.images;
            let reloader = move |seed: u64| -> Result<Network, String> {
                let mut net = model.build(&scale, seed);
                let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw)
                    .with_class_seed(seed);
                let calib = Dataset::generate(&spec, seed ^ 0xA, images);
                calibrate_head_quick(&mut net, &calib, 0.1)
                    .map_err(|e| format!("calibration failed: {e}"))?;
                Ok(net)
            };
            let tier = cfg.kernel_tier;
            let report = mupod_serve::run_reloadable(net, &cfg, token, Some(&reloader), |bound| {
                println!("serving on {} kernel-tier={}", bound.addr, tier.name());
                if let Some(m) = bound.metrics_addr {
                    println!("metrics on {m}");
                }
                let _ = std::io::Write::flush(&mut std::io::stdout());
            })
            .map_err(|e| match &e {
                mupod_serve::ServeError::Bind { .. } => CliError::Run(e.to_string()),
                mupod_serve::ServeError::RestartBudgetExhausted { report, .. } => {
                    // The drain still completed; the summary goes to
                    // stderr (stdout is the success channel) tagged with
                    // the failure status before the typed error exits 3.
                    eprint!(
                        "{}",
                        drain_summary(report, mupod_runtime::StatusCode::StageFailed, tier)
                    );
                    CliError::StageFailed(format!("serve: {e}"))
                }
            })?;
            out.push_str(&drain_summary(&report, mupod_runtime::StatusCode::Ok, tier));
        }
        Command::Route(rargs) => {
            let _span = mupod_obs::span("cli.route");
            let mut shard_addrs = Vec::with_capacity(rargs.shards.len());
            for s in &rargs.shards {
                shard_addrs.push(parse_sock_addr(s)?);
            }
            let cfg = mupod_serve::RouteConfig {
                addr: rargs.addr.clone(),
                shards: shard_addrs,
                default_deadline: Duration::from_millis(rargs.deadline_ms),
                retry_budget: rargs.retry_budget,
                hedge_after: Duration::from_millis(rargs.hedge_ms),
                health_interval: Duration::from_millis(rargs.health_interval_ms),
                breaker_threshold: rargs.breaker_threshold,
                breaker_cooldown: Duration::from_millis(rargs.breaker_cooldown_ms),
                metrics_addr: rargs.metrics_addr.clone(),
                flight_out: rargs.flight_out.clone().map(std::path::PathBuf::from),
            };
            // "routing on" is the first stdout line by contract, like
            // serve's "serving on" (the chaos harness parses both).
            let report = mupod_serve::route(&cfg, token, |bound| {
                println!("routing on {}", bound.addr);
                if let Some(m) = bound.metrics_addr {
                    println!("metrics on {m}");
                }
                let _ = std::io::Write::flush(&mut std::io::stdout());
            })
            .map_err(|e| CliError::Run(e.to_string()))?;
            out.push_str(&route_summary(&report));
        }
        Command::Reload(rargs) => {
            let _span = mupod_obs::span("cli.reload");
            let addr = parse_sock_addr(&rargs.addr)?;
            let epoch = mupod_serve::reload_shard(
                addr,
                rargs.seed,
                Duration::from_millis(rargs.deadline_ms),
            )
            .map_err(|e| match e {
                // Transport trouble is exit 1; a shard that answered but
                // refused (dims mismatch, unsupported, build failure) is
                // a stage failure, exit 3 — scripts can tell them apart.
                mupod_serve::ReloadError::Client(_) => CliError::Run(e.to_string()),
                mupod_serve::ReloadError::Rejected { .. } => CliError::StageFailed(e.to_string()),
            })?;
            let _ = writeln!(
                out,
                "reloaded {addr} with seed {}: model epoch {epoch}",
                rargs.seed
            );
        }
        Command::Query(common, qargs) => {
            let _span = mupod_obs::span("cli.query");
            let addr = parse_sock_addr(&qargs.addr)?;
            if let Some(path) = &qargs.dump_flight {
                // `--addr` is the telemetry-plane address in this mode:
                // one GET against /flight, sealed to disk, no classify
                // traffic.
                let (code, body) = mupod_serve::http_get(addr, "/flight", Duration::from_secs(10))
                    .map_err(|e| CliError::Run(format!("cannot fetch /flight from {addr}: {e}")))?;
                if code != 200 {
                    return Err(CliError::Run(format!(
                        "/flight returned HTTP {code} (is --addr the server's --metrics-addr?)"
                    )));
                }
                let text = std::str::from_utf8(&body)
                    .map_err(|e| CliError::Run(format!("flight dump is not UTF-8: {e}")))?;
                let doc = mupod_obs::json::parse(text)
                    .map_err(|e| CliError::Run(format!("bad flight document: {e}")))?;
                let events = doc
                    .as_object()
                    .and_then(|o| o.get("events"))
                    .and_then(|v| v.as_array())
                    .map_or(0, <[mupod_obs::json::Value]>::len);
                mupod_runtime::write_atomic(std::path::Path::new(path), &body)
                    .map_err(|e| CliError::Run(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(out, "flight recorder: {events} events sealed to {path}");
                return Ok(out);
            }
            // Deterministic query images from the same generator the
            // pipeline uses; --model/--scale/--seed pick the input shape
            // the server expects (a mismatch is answered BadRequest).
            let spec = DatasetSpec::new(
                common.scale.classes,
                3,
                common.scale.input_hw,
                common.scale.input_hw,
            )
            .with_class_seed(common.seed);
            let data = Dataset::generate(&spec, common.seed ^ 0xC, qargs.count);
            let priority = if qargs.low_priority {
                mupod_serve::Priority::Low
            } else {
                mupod_serve::Priority::High
            };
            // Client-side resilience: connect failures, transport
            // errors, and retryable wire statuses are retried with the
            // runtime's deterministic jittered backoff. Transport
            // exhaustion is a stage failure (exit 3) — the arguments
            // were fine, the fleet wasn't; a non-retryable rejection is
            // still printed, never retried.
            let retry = RetryPolicy {
                max_attempts: qargs.retries.max(1),
                base_delay: Duration::from_millis(qargs.retry_backoff_ms.max(1)),
                max_delay: Duration::from_millis(qargs.retry_backoff_ms.saturating_mul(8).max(1)),
                jitter_seed: common.seed,
            };
            let retryable_status = |s: mupod_runtime::StatusCode| {
                matches!(
                    s,
                    mupod_runtime::StatusCode::ServerBusy
                        | mupod_runtime::StatusCode::Draining
                        | mupod_runtime::StatusCode::WorkerCrashed
                        | mupod_runtime::StatusCode::NoHealthyShard
                )
            };
            let backoff = |attempt: u32| -> Result<(), CliError> {
                token
                    .sleep_cancellable(retry.delay_for(attempt))
                    .map_err(|_| CliError::Interrupted)
            };
            let mut conn: Option<mupod_serve::Connection> = None;
            let mut ok = 0u64;
            let mut retried = 0u64;
            for i in 0..qargs.count {
                token.checkpoint().map_err(|_| CliError::Interrupted)?;
                let (img, _) = data.sample(i);
                let mut attempt = 1u32;
                let reply = loop {
                    let c = match conn.as_mut() {
                        Some(c) => c,
                        None => {
                            match mupod_serve::Connection::connect(addr, Duration::from_secs(10)) {
                                Ok(c) => conn.insert(c),
                                Err(e) => {
                                    if attempt >= retry.max_attempts {
                                        return Err(CliError::StageFailed(format!(
                                            "request {i}: cannot reach {addr} after \
                                         {attempt} attempt(s): {e}"
                                        )));
                                    }
                                    backoff(attempt)?;
                                    attempt += 1;
                                    retried += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    match c.classify(img.data(), qargs.deadline_ms, priority) {
                        Ok(r) if retryable_status(r.status) && attempt < retry.max_attempts => {
                            backoff(attempt)?;
                            attempt += 1;
                            retried += 1;
                        }
                        Ok(r) => break r,
                        Err(e) => {
                            // Transport broke mid-request; the stream is
                            // unusable — reconnect on the next attempt.
                            conn = None;
                            if attempt >= retry.max_attempts {
                                return Err(CliError::StageFailed(format!(
                                    "request {i} failed after {attempt} attempt(s): {e}"
                                )));
                            }
                            backoff(attempt)?;
                            attempt += 1;
                            retried += 1;
                        }
                    }
                };
                match reply.status {
                    mupod_runtime::StatusCode::Ok => {
                        ok += 1;
                        let _ = writeln!(
                            out,
                            "#{i}: class {} in {} µs",
                            reply.class.unwrap_or(0),
                            reply.latency.as_micros()
                        );
                    }
                    status => {
                        let _ = writeln!(
                            out,
                            "#{i}: rejected with status {status}{}",
                            reply
                                .message
                                .as_deref()
                                .map(|m| format!(" — {m}"))
                                .unwrap_or_default()
                        );
                    }
                }
            }
            if retried > 0 {
                let _ = writeln!(out, "{ok}/{} ok ({retried} retried)", qargs.count);
            } else {
                let _ = writeln!(out, "{ok}/{} ok", qargs.count);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_inspect() {
        let cmd = parse(&argv("inspect --model alexnet --scale tiny")).unwrap();
        match cmd {
            Command::Inspect(c) => {
                assert_eq!(c.model, ModelKind::AlexNet);
                assert_eq!(c.scale, ModelScale::tiny());
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_model_aliases() {
        for (alias, kind) in [
            ("vgg19", ModelKind::Vgg19),
            ("VGG-19", ModelKind::Vgg19),
            ("resnet152", ModelKind::ResNet152),
            ("NiN", ModelKind::Nin),
        ] {
            let cmd = parse(&argv(&format!("inspect --model {alias}"))).unwrap();
            match cmd {
                Command::Inspect(c) => assert_eq!(c.model, kind, "{alias}"),
                _ => panic!("wrong command"),
            }
        }
    }

    #[test]
    fn parses_optimize_with_all_flags() {
        let cmd = parse(&argv(
            "optimize --model nin --objective mac --loss 5 --scheme gaussian --seed 7",
        ))
        .unwrap();
        match cmd {
            Command::Optimize(c, o) => {
                assert_eq!(c.model, ModelKind::Nin);
                assert_eq!(c.seed, 7);
                assert_eq!(o.objective, Objective::MacEnergy);
                assert!((o.loss - 0.05).abs() < 1e-12);
                assert_eq!(o.scheme, SearchScheme::GaussianApprox);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse(&argv(
            "inspect --model alexnet --log-level debug --metrics-out m.json --trace-out t.json",
        ))
        .unwrap();
        match cmd {
            Command::Inspect(c) => {
                assert_eq!(c.log_level, mupod_obs::Level::Debug);
                assert_eq!(c.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(c.trace_out.as_deref(), Some("t.json"));
            }
            _ => panic!("wrong command"),
        }
        match parse(&argv("inspect --model alexnet")).unwrap() {
            Command::Inspect(c) => {
                assert_eq!(c.log_level, mupod_obs::Level::Warn);
                assert!(c.metrics_out.is_none() && c.trace_out.is_none());
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse(&argv("inspect --model alexnet --log-level loud")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_supervision_flags() {
        let cmd = parse(&argv(
            "inspect --model alexnet --stage-timeout 2.5 --retries 5",
        ))
        .unwrap();
        match cmd {
            Command::Inspect(c) => {
                assert_eq!(c.stage_timeout, Some(Duration::from_secs_f64(2.5)));
                assert_eq!(c.retries, 5);
            }
            _ => panic!("wrong command"),
        }
        match parse(&argv("inspect --model alexnet")).unwrap() {
            Command::Inspect(c) => {
                assert_eq!(c.stage_timeout, None);
                assert_eq!(c.retries, 3);
            }
            _ => panic!("wrong command"),
        }
        for bad in [
            "inspect --model alexnet --stage-timeout 0",
            "inspect --model alexnet --stage-timeout -3",
            "inspect --model alexnet --stage-timeout soon",
            "inspect --model alexnet --retries many",
        ] {
            assert!(
                matches!(parse(&argv(bad)), Err(CliError::Usage(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn parses_threads_flag() {
        match parse(&argv("profile --model alexnet --out p.csv --threads 4")).unwrap() {
            Command::Profile(c, _) => assert_eq!(c.threads, 4),
            _ => panic!("wrong command"),
        }
        // Default is 0: "use the machine's available parallelism".
        match parse(&argv("inspect --model alexnet")).unwrap() {
            Command::Inspect(c) => assert_eq!(c.threads, 0),
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse(&argv("inspect --model alexnet --threads lots")),
            Err(CliError::Usage(_))
        ));
        assert!(USAGE.contains("--threads"), "--threads missing from help");
    }

    #[test]
    fn parses_kernel_tier_flag() {
        match parse(&argv(
            "profile --model alexnet --out p.csv --kernel-tier fast",
        ))
        .unwrap()
        {
            Command::Profile(c, _) => assert_eq!(c.kernel_tier, KernelTier::Fast),
            _ => panic!("wrong command"),
        }
        match parse(&argv("serve --model alexnet --kernel-tier exact")).unwrap() {
            Command::Serve(c, _) => assert_eq!(c.kernel_tier, KernelTier::Exact),
            _ => panic!("wrong command"),
        }
        // The exact tier is the default: byte-reproducible artifacts
        // unless the user explicitly opts into the fast tier.
        match parse(&argv("inspect --model alexnet")).unwrap() {
            Command::Inspect(c) => assert_eq!(c.kernel_tier, KernelTier::Exact),
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse(&argv("inspect --model alexnet --kernel-tier turbo")),
            Err(CliError::Usage(_))
        ));
        assert!(
            USAGE.contains("--kernel-tier"),
            "--kernel-tier missing from help"
        );
    }

    #[test]
    fn explicit_exact_tier_matches_default_profile_artifact() {
        let dir = std::env::temp_dir().join("mupod_cli_kernel_tier_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = format!(
            "profile --model alexnet --scale tiny --images 24 --deltas 4 --out {}",
            dir.join("t.csv").display()
        );
        let mut outputs = Vec::new();
        for suffix in ["", " --kernel-tier exact"] {
            let line = format!("{base}{suffix}");
            run(&parse(&argv(&line)).unwrap()).unwrap();
            outputs.push(std::fs::read(dir.join("t.csv")).unwrap());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "`--kernel-tier exact` must reproduce the default artifact byte-for-byte"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_does_not_change_profile_artifact() {
        let dir = std::env::temp_dir().join("mupod_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = format!(
            "profile --model alexnet --scale tiny --images 24 --deltas 4 --out {}",
            dir.join("t.csv").display()
        );
        let mut outputs = Vec::new();
        for threads in [1usize, 3] {
            let line = format!("{base} --threads {threads}");
            run(&parse(&argv(&line)).unwrap()).unwrap();
            outputs.push(std::fs::read(dir.join("t.csv")).unwrap());
        }
        assert_eq!(
            outputs[0], outputs[1],
            "profile CSV must be byte-identical for any --threads value"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_artifacts_are_sealed_and_verifiable() {
        let dir = std::env::temp_dir().join("mupod_cli_seal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("p.csv");
        let line = format!(
            "profile --model alexnet --scale tiny --images 24 --deltas 6 --out {}",
            csv.display()
        );
        run(&parse(&argv(&line)).unwrap()).unwrap();
        mupod_runtime::verify_file(&csv).expect("fresh artifact must verify");
        // Flip one payload byte: verification must fail with a typed
        // error, and the profile loader must never see the bad bytes.
        let mut bytes = std::fs::read(&csv).unwrap();
        bytes[10] ^= 0x40;
        std::fs::write(&csv, &bytes).unwrap();
        assert!(matches!(
            mupod_runtime::verify_file(&csv),
            Err(mupod_runtime::ArtifactError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_cancelled_token_exits_interrupted() {
        let cmd = parse(&argv("inspect --model alexnet --scale tiny --images 24")).unwrap();
        let token = CancelToken::new();
        token.cancel(mupod_runtime::CancelReason::Interrupt);
        assert!(matches!(
            run_with_token(&cmd, &token),
            Err(CliError::Interrupted)
        ));
    }

    #[test]
    fn parses_serve_defaults_and_flags() {
        match parse(&argv("serve --model alexnet")).unwrap() {
            Command::Serve(c, s) => {
                assert_eq!(c.model, ModelKind::AlexNet);
                assert_eq!(s.addr, "127.0.0.1:0");
                assert_eq!(s.workers, 2);
                assert_eq!(s.queue_depth, 32);
                assert_eq!(s.max_batch, 4);
                assert_eq!(s.deadline_ms, 1_000);
                assert_eq!(s.restart_budget, 8);
                assert!(!s.chaos);
                assert_eq!(s.metrics_addr, None);
                assert_eq!(s.flight_out, None);
            }
            _ => panic!("wrong command"),
        }
        match parse(&argv(
            "serve --model nin --addr 0.0.0.0:7700 --workers 4 --queue-depth 64 \
             --max-batch 8 --deadline-ms 250 --restart-budget 2 --chaos \
             --metrics-addr 127.0.0.1:9100 --flight-out flight.json",
        ))
        .unwrap()
        {
            Command::Serve(_, s) => {
                assert_eq!(s.addr, "0.0.0.0:7700");
                assert_eq!(s.workers, 4);
                assert_eq!(s.queue_depth, 64);
                assert_eq!(s.max_batch, 8);
                assert_eq!(s.deadline_ms, 250);
                assert_eq!(s.restart_budget, 2);
                assert!(s.chaos);
                assert_eq!(s.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
                assert_eq!(s.flight_out.as_deref(), Some("flight.json"));
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(
            parse(&argv("serve --model alexnet --addr not-an-addr")),
            Err(CliError::Usage(_))
        ));
        // A bad telemetry address is a usage error too, at parse time.
        assert!(matches!(
            parse(&argv("serve --model alexnet --metrics-addr nope")),
            Err(CliError::Usage(_))
        ));
        assert!(USAGE.contains("--metrics-addr"), "help lists telemetry");
    }

    #[test]
    fn parses_query_flags() {
        match parse(&argv(
            "query --model alexnet --addr 127.0.0.1:7700 --count 3 \
             --deadline-ms 50 --low-priority",
        ))
        .unwrap()
        {
            Command::Query(_, q) => {
                assert_eq!(q.addr, "127.0.0.1:7700");
                assert_eq!(q.count, 3);
                assert_eq!(q.deadline_ms, 50);
                assert!(q.low_priority);
                assert_eq!(q.dump_flight, None);
            }
            _ => panic!("wrong command"),
        }
        match parse(&argv(
            "query --model alexnet --addr 127.0.0.1:9100 --dump-flight f.json",
        ))
        .unwrap()
        {
            Command::Query(_, q) => assert_eq!(q.dump_flight.as_deref(), Some("f.json")),
            _ => panic!("wrong command"),
        }
        // --addr is required for query (there is no sensible default
        // port), and it must be a parseable socket address.
        assert!(matches!(
            parse(&argv("query --model alexnet")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("query --model alexnet --addr localhost")),
            Err(CliError::Usage(_))
        ));
        assert!(USAGE.contains("serve"), "serve missing from help");
        assert!(USAGE.contains("query"), "query missing from help");
    }

    #[test]
    fn parses_query_retry_flags() {
        match parse(&argv(
            "query --model alexnet --addr 127.0.0.1:7700 --retries 5 \
             --retry-backoff-ms 20",
        ))
        .unwrap()
        {
            Command::Query(_, q) => {
                assert_eq!(q.retries, 5);
                assert_eq!(q.retry_backoff_ms, 20);
            }
            _ => panic!("wrong command"),
        }
        // Defaults: the shared --retries default and a 50 ms backoff.
        match parse(&argv("query --model alexnet --addr 127.0.0.1:7700")).unwrap() {
            Command::Query(_, q) => {
                assert_eq!(q.retries, 3);
                assert_eq!(q.retry_backoff_ms, 50);
            }
            _ => panic!("wrong command"),
        }
        assert!(
            USAGE.contains("--retry-backoff-ms"),
            "help lists retry knobs"
        );
    }

    #[test]
    fn parses_route_flags() {
        match parse(&argv(
            "route --shard 127.0.0.1:9001 --shard 127.0.0.1:9002 \
             --retry-budget 4 --hedge-ms 15 --health-interval-ms 100 \
             --breaker-threshold 5 --breaker-cooldown-ms 250 \
             --deadline-ms 800 --metrics-addr 127.0.0.1:0 \
             --flight-out rf.json",
        ))
        .unwrap()
        {
            Command::Route(r) => {
                assert_eq!(r.shards, vec!["127.0.0.1:9001", "127.0.0.1:9002"]);
                assert_eq!(r.addr, "127.0.0.1:0", "default front bind");
                assert_eq!(r.retry_budget, 4);
                assert_eq!(r.hedge_ms, 15);
                assert_eq!(r.health_interval_ms, 100);
                assert_eq!(r.breaker_threshold, 5);
                assert_eq!(r.breaker_cooldown_ms, 250);
                assert_eq!(r.deadline_ms, 800);
                assert_eq!(r.metrics_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(r.flight_out.as_deref(), Some("rf.json"));
            }
            _ => panic!("wrong command"),
        }
        // No --model needed, but at least one --shard is.
        assert!(matches!(parse(&argv("route")), Err(CliError::Usage(_))));
        // Shard addresses are validated at parse time.
        assert!(matches!(
            parse(&argv("route --shard nonsense")),
            Err(CliError::Usage(_))
        ));
        assert!(USAGE.contains("route"), "route missing from help");
        assert!(
            USAGE.contains("--breaker-threshold"),
            "breaker knobs listed"
        );
    }

    #[test]
    fn parses_reload_flags() {
        match parse(&argv(
            "reload --addr 127.0.0.1:9001 --seed 77 --deadline-ms 5000",
        ))
        .unwrap()
        {
            Command::Reload(r) => {
                assert_eq!(r.addr, "127.0.0.1:9001");
                assert_eq!(r.seed, 77);
                assert_eq!(r.deadline_ms, 5_000);
            }
            _ => panic!("wrong command"),
        }
        // Defaults: master seed and a rebuild-sized deadline.
        match parse(&argv("reload --addr 127.0.0.1:9001")).unwrap() {
            Command::Reload(r) => {
                assert_eq!(r.seed, 42);
                assert_eq!(r.deadline_ms, 30_000);
            }
            _ => panic!("wrong command"),
        }
        assert!(matches!(parse(&argv("reload")), Err(CliError::Usage(_))));
        assert!(USAGE.contains("reload"), "reload missing from help");
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(matches!(
            parse(&argv("optimize --model alexnet")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("profile --model alexnet")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("inspect")), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_inputs_error() {
        assert!(matches!(
            parse(&argv("inspect --model hal9000")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("inspect --model alexnet --bogus")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("frobnicate --model alexnet")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn empty_and_help_yield_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert!(run(&Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn inspect_runs_end_to_end() {
        let cmd = parse(&argv("inspect --model squeezenet --scale tiny --images 24")).unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("26 analyzable layers"), "{text}");
        assert!(text.contains("conv10"));
    }

    #[test]
    fn optimize_saves_allocation_csv() {
        let dir = std::env::temp_dir().join("mupod_cli_save_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_csv = dir.join("alloc.csv").to_string_lossy().to_string();
        let cmd = parse(&argv(&format!(
            "optimize --model alexnet --scale tiny --images 24 --objective mac --loss 5 --save {out_csv}"
        )))
        .unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("allocation written"), "{text}");
        let reloaded =
            mupod_quant::BitwidthAllocation::load_csv(std::fs::File::open(&out_csv).unwrap())
                .unwrap();
        assert_eq!(reloaded.len(), 5);
    }

    #[test]
    fn parses_profile_journal_flag() {
        let cmd = parse(&argv(
            "profile --model alexnet --out p.csv --journal p.journal",
        ))
        .unwrap();
        match cmd {
            Command::Profile(_, p) => assert_eq!(p.journal.as_deref(), Some("p.journal")),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn journaled_profile_resumes_and_matches() {
        let dir = std::env::temp_dir().join("mupod_cli_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("p.csv").to_string_lossy().to_string();
        let journal = dir.join("p.journal").to_string_lossy().to_string();
        let _ = std::fs::remove_file(&journal);
        let line = format!(
            "profile --model alexnet --scale tiny --images 24 --deltas 6 --out {csv} --journal {journal}"
        );
        let first = run(&parse(&argv(&line)).unwrap()).unwrap();
        assert!(first.contains("profiled 5 layers"), "{first}");
        let first_csv = std::fs::read_to_string(&csv).unwrap();

        // Chop the last journal record mid-line, simulating a kill during
        // the final append; the re-run must resume the intact layers and
        // regenerate a bit-identical CSV.
        let text = std::fs::read_to_string(&journal).unwrap();
        let keep = text.trim_end().rfind('\n').unwrap() + 20;
        std::fs::write(&journal, &text[..keep]).unwrap();

        let second = run(&parse(&argv(&line)).unwrap()).unwrap();
        assert!(second.contains("resumed 4 of 5 layers"), "{second}");
        assert_eq!(std::fs::read_to_string(&csv).unwrap(), first_csv);
    }

    /// Asserts through the exported files only: `run` installs its own
    /// recorder, so the test must not install one of its own around it.
    #[test]
    fn metrics_and_trace_exports_are_deterministic() {
        let dir = std::env::temp_dir().join("mupod_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |tag: &str| {
            let csv = dir.join(format!("p{tag}.csv"));
            let metrics = dir.join(format!("m{tag}.json"));
            let trace = dir.join(format!("t{tag}.json"));
            let line = format!(
                "profile --model alexnet --scale tiny --images 24 --deltas 6 --out {} --metrics-out {} --trace-out {}",
                csv.display(),
                metrics.display(),
                trace.display()
            );
            run(&parse(&argv(&line)).unwrap()).unwrap();
            (
                std::fs::read_to_string(metrics).unwrap(),
                std::fs::read_to_string(trace).unwrap(),
            )
        };
        let (metrics_a, trace_a) = run_once("a");
        let (metrics_b, _) = run_once("b");

        let counters = |text: &str| {
            // Exports are sealed artifacts; drop the `#mupod-artifact`
            // footer before handing the payload to the strict parser.
            let payload = mupod_runtime::unseal(text.as_bytes()).expect("footer");
            let value = mupod_obs::json::parse(std::str::from_utf8(payload).unwrap())
                .expect("metrics parse");
            value.as_object().unwrap()["counters"].clone()
        };
        let counters_a = counters(&metrics_a);
        assert_eq!(
            counters_a,
            counters(&metrics_b),
            "counters must be bit-identical across identically-seeded runs"
        );
        let map = counters_a.as_object().unwrap();
        for key in [
            "nn.forward_passes",
            "profile.deltas_injected",
            "profile.layers_profiled",
        ] {
            assert!(map[key].as_f64().unwrap() > 0.0, "{key} missing");
        }

        let trace_payload = mupod_runtime::unseal(trace_a.as_bytes()).expect("footer");
        let trace = mupod_obs::json::parse(std::str::from_utf8(trace_payload).unwrap())
            .expect("trace parse");
        let events = trace.as_object().unwrap()["traceEvents"]
            .as_array()
            .unwrap();
        let phase_count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.as_object().unwrap()["ph"].as_str() == Some(ph))
                .count()
        };
        assert!(!events.is_empty());
        assert_eq!(phase_count("B"), phase_count("E"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_then_optimize_via_csv() {
        let dir = std::env::temp_dir().join("mupod_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("p.csv").to_string_lossy().to_string();
        let cmd = parse(&argv(&format!(
            "profile --model alexnet --scale tiny --images 24 --deltas 8 --out {csv}"
        )))
        .unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("profiled 5 layers"), "{text}");

        let cmd = parse(&argv(&format!(
            "optimize --model alexnet --scale tiny --images 24 --objective bandwidth --loss 5 --profile {csv}"
        )))
        .unwrap();
        let text = run(&cmd).unwrap();
        assert!(text.contains("conv1"), "{text}");
        assert!(text.contains("quantized"), "{text}");
    }
}
