//! Chaos harness for `mupod route`: process-level fault injection
//! against the real binary — a SIGKILLed shard under sustained load,
//! breaker open/recovery observed through `/metrics`, a live
//! `mupod reload` with traffic flowing, and trace-ID propagation into
//! both the router's and the shard's flight recorders.
//!
//! Everything spawns `CARGO_BIN_EXE_mupod`, so the flag parsing, the
//! stdout contract ("serving on ..." / "routing on ...") and the exit
//! codes are the production ones. The 30 s soak at the bottom is
//! ignored by default; CI's `route-chaos` job runs it with
//! `-- --ignored`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use mupod_models::ModelScale;
use mupod_runtime::StatusCode;
use mupod_serve::{http_get, run_load, Connection, Priority};

/// Sends a signal to a child process (raw FFI; no external crates).
fn send_signal(child: &Child, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: plain syscall wrapper with scalar arguments; the pid comes
    // from a live `Child` handle owned by this test.
    let rc = unsafe { kill(child.id() as i32, sig) };
    assert_eq!(rc, 0, "kill({sig}) failed");
}

const SIGINT: i32 = 2;
const SIGKILL: i32 = 9;

fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "child did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reads one stdout line and parses the address after `prefix`; the
/// address is the first token (serve appends `kernel-tier=<tier>`).
fn read_addr_line(reader: &mut BufReader<ChildStdout>, prefix: &str) -> SocketAddr {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim()
        .strip_prefix(prefix)
        .unwrap_or_else(|| panic!("expected {prefix:?}, got line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("empty address on line: {line:?}"))
        .parse()
        .unwrap()
}

/// Spawns a `mupod serve` shard and blocks until it announces its
/// address. `bind` pins the listen address (used to restart a killed
/// shard on its old port); "127.0.0.1:0" picks an ephemeral one.
fn start_shard(bind: &str, extra_args: &[&str]) -> (Child, SocketAddr, BufReader<ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.args([
        "serve", "--model", "alexnet", "--scale", "tiny", "--images", "24", "--addr", bind,
    ])
    .args(extra_args)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = read_addr_line(&mut reader, "serving on ");
    (child, addr, reader)
}

/// Spawns `mupod route` in front of `shards` with the admin plane on,
/// blocking until both the "routing on ..." and "metrics on ..." lines
/// arrive.
fn start_route(
    shards: &[SocketAddr],
    extra_args: &[&str],
) -> (Child, SocketAddr, SocketAddr, BufReader<ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.args(["route", "--metrics-addr", "127.0.0.1:0"]);
    for s in shards {
        cmd.arg("--shard").arg(s.to_string());
    }
    cmd.args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = read_addr_line(&mut reader, "routing on ");
    let metrics = read_addr_line(&mut reader, "metrics on ");
    (child, addr, metrics, reader)
}

/// A correctly-sized input for the tiny-scale alexnet the shards run.
fn image() -> Vec<f32> {
    let hw = ModelScale::tiny().input_hw;
    (0..3 * hw * hw)
        .map(|i| (i % 7) as f32 * 0.1 - 0.3)
        .collect()
}

fn scrape(metrics: SocketAddr, path: &str) -> (u16, String) {
    let (code, body) = http_get(metrics, path, Duration::from_secs(5)).expect("scrape");
    (code, String::from_utf8(body).expect("utf-8 body"))
}

/// Extracts the value of an un-labelled sample line, e.g.
/// `mupod_route_requests_total 3`.
fn sample(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
        .trim()
        .parse()
        .expect("numeric sample")
}

/// Polls the router's `/metrics` until `pred` accepts the exposition.
fn await_metrics(metrics: SocketAddr, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (_, text) = scrape(metrics, "/metrics");
        if pred(&text) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last exposition:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stop_clean(child: Child, reader: Option<&mut BufReader<ChildStdout>>) {
    send_signal(&child, SIGINT);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    if let Some(r) = reader {
        let mut rest = String::new();
        r.read_to_string(&mut rest).unwrap();
    }
}

#[test]
fn sigkilled_shard_is_invisible_to_clients_and_breaker_recovers() {
    let (shard_a, addr_a, _ra) = start_shard("127.0.0.1:0", &[]);
    let (shard_b, addr_b, mut rb) = start_shard("127.0.0.1:0", &[]);
    // Threshold 1 so the first failed health ping is guaranteed to trip
    // the breaker before we look for the open.
    let (router, front, metrics, mut rr) = start_route(
        &[addr_a, addr_b],
        &[
            "--health-interval-ms",
            "50",
            "--breaker-threshold",
            "1",
            "--breaker-cooldown-ms",
            "200",
            "--deadline-ms",
            "5000",
        ],
    );

    // SIGKILL shard A one second into a three-second load window; the
    // router must absorb the failure with retries so clients see only
    // OK replies — the chaos proof for this PR.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(1));
        send_signal(&shard_a, SIGKILL);
        shard_a
    });
    let report = run_load(front, &image(), 4, Duration::from_secs(3), 0);
    let mut shard_a = killer.join().expect("killer thread");
    let _ = shard_a.wait();

    assert!(report.ok > 100, "expected sustained throughput: {report:?}");
    assert_eq!(
        report.transport_errors, 0,
        "clients must never see the dead shard: {report:?}"
    );
    assert_eq!(
        report.ok, report.sent,
        "every classify must succeed: {report:?}"
    );

    // The breaker opened on the killed shard and /metrics says so.
    let text = await_metrics(metrics, "breaker open", |t| {
        sample(t, "mupod_route_breaker_opens_total") >= 1.0
    });
    assert!(
        text.contains(&format!("mupod_route_shard_up{{shard=\"{addr_a}\"}} 0")),
        "killed shard still marked up:\n{text}"
    );
    assert_eq!(sample(&text, "mupod_route_healthy_shards"), 1.0, "{text}");

    // Restart the shard on its old port: the breaker must probe
    // half-open and close again without anyone touching the router.
    let (shard_a, _addr_a2, _ra2) = start_shard(&addr_a.to_string(), &[]);
    let text = await_metrics(metrics, "breaker close after restart", |t| {
        sample(t, "mupod_route_breaker_closes_total") >= 1.0
            && t.contains(&format!("mupod_route_shard_up{{shard=\"{addr_a}\"}} 1"))
    });
    assert_eq!(sample(&text, "mupod_route_healthy_shards"), 2.0, "{text}");

    // The recovered pool serves traced traffic end to end.
    let mut conn = Connection::connect(front, Duration::from_secs(10)).expect("connect");
    let reply = conn
        .classify_traced(&image(), 0, Priority::High, 0xFEED01)
        .expect("reply");
    assert_eq!(reply.status, StatusCode::Ok);
    assert_eq!(reply.trace_id, Some(0xFEED01));
    drop(conn);

    stop_clean(router, Some(&mut rr));
    stop_clean(shard_a, None);
    stop_clean(shard_b, Some(&mut rb));
}

#[test]
fn live_reload_under_load_drops_no_requests() {
    let (shard_a, addr_a, _ra) = start_shard("127.0.0.1:0", &[]);
    let (shard_b, addr_b, _rb) = start_shard("127.0.0.1:0", &[]);
    let (router, front, _metrics, mut rr) = start_route(
        &[addr_a, addr_b],
        &["--health-interval-ms", "50", "--deadline-ms", "5000"],
    );

    // Hot-swap shard A's model while load flows through the router; the
    // drain-and-swap handshake plus router-side retry must keep every
    // accepted request answered OK.
    let reloader = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(700));
        Command::new(env!("CARGO_BIN_EXE_mupod"))
            .args(["reload", "--addr"])
            .arg(addr_a.to_string())
            .args(["--seed", "7"])
            .output()
            .unwrap()
    });
    let report = run_load(front, &image(), 4, Duration::from_millis(2_500), 0);
    let out = reloader.join().expect("reloader thread");

    assert!(
        out.status.success(),
        "reload failed: {out:?} / stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("model epoch 1"),
        "unexpected stdout: {stdout}"
    );

    assert!(report.ok > 100, "expected sustained throughput: {report:?}");
    assert_eq!(
        report.transport_errors, 0,
        "reload dropped connections: {report:?}"
    );
    assert_eq!(
        report.ok, report.sent,
        "reload dropped requests: {report:?}"
    );

    // A second reload bumps the epoch again — the swap really happened.
    let out = Command::new(env!("CARGO_BIN_EXE_mupod"))
        .args(["reload", "--addr"])
        .arg(addr_a.to_string())
        .args(["--seed", "8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "second reload failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("model epoch 2"),
        "unexpected stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    stop_clean(router, Some(&mut rr));
    stop_clean(shard_a, None);
    stop_clean(shard_b, None);
}

#[test]
fn reload_through_the_router_is_refused_with_stage_failed() {
    let (shard, addr, _rs) = start_shard("127.0.0.1:0", &[]);
    let (router, front, _metrics, _rr) = start_route(&[addr], &[]);

    // The reload frame must go to a shard; the router refuses it with a
    // diagnostic and `mupod reload` maps the refusal to exit 3.
    let out = Command::new(env!("CARGO_BIN_EXE_mupod"))
        .args(["reload", "--addr"])
        .arg(front.to_string())
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(StatusCode::StageFailed.exit_code()),
        "{out:?}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("directly to a shard"), "stderr: {stderr}");

    stop_clean(router, None);
    stop_clean(shard, None);
}

#[test]
fn trace_ids_land_in_both_router_and_shard_flight_recorders() {
    let (shard, addr, mut rs) = start_shard("127.0.0.1:0", &["--metrics-addr", "127.0.0.1:0"]);
    let shard_metrics = read_addr_line(&mut rs, "metrics on ");
    let (router, front, route_metrics, _rr) = start_route(&[addr], &[]);

    let trace: u64 = 0xC0FFEE;
    let mut conn = Connection::connect(front, Duration::from_secs(10)).expect("connect");
    let reply = conn
        .classify_traced(&image(), 0, Priority::High, trace)
        .expect("reply");
    assert_eq!(reply.status, StatusCode::Ok);
    assert_eq!(
        reply.trace_id,
        Some(trace),
        "trace must echo through the hop"
    );

    // The same trace ID shows up in both flight recorders: the router
    // logged the admit/forward/reply hops, the shard its execution.
    for (who, metrics) in [("router", route_metrics), ("shard", shard_metrics)] {
        let (code, text) = scrape(metrics, "/flight");
        assert_eq!(code, 200, "{who} /flight");
        let doc = mupod_obs::json::parse(&text).expect("flight JSON");
        let events = doc.as_object().unwrap()["events"].as_array().unwrap();
        let stages: Vec<&str> = events
            .iter()
            .map(|e| e.as_object().unwrap())
            .filter(|e| e["trace_id"].as_f64() == Some(trace as f64))
            .map(|e| e["stage"].as_str().unwrap())
            .collect();
        assert!(
            !stages.is_empty(),
            "trace {trace:#x} missing from {who} flight: {text}"
        );
        if who == "router" {
            assert_eq!(
                stages,
                ["admit", "forward", "reply"],
                "router hop lifecycle"
            );
        }
    }

    stop_clean(router, None);
    stop_clean(shard, Some(&mut rs));
}

/// Soak duration; `MUPOD_SOAK_SECS` overrides for local experiments.
fn soak_window() -> Duration {
    let secs = std::env::var("MUPOD_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_secs(secs.max(3))
}

#[test]
#[ignore = "30s routed-load soak; run explicitly (CI route-chaos job)"]
fn soak_routed_load_survives_kill_restart_and_reload() {
    // CI sets MUPOD_SOAK_DIR to keep (and upload) the metrics artifact;
    // unset, everything lands in a scratch dir that is removed on pass.
    let (dir, keep) = match std::env::var("MUPOD_SOAK_DIR") {
        Ok(d) => (std::path::PathBuf::from(d), true),
        Err(_) => (
            std::env::temp_dir().join(format!("mupod_route_soak_{}", std::process::id())),
            false,
        ),
    };
    std::fs::create_dir_all(&dir).unwrap();

    let (shard_a, addr_a, _ra) = start_shard("127.0.0.1:0", &["--workers", "2"]);
    let (shard_b, addr_b, mut rb) = start_shard("127.0.0.1:0", &["--workers", "2"]);
    let flight_out = dir.join("route_flight.json");
    let flight_arg = flight_out.to_string_lossy().to_string();
    let (router, front, metrics, mut rr) = start_route(
        &[addr_a, addr_b],
        &[
            "--health-interval-ms",
            "100",
            "--breaker-threshold",
            "1",
            "--breaker-cooldown-ms",
            "300",
            "--deadline-ms",
            "5000",
            "--flight-out",
            &flight_arg,
        ],
    );
    let window = soak_window();

    // Fault schedule across the window: kill shard A at 1/3, restart it
    // at 1/2, hot-reload shard B at 2/3 — all while the load generator
    // below keeps hammering the front.
    let injector = std::thread::spawn(move || {
        std::thread::sleep(window / 3);
        send_signal(&shard_a, SIGKILL);
        let mut dead = shard_a;
        let _ = dead.wait();
        std::thread::sleep(window / 6);
        // The reader must outlive the drain at the bottom of the test:
        // dropping it closes the pipe and the shard's summary print
        // would die on EPIPE.
        let (revived, _, reader) = start_shard(&addr_a.to_string(), &["--workers", "2"]);
        std::thread::sleep(window / 6);
        let out = Command::new(env!("CARGO_BIN_EXE_mupod"))
            .args(["reload", "--addr"])
            .arg(addr_b.to_string())
            .args(["--seed", "9"])
            .output()
            .unwrap();
        (revived, reader, out)
    });

    let report = run_load(front, &image(), 8, window, 0);
    let (shard_a, mut ra, reload_out) = injector.join().expect("injector thread");
    assert!(
        reload_out.status.success(),
        "mid-soak reload failed: {reload_out:?}"
    );

    // The soak must have served real traffic with zero client-visible
    // failures despite the kill, the restart and the reload.
    assert!(
        report.ok > 1_000,
        "expected sustained throughput, got {} ok ({} transport errors)",
        report.ok,
        report.transport_errors
    );
    assert_eq!(report.transport_errors, 0, "{report:?}");
    assert_eq!(report.ok, report.sent, "{report:?}");

    // Breaker lifecycle completed: opened on the kill, closed after the
    // restart. Keep the final exposition as the soak artifact.
    let text = await_metrics(metrics, "breaker open+close", |t| {
        sample(t, "mupod_route_breaker_opens_total") >= 1.0
            && sample(t, "mupod_route_breaker_closes_total") >= 1.0
    });
    mupod_obs::expo::validate(&text).expect("valid exposition");
    std::fs::write(dir.join("route_metrics.prom"), &text).unwrap();

    stop_clean(router, Some(&mut rr));
    stop_clean(shard_a, Some(&mut ra));
    stop_clean(shard_b, Some(&mut rb));

    // The router sealed its flight recorder on drain.
    let bytes = mupod_runtime::read_verified(&flight_out).expect("sealed flight dump");
    let doc = mupod_obs::json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(
        doc.as_object().unwrap()["schema"].as_str(),
        Some("mupod-flight v1")
    );
    if !keep {
        std::fs::remove_dir_all(&dir).ok();
    }
}
