//! Chaos harness for `mupod serve`: process-level fault injection
//! against the real binary — worker panics, client disconnects,
//! malformed frames, deadline expiry, SIGINT drain under load, and the
//! forced second-SIGINT hard exit.
//!
//! Everything here spawns `CARGO_BIN_EXE_mupod`, so the signal handler,
//! the exit-code table and the TCP surface are the production ones. The
//! `MUPOD_SERVE_TEST_SLOW_MS` hook holds batches in flight for a known
//! window, making every race in these tests deterministic.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use mupod_models::ModelScale;
use mupod_runtime::StatusCode;
use mupod_serve::{frame, Connection, Priority};

/// Sends SIGINT to a child process (raw FFI; no external crates).
fn send_sigint(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: plain syscall wrapper with scalar arguments; the pid comes
    // from a live `Child` handle owned by this test.
    let rc = unsafe { kill(child.id() as i32, 2) };
    assert_eq!(rc, 0, "kill(SIGINT) failed");
}

fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "child did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawns `mupod serve` on an ephemeral port and blocks until its
/// "serving on ..." line announces the address. The returned reader
/// holds the rest of the child's stdout (the drain summary).
fn start_serve(
    extra_args: &[&str],
    envs: &[(&str, &str)],
) -> (Child, SocketAddr, BufReader<ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.args([
        "serve", "--model", "alexnet", "--scale", "tiny", "--images", "24",
    ])
    .args(extra_args)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("empty address on line: {line:?}"))
        .parse()
        .unwrap();
    (child, addr, reader)
}

/// Drains the child's remaining stdout (the post-drain summary).
fn read_summary(reader: &mut BufReader<ChildStdout>) -> String {
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    rest
}

/// A correctly-sized input for the tiny-scale alexnet the server runs.
fn image() -> Vec<f32> {
    let hw = ModelScale::tiny().input_hw;
    (0..3 * hw * hw)
        .map(|i| (i % 7) as f32 * 0.1 - 0.3)
        .collect()
}

fn connect(addr: SocketAddr) -> Connection {
    Connection::connect(addr, Duration::from_secs(10)).expect("loopback connect")
}

#[test]
fn worker_panic_mid_request_recovers_and_drains_clean() {
    let (child, addr, mut reader) = start_serve(&["--chaos"], &[]);
    let mut conn = connect(addr);
    let crash = conn.chaos_panic().expect("reply");
    assert_eq!(crash.status, StatusCode::WorkerCrashed);
    // The worker restarted: a normal request on the same connection
    // succeeds.
    let ok = conn
        .classify(&image(), 0, Priority::High)
        .expect("reply after restart");
    assert_eq!(ok.status, StatusCode::Ok);
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    let summary = read_summary(&mut reader);
    assert!(summary.contains("1 crashes"), "summary: {summary}");
    assert!(summary.contains("1 ok"), "summary: {summary}");
}

#[test]
fn exhausted_restart_budget_exits_stage_failed() {
    let (child, addr, _reader) = start_serve(&["--chaos", "--restart-budget", "0"], &[]);
    let mut conn = connect(addr);
    let crash = conn.chaos_panic().expect("reply");
    assert_eq!(crash.status, StatusCode::WorkerCrashed);
    // No SIGINT: the server must shut itself down and report the typed
    // terminal error through the shared exit-code table.
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::StageFailed.exit_code()),
        "{status:?}"
    );
}

#[test]
fn worker_panic_seals_flight_recorder_with_request_lifecycle() {
    let dir = std::env::temp_dir().join("mupod_chaos_flight_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.json");
    let _ = std::fs::remove_file(&dump);
    let dump_arg = dump.to_string_lossy().to_string();
    let (child, addr, mut reader) = start_serve(
        &[
            "--chaos",
            "--metrics-addr",
            "127.0.0.1:0",
            "--flight-out",
            &dump_arg,
        ],
        &[],
    );
    // The telemetry plane announces itself on the second stdout line.
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("metrics on "), "unexpected line: {line:?}");

    // One traced request completes normally, then a traced chaos frame
    // panics the worker; the panic handler seals the flight recorder,
    // so the dump must carry both requests' lifecycles.
    let mut conn = connect(addr);
    let traced = conn
        .classify_traced(&image(), 0, Priority::High, 0xABCD01)
        .expect("traced reply");
    assert_eq!(traced.status, StatusCode::Ok);
    assert_eq!(traced.trace_id, Some(0xABCD01));
    let crash = conn.chaos_panic_traced(0xABCD02).expect("crash reply");
    assert_eq!(crash.status, StatusCode::WorkerCrashed);

    // The dump is written concurrently with the crash reply; poll until
    // it exists *and* verifies (a half-written file fails the checksum).
    let deadline = Instant::now() + Duration::from_secs(10);
    let bytes = loop {
        match mupod_runtime::read_verified(&dump) {
            Ok(b) => break b,
            Err(_) => {
                assert!(
                    Instant::now() < deadline,
                    "sealed flight dump never appeared at {dump:?}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let doc = mupod_obs::json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let obj = doc.as_object().unwrap();
    assert_eq!(obj["schema"].as_str(), Some("mupod-flight v1"));
    let events = obj["events"].as_array().unwrap();
    let stages_of = |trace: f64| -> Vec<&str> {
        events
            .iter()
            .map(|e| e.as_object().unwrap())
            .filter(|e| e["trace_id"].as_f64() == Some(trace))
            .map(|e| e["stage"].as_str().unwrap())
            .collect()
    };
    assert_eq!(
        stages_of(0xABCD01_u32 as f64),
        ["admit", "dequeue", "exec", "reply"],
    );
    // The crashed request reached execution and the crash was recorded
    // before the dump; its WorkerCrashed reply races the dump and may
    // or may not have landed yet.
    let crash_stages = stages_of(0xABCD02_u32 as f64);
    assert!(
        crash_stages.starts_with(&["admit", "dequeue", "exec", "crash"]),
        "{crash_stages:?}"
    );

    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn client_disconnect_mid_response_leaves_server_healthy() {
    let (child, addr, mut reader) = start_serve(&[], &[("MUPOD_SERVE_TEST_SLOW_MS", "300")]);
    // Send a full valid request, then vanish while the worker is still
    // executing the batch: the server's response write hits a dead peer.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        let req = frame::encode_request(frame::ReqKind::Classify, Priority::High, 0, &image());
        raw.write_all(&req).unwrap();
        raw.flush().unwrap();
    } // dropped: RST or FIN before the 300 ms batch completes
    std::thread::sleep(Duration::from_millis(500));
    // The server took the hit and still serves.
    let mut conn = connect(addr);
    let ok = conn.classify(&image(), 0, Priority::High).expect("reply");
    assert_eq!(ok.status, StatusCode::Ok);
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    let summary = read_summary(&mut reader);
    assert!(summary.contains("drained:"), "summary: {summary}");
}

#[test]
fn deadline_expiry_is_reported_not_served() {
    let (child, addr, mut reader) = start_serve(&[], &[("MUPOD_SERVE_TEST_SLOW_MS", "400")]);
    let mut conn = connect(addr);
    // 50 ms deadline against a 400 ms batch: the request must come back
    // DeadlineExceeded, never a fabricated class.
    let reply = conn.classify(&image(), 50, Priority::High).expect("reply");
    assert_eq!(reply.status, StatusCode::DeadlineExceeded);
    assert_eq!(reply.class, None);
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    let summary = read_summary(&mut reader);
    assert!(summary.contains("1 deadline-expired"), "summary: {summary}");
}

#[test]
fn malformed_frames_are_rejected_without_taking_the_server_down() {
    let (child, addr, _reader) = start_serve(&[], &[]);
    let good = frame::encode_request(frame::ReqKind::Classify, Priority::High, 0, &image());

    let expect_bad_request = |bytes: &[u8], tag: &str| {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.write_all(bytes).unwrap();
        raw.flush().unwrap();
        let mut header = [0u8; frame::HEADER_LEN];
        raw.read_exact(&mut header)
            .unwrap_or_else(|e| panic!("{tag}: no reply: {e}"));
        let h = frame::parse_response_header(&header).unwrap_or_else(|e| panic!("{tag}: {e}"));
        assert_eq!(h.status, StatusCode::BadRequest, "{tag}");
    };

    // Bad magic.
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"oops");
    expect_bad_request(&bad_magic, "bad magic");

    // Oversized payload_len (32 MiB, over the 16 MiB cap) — rejected
    // from the header alone, before any allocation.
    let mut oversized = good[..frame::HEADER_LEN].to_vec();
    oversized[8..12].copy_from_slice(&(32u32 << 20).to_le_bytes());
    expect_bad_request(&oversized, "oversized");

    // Payload length that cannot be a whole f32 image.
    let mut short_payload = good[..frame::HEADER_LEN].to_vec();
    short_payload[8..12].copy_from_slice(&6u32.to_le_bytes());
    short_payload.extend_from_slice(&[0u8; 6]);
    expect_bad_request(&short_payload, "short payload");

    // Truncated header then hang up: no reply owed, but no crash either.
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&good[..7]).unwrap();
        raw.flush().unwrap();
    }

    // After all that abuse a fresh connection still gets served.
    let mut conn = connect(addr);
    let ok = conn.classify(&image(), 0, Priority::High).expect("reply");
    assert_eq!(ok.status, StatusCode::Ok);
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
}

#[test]
fn sigint_under_load_drains_and_exits_zero() {
    let (child, addr, mut reader) = start_serve(
        &["--workers", "1", "--max-batch", "1"],
        &[("MUPOD_SERVE_TEST_SLOW_MS", "300")],
    );
    // Keep requests in flight while the signal lands.
    let clients: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                conn.classify(&image(), 0, Priority::High)
                    .expect("reply")
                    .status
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    send_sigint(&child);
    let statuses: Vec<StatusCode> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    // Every in-flight request got a definitive answer: served before the
    // drain finished, or an honest Draining rejection — never a hang.
    for s in &statuses {
        assert!(
            *s == StatusCode::Ok || *s == StatusCode::Draining,
            "unexpected status {s}"
        );
    }
    assert!(statuses.contains(&StatusCode::Ok));
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    let summary = read_summary(&mut reader);
    assert!(summary.contains("drained:"), "summary: {summary}");
}

#[test]
fn second_sigint_hard_exits_130_with_batch_in_flight() {
    // A 20 s batch means the graceful drain cannot finish on its own;
    // the second Ctrl-C must take the hard-exit path immediately.
    let (child, addr, _reader) = start_serve(&[], &[("MUPOD_SERVE_TEST_SLOW_MS", "20000")]);
    let _client = std::thread::spawn(move || {
        let mut conn = connect(addr);
        // The reply never comes; the transport error on hard exit is
        // expected and discarded.
        let _ = conn.classify(&image(), 0, Priority::High);
    });
    std::thread::sleep(Duration::from_millis(300));
    send_sigint(&child); // graceful drain starts, blocked on the batch
    std::thread::sleep(Duration::from_millis(300));
    let hard_exit_start = Instant::now();
    send_sigint(&child); // forced
    let status = wait_with_deadline(child, Duration::from_secs(10));
    assert_eq!(
        status.code(),
        Some(StatusCode::Interrupted.exit_code()),
        "{status:?}"
    );
    assert!(
        hard_exit_start.elapsed() < Duration::from_secs(5),
        "second SIGINT must not wait for the in-flight batch"
    );
}
