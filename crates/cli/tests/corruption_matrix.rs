//! Corruption matrix: every on-disk artifact format × every damage
//! kind must yield a typed `Err` from its loader — never a panic, never
//! a silently-wrong value.
//!
//! Formats: profile CSV, allocation CSV, metrics JSON, trace JSON (all
//! sealed by the atomic writer), plus the raw sealed-artifact layer
//! itself. Damage kinds: truncation at several depths, single-bit
//! flips, random garbage, stale schema, empty file. The journal format
//! has its own corruption suite in `mupod-core`'s fault-injection tests
//! (per-record checksums, not a whole-file footer).

use std::path::{Path, PathBuf};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(|x| x.to_string()).collect()
}

fn run_cli(line: &str) -> String {
    mupod_cli::run(&mupod_cli::parse(&argv(line)).unwrap()).unwrap()
}

/// Generates one genuine copy of every artifact format.
fn generate_artifacts(dir: &Path) -> Vec<(&'static str, PathBuf)> {
    let profile = dir.join("p.csv");
    let alloc = dir.join("a.csv");
    let metrics = dir.join("m.json");
    let trace = dir.join("t.json");
    run_cli(&format!(
        "profile --model alexnet --scale tiny --images 24 --deltas 6 --out {} --metrics-out {} --trace-out {}",
        profile.display(),
        metrics.display(),
        trace.display()
    ));
    run_cli(&format!(
        "optimize --model alexnet --scale tiny --images 24 --objective mac --loss 5 --profile {} --save {}",
        profile.display(),
        alloc.display()
    ));
    vec![
        ("profile-csv", profile),
        ("alloc-csv", alloc),
        ("metrics-json", metrics),
        ("trace-json", trace),
    ]
}

/// Damage kinds applied to each pristine artifact.
fn damaged_variants(pristine: &[u8]) -> Vec<(&'static str, Vec<u8>)> {
    let mut out = vec![
        ("empty", Vec::new()),
        ("truncate-head", pristine[..pristine.len().min(3)].to_vec()),
        ("truncate-half", pristine[..pristine.len() / 2].to_vec()),
        (
            "truncate-tail",
            pristine[..pristine.len().saturating_sub(5)].to_vec(),
        ),
        (
            "garbage",
            b"\x00\xff\x13\x37 not any kind of artifact \x7f\x80".to_vec(),
        ),
        ("stale-schema", {
            // A plausible-looking but wrong header ahead of real rows.
            let mut b = b"col_a,col_b\n".to_vec();
            b.extend_from_slice(pristine);
            b
        }),
    ];
    // Bit flips at several depths, including inside the footer.
    for (tag, frac) in [
        ("bitflip-early", 0.1),
        ("bitflip-mid", 0.5),
        ("bitflip-late", 0.9),
    ] {
        let mut b = pristine.to_vec();
        let idx = ((b.len() as f64 * frac) as usize).min(b.len() - 1);
        b[idx] ^= 0x10;
        out.push((tag, b));
    }
    out
}

/// Every damaged variant must fail closed at the integrity layer.
#[test]
fn sealed_artifact_layer_rejects_all_damage() {
    let dir = std::env::temp_dir().join(format!("mupod_matrix_seal_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (format, path) in generate_artifacts(&dir) {
        let pristine = std::fs::read(&path).unwrap();
        mupod_runtime::verify_file(&path)
            .unwrap_or_else(|e| panic!("{format}: pristine artifact must verify: {e}"));
        for (damage, bytes) in damaged_variants(&pristine) {
            let bad = dir.join(format!("{format}_{damage}"));
            std::fs::write(&bad, &bytes).unwrap();
            let verdict = mupod_runtime::verify_file(&bad);
            assert!(
                verdict.is_err(),
                "{format} × {damage}: damaged file must not verify"
            );
            let read = mupod_runtime::read_verified(&bad);
            assert!(
                read.is_err(),
                "{format} × {damage}: read_verified must fail closed"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The format parsers themselves must return typed errors (not panic)
/// even when handed damaged bytes directly, bypassing the footer check
/// — e.g. a file produced by an older unsealed version and then
/// corrupted.
#[test]
fn format_parsers_never_panic_on_damage() {
    let dir = std::env::temp_dir().join(format!("mupod_matrix_parse_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (format, path) in generate_artifacts(&dir) {
        let pristine = std::fs::read(&path).unwrap();
        for (damage, bytes) in damaged_variants(&pristine) {
            let outcome = std::panic::catch_unwind(|| match format {
                "profile-csv" => mupod_core::Profile::load_csv(bytes.as_slice())
                    .err()
                    .map(|e| e.to_string()),
                "alloc-csv" => mupod_quant::BitwidthAllocation::load_csv(bytes.as_slice())
                    .err()
                    .map(|e| e.to_string()),
                "metrics-json" | "trace-json" => match std::str::from_utf8(&bytes) {
                    // Lossy damage may break UTF-8 itself; that is a
                    // typed failure upstream of the parser.
                    Err(e) => Some(e.to_string()),
                    Ok(text) => mupod_obs::json::parse(text).err(),
                },
                other => panic!("unknown format {other}"),
            });
            let parsed = outcome.unwrap_or_else(|_| panic!("{format} × {damage}: parser panicked"));
            // Some damage is syntactically survivable (a bit flip inside
            // a numeric literal still parses); the integrity footer
            // exists precisely to catch those. The parser's only
            // obligation here is: no panic. But wholesale damage must
            // still be a typed error.
            if matches!(damage, "empty" | "garbage" | "truncate-head") {
                assert!(
                    parsed.is_some(),
                    "{format} × {damage}: expected a typed parse error"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
