//! Process-level fault tests for the `mupod` binary: SIGINT drain,
//! watchdog timeouts, the crash window of the atomic artifact writer,
//! and the corruption matrix as seen from the CLI.
//!
//! These spawn the real binary (`CARGO_BIN_EXE_mupod`) so they exercise
//! the actual signal handler, exit codes and filesystem behavior — not
//! library-level approximations.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EXIT_RUN: i32 = 1;
const EXIT_TIMEOUT: i32 = 4;
const EXIT_INTERRUPTED: i32 = 130;

fn mupod() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mupod_fault_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn profile_args(out: &Path) -> Vec<String> {
    [
        "profile", "--model", "alexnet", "--scale", "tiny", "--images", "24", "--deltas", "6",
        "--out",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([out.display().to_string()])
    .collect()
}

/// Sends SIGINT to a child process (raw FFI; no external crates).
fn send_sigint(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: plain syscall wrapper with scalar arguments; the pid comes
    // from a live `Child` handle owned by this test.
    let rc = unsafe { kill(child.id() as i32, 2) };
    assert_eq!(rc, 0, "kill(SIGINT) failed");
}

fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "child did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigint_drains_and_exits_130_leaving_prior_artifact_intact() {
    let dir = tmp_dir("sigint");
    let out = dir.join("p.csv");
    // A previous successful run's artifact, which the interrupted run
    // must not disturb.
    let prior = b"previous deliverable\n".to_vec();
    std::fs::write(&out, &prior).unwrap();

    let child = mupod()
        .args(profile_args(&out))
        .env("MUPOD_TEST_STAGE_DELAY_MS", "30000")
        .spawn()
        .unwrap();
    // Let the run enter its cancellable delay, then interrupt it.
    std::thread::sleep(Duration::from_millis(400));
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(status.code(), Some(EXIT_INTERRUPTED), "{status:?}");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        prior,
        "interrupted run must leave the previous artifact bit-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stage_timeout_exits_4_with_diagnostic() {
    let dir = tmp_dir("timeout");
    let out = dir.join("p.csv");
    let output = mupod()
        .args(profile_args(&out))
        .args(["--stage-timeout", "0.3"])
        .env("MUPOD_TEST_STAGE_DELAY_MS", "30000")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(EXIT_TIMEOUT), "{output:?}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("deadline"), "stderr: {stderr}");
    assert!(!out.exists(), "timed-out run must not produce the artifact");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_before_rename_leaves_old_artifact_bit_identical() {
    let dir = tmp_dir("crashwin");
    let out = dir.join("p.csv");
    // First run: produce a genuine sealed artifact.
    let ok = mupod().args(profile_args(&out)).output().unwrap();
    assert!(ok.status.success(), "{ok:?}");
    let original = std::fs::read(&out).unwrap();

    // Second run dies between writing the temp file and the rename —
    // the atomic writer's only crash window.
    let crashed = mupod()
        .args(profile_args(&out))
        .env("MUPOD_TEST_DIE_BEFORE_RENAME", "1")
        .output()
        .unwrap();
    assert!(!crashed.status.success(), "{crashed:?}");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        original,
        "old artifact must survive a crash inside the write window"
    );
    // And it still verifies: payload + footer are untouched.
    mupod_runtime::verify_file(&out).expect("old artifact must still verify");
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption matrix from the CLI's perspective: every damaged profile
/// CSV fed to `optimize --profile` must produce a clean diagnostic exit
/// (code 1), never a panic, never an allocation.
#[test]
fn corrupted_profile_inputs_fail_cleanly() {
    let dir = tmp_dir("corrupt");
    let out = dir.join("p.csv");
    let ok = mupod().args(profile_args(&out)).output().unwrap();
    assert!(ok.status.success(), "{ok:?}");
    let pristine = std::fs::read(&out).unwrap();

    let stale_schema = b"node,name,lambda,theta,r_squared,max_relative_error,\
max_abs,input_elems,macs\n1,conv1,0.5,0.0,1.0,0.0,1.0,1,1\n"
        .to_vec();
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("truncate", pristine[..pristine.len() / 2].to_vec()),
        ("bitflip", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x08;
            b
        }),
        ("garbage", b"\x00\xff\x13garbage not a csv\x7f".to_vec()),
        ("stale-schema", stale_schema),
        ("empty", Vec::new()),
    ];

    for (tag, bytes) in cases {
        let bad = dir.join(format!("bad_{tag}.csv"));
        std::fs::write(&bad, &bytes).unwrap();
        let output = mupod()
            .args([
                "optimize",
                "--model",
                "alexnet",
                "--scale",
                "tiny",
                "--images",
                "24",
                "--objective",
                "mac",
                "--loss",
                "5",
                "--profile",
            ])
            .arg(&bad)
            .output()
            .unwrap();
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(EXIT_RUN),
            "{tag}: expected clean run-error exit, got {:?}\nstderr: {stderr}",
            output.status
        );
        assert!(
            !stderr.contains("panicked"),
            "{tag}: loader must not panic\nstderr: {stderr}"
        );
        assert!(stderr.contains("error:"), "{tag}: stderr: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A journaled profile interrupted by SIGINT resumes on the next run
/// and produces a bit-identical artifact — the end-to-end story the
/// journal (PR 1) and the supervisor (this PR) exist to tell together.
#[test]
fn interrupted_journaled_profile_resumes_to_identical_artifact() {
    let dir = tmp_dir("resume");
    let out = dir.join("p.csv");
    let journal = dir.join("p.journal");
    let journal_flag = ["--journal".to_string(), journal.display().to_string()];

    // Reference: uninterrupted journaled run.
    let reference_out = dir.join("ref.csv");
    let ok = mupod()
        .args(profile_args(&reference_out))
        .args(&journal_flag)
        .output()
        .unwrap();
    assert!(ok.status.success(), "{ok:?}");
    let reference = std::fs::read(&reference_out).unwrap();
    std::fs::remove_file(&journal).unwrap();

    // Interrupted run: SIGINT lands mid-sweep (the per-layer work is
    // fast at tiny scale, so interrupt as early as possible).
    let child = mupod()
        .args(profile_args(&out))
        .args(&journal_flag)
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(30));
    // Timing race is real: the tiny sweep may have finished before the
    // signal landed. Either way the second run must converge on the
    // reference bytes.
    if status.code() == Some(EXIT_INTERRUPTED) {
        assert!(!out.exists(), "drained run must not write the final CSV");
    }

    let second = mupod()
        .args(profile_args(&out))
        .args(&journal_flag)
        .output()
        .unwrap();
    assert!(second.status.success(), "{second:?}");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        reference,
        "resumed artifact must be bit-identical to an uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}
