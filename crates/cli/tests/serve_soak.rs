//! Sustained-load soak for `mupod serve`: ~30 s of full-tilt loopback
//! traffic with a worker panic injected mid-run, ended by a SIGINT
//! drain. Ignored by default (it holds a CPU for half a minute); CI's
//! `serve-soak` job runs it explicitly with `-- --ignored`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use mupod_models::ModelScale;
use mupod_serve::{run_load, Connection};

/// Soak duration; `MUPOD_SOAK_SECS` overrides for local experiments.
fn soak_window() -> Duration {
    let secs = std::env::var("MUPOD_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(30);
    Duration::from_secs(secs.max(1))
}

#[test]
#[ignore = "30s sustained-load soak; run explicitly (CI serve-soak job)"]
fn soak_survives_load_chaos_and_drains_clean() {
    // CI sets MUPOD_SOAK_DIR to keep (and upload) the metrics artifact;
    // unset, everything lands in a scratch dir that is removed on pass.
    let (dir, keep) = match std::env::var("MUPOD_SOAK_DIR") {
        Ok(d) => (std::path::PathBuf::from(d), true),
        Err(_) => (
            std::env::temp_dir().join(format!("mupod_soak_{}", std::process::id())),
            false,
        ),
    };
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("serve_metrics.json");

    let mut child = Command::new(env!("CARGO_BIN_EXE_mupod"))
        .args([
            "serve",
            "--model",
            "alexnet",
            "--scale",
            "tiny",
            "--images",
            "24",
            "--chaos",
            "--workers",
            "2",
            "--queue-depth",
            "64",
            "--max-batch",
            "8",
            "--deadline-ms",
            "5000",
            "--metrics-out",
        ])
        .arg(&metrics)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("empty address on line: {line:?}"))
        .parse()
        .unwrap();

    let hw = ModelScale::tiny().input_hw;
    let image: Vec<f32> = (0..3 * hw * hw)
        .map(|i| (i % 7) as f32 * 0.1 - 0.3)
        .collect();
    let window = soak_window();

    // Chaos injector: one worker panic halfway through the window, while
    // the load generator below keeps hammering the server.
    let injector = std::thread::spawn(move || {
        std::thread::sleep(window / 2);
        let mut conn = Connection::connect(addr, Duration::from_secs(10)).expect("chaos connect");
        conn.chaos_panic().expect("chaos reply")
    });

    let report = run_load(addr, &image, 8, window, 0);
    let crash = injector.join().expect("injector thread");
    assert_eq!(
        crash.status,
        mupod_runtime::StatusCode::WorkerCrashed,
        "chaos frame must be answered honestly"
    );

    // Drain under the tail of the load.
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: plain syscall wrapper with scalar arguments; the pid comes
    // from a live `Child` handle owned by this test.
    let rc = unsafe { kill(child.id() as i32, 2) };
    assert_eq!(rc, 0, "kill(SIGINT) failed");
    let start = Instant::now();
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(start.elapsed() < Duration::from_secs(30), "drain hung");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "{status:?}");

    let mut summary = String::new();
    reader.read_to_string(&mut summary).unwrap();
    assert!(summary.contains("drained:"), "summary: {summary}");

    // The soak must have actually served traffic and survived the crash.
    assert!(
        report.ok > 1_000,
        "expected sustained throughput, got {} ok ({} transport errors)",
        report.ok,
        report.transport_errors
    );
    // Metrics flushed atomically on drain and verify against their
    // checksum footer.
    mupod_runtime::verify_file(&metrics).expect("sealed metrics artifact");
    let bytes = std::fs::read(&metrics).unwrap();
    let payload = mupod_runtime::unseal(&bytes).expect("footer");
    let text = std::str::from_utf8(payload).unwrap();
    assert!(text.contains("serve.requests_ok"), "metrics: {text}");
    if !keep {
        std::fs::remove_dir_all(&dir).ok();
    }
}
