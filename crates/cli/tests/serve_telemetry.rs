//! End-to-end telemetry-plane tests against the real binary: scraping
//! `/metrics` under live load, counter monotonicity across scrapes, the
//! `/health` document, `mupod query --dump-flight`, and the drain
//! summary printed when the restart budget is exhausted.
//!
//! Like the chaos harness, everything spawns `CARGO_BIN_EXE_mupod`, so
//! the flag parsing, stdout contract and exit codes under test are the
//! production ones.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use mupod_models::ModelScale;
use mupod_runtime::StatusCode;
use mupod_serve::{http_get, Connection, Priority};

/// Sends SIGINT to a child process (raw FFI; no external crates).
fn send_sigint(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    // SAFETY: plain syscall wrapper with scalar arguments; the pid comes
    // from a live `Child` handle owned by this test.
    let rc = unsafe { kill(child.id() as i32, 2) };
    assert_eq!(rc, 0, "kill(SIGINT) failed");
}

fn wait_with_deadline(mut child: Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "child did not exit within {deadline:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawns `mupod serve` with the telemetry plane enabled and blocks
/// until both the "serving on ..." and "metrics on ..." lines arrive.
fn start_serve_with_metrics(
    extra_args: &[&str],
) -> (Child, SocketAddr, SocketAddr, BufReader<ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.args([
        "serve",
        "--model",
        "alexnet",
        "--scale",
        "tiny",
        "--images",
        "24",
        "--metrics-addr",
        "127.0.0.1:0",
    ])
    .args(extra_args)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("empty address on line: {line:?}"))
        .parse()
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    let metrics = line
        .trim()
        .strip_prefix("metrics on ")
        .unwrap_or_else(|| panic!("unexpected second line: {line:?}"))
        .parse()
        .unwrap();
    (child, addr, metrics, reader)
}

/// A correctly-sized input for the tiny-scale alexnet the server runs.
fn image() -> Vec<f32> {
    let hw = ModelScale::tiny().input_hw;
    (0..3 * hw * hw)
        .map(|i| (i % 7) as f32 * 0.1 - 0.3)
        .collect()
}

fn scrape(metrics: SocketAddr, path: &str) -> (u16, String) {
    let (code, body) = http_get(metrics, path, Duration::from_secs(5)).expect("scrape");
    (code, String::from_utf8(body).expect("utf-8 body"))
}

/// Extracts the value of an un-labelled sample line, e.g.
/// `mupod_requests_ok_total 3`.
fn sample(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition:\n{text}"))
        .trim()
        .parse()
        .expect("numeric sample")
}

#[test]
fn metrics_scrape_under_load_is_valid_monotonic_and_windowed() {
    let (child, addr, metrics, _reader) = start_serve_with_metrics(&[]);
    let mut conn = Connection::connect(addr, Duration::from_secs(10)).expect("connect");
    for _ in 0..4 {
        let reply = conn.classify(&image(), 0, Priority::High).expect("reply");
        assert_eq!(reply.status, StatusCode::Ok);
    }

    let (code, text) = scrape(metrics, "/metrics");
    assert_eq!(code, 200);
    mupod_obs::expo::validate(&text).expect("valid Prometheus exposition");
    let ok_before = sample(&text, "mupod_requests_ok_total");
    assert!(ok_before >= 4.0, "{ok_before}");
    // The rolling window publishes its quantiles; four sub-second
    // requests all land inside the 60 s window, so both must be live.
    for q in ["quantile=\"0.5\"", "quantile=\"0.99\""] {
        assert!(
            text.lines()
                .any(|l| l.starts_with("mupod_request_latency_window_us{") && l.contains(q)),
            "missing {q} in:\n{text}"
        );
    }
    assert!(sample(&text, "mupod_request_latency_us_count") >= 4.0);

    // More load, then a second scrape: counters only move up.
    for _ in 0..3 {
        let reply = conn.classify(&image(), 0, Priority::High).expect("reply");
        assert_eq!(reply.status, StatusCode::Ok);
    }
    let (_, text2) = scrape(metrics, "/metrics");
    let ok_after = sample(&text2, "mupod_requests_ok_total");
    assert!(
        ok_after >= ok_before + 3.0,
        "counter went from {ok_before} to {ok_after}"
    );

    // The health document agrees the server is live.
    let (code, health) = scrape(metrics, "/health");
    assert_eq!(code, 200);
    let doc = mupod_obs::json::parse(&health).expect("health JSON");
    let obj = doc.as_object().unwrap();
    assert_eq!(obj["schema"].as_str(), Some(mupod_serve::HEALTH_SCHEMA));
    assert_eq!(obj["state"].as_str(), Some("ok"));
    assert_eq!(obj["worker_crashes"].as_f64(), Some(0.0));
    assert!(obj["restart_budget_remaining"].as_f64().unwrap() > 0.0);

    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
}

#[test]
fn query_dump_flight_seals_the_ring_on_demand() {
    let dir = std::env::temp_dir().join("mupod_telemetry_dump_test");
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("flight.json");
    let _ = std::fs::remove_file(&dump);
    let (child, addr, metrics, _reader) = start_serve_with_metrics(&[]);

    // Generate traffic through the production `query` subcommand.
    let status = Command::new(env!("CARGO_BIN_EXE_mupod"))
        .args(["query", "--model", "alexnet", "--scale", "tiny", "--addr"])
        .arg(addr.to_string())
        .args(["--count", "4"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "query load failed: {status:?}");

    // `query --dump-flight` fetches /flight from the *metrics* address
    // and seals it; no classify traffic is sent.
    let out = Command::new(env!("CARGO_BIN_EXE_mupod"))
        .args(["query", "--model", "alexnet", "--addr"])
        .arg(metrics.to_string())
        .arg("--dump-flight")
        .arg(&dump)
        .output()
        .unwrap();
    assert!(out.status.success(), "dump-flight failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("events sealed to"),
        "unexpected stdout: {stdout}"
    );

    // The artifact verifies and carries the queries' lifecycle events.
    let bytes = mupod_runtime::read_verified(&dump).expect("sealed dump verifies");
    let doc = mupod_obs::json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let obj = doc.as_object().unwrap();
    assert_eq!(obj["schema"].as_str(), Some("mupod-flight v1"));
    let events = obj["events"].as_array().unwrap();
    let replies = events
        .iter()
        .filter(|e| e.as_object().unwrap()["stage"].as_str() == Some("reply"))
        .count();
    assert!(replies >= 4, "only {replies} reply events in {events:?}");

    send_sigint(&child);
    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::Ok.exit_code()),
        "{status:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_budget_prints_drain_summary_with_status_name() {
    // stderr is captured here: the budget-exhausted path must still
    // print the drain summary, tagged with the failure status name.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mupod"));
    cmd.args([
        "serve",
        "--model",
        "alexnet",
        "--scale",
        "tiny",
        "--images",
        "24",
        "--chaos",
        "--restart-budget",
        "0",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    let mut child = cmd.spawn().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("empty address on line: {line:?}"))
        .parse()
        .unwrap();
    let stderr = child.stderr.take().unwrap();

    let mut conn = Connection::connect(addr, Duration::from_secs(10)).expect("connect");
    let crash = conn.chaos_panic().expect("crash reply");
    assert_eq!(crash.status, StatusCode::WorkerCrashed);

    let status = wait_with_deadline(child, Duration::from_secs(20));
    assert_eq!(
        status.code(),
        Some(StatusCode::StageFailed.exit_code()),
        "{status:?}"
    );
    let err_text: String = std::io::read_to_string(stderr).unwrap();
    assert!(err_text.contains("drained:"), "stderr: {err_text}");
    assert!(
        err_text.contains("status 3 (stage failed after retries)"),
        "stderr: {err_text}"
    );
    assert!(
        err_text.contains("restart budget exhausted"),
        "stderr: {err_text}"
    );
}
