//! Search-based bitwidth baselines: the prior art the paper compares
//! against.
//!
//! Stripes \[1\] and its precursor \[3\] assign per-layer bitwidths by
//! *empirical search*: repeatedly pick a candidate assignment, run the
//! network on the test set, accept if accuracy holds, tweak and retry.
//! The paper's critique (§I) is that this is slow — every candidate
//! costs a full accuracy evaluation — and over-fits the test set. This
//! crate implements the two baseline flavours the evaluation needs:
//!
//! * [`uniform_search`]: the smallest *single* bitwidth shared by every
//!   layer that meets the accuracy constraint — the paper's fallback
//!   baseline for networks Stripes never published numbers for.
//! * [`greedy_search`]: a Stripes-style per-layer descent — start from a
//!   feasible uniform assignment and repeatedly lower the bitwidth of
//!   whichever layer still tolerates it. Cost: `O(layers · bits)`
//!   accuracy evaluations, each a full forward pass over the dataset —
//!   exactly the expense the analytical method avoids.
//!
//! Both return the same [`BitwidthAllocation`] type the analytical
//! allocator produces, so cost models and experiments treat them
//! interchangeably. Both also report how many accuracy evaluations they
//! spent, the currency of the paper's compute-time comparison (§VI-A).

use mupod_core::AccuracyEvaluator;
use mupod_nn::inventory::LayerInventory;
use mupod_nn::NodeId;
use mupod_quant::{BitwidthAllocation, FixedPointFormat, LayerFormat};
use std::collections::HashMap;

/// Result of a baseline search.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The found allocation (aligned with the searched layers).
    pub allocation: BitwidthAllocation,
    /// The layers the allocation covers, in order.
    pub layers: Vec<NodeId>,
    /// Accuracy of the final assignment.
    pub accuracy: f64,
    /// Number of full accuracy evaluations spent.
    pub evaluations: usize,
}

fn formats_for_bits(
    layers: &[NodeId],
    inventory: &LayerInventory,
    bits: &[u32],
) -> HashMap<NodeId, FixedPointFormat> {
    layers
        .iter()
        .zip(bits)
        .map(|(&id, &b)| {
            let info = inventory.find(id).expect("layer present in inventory");
            let int_bits = FixedPointFormat::int_bits_for_max_abs(info.max_abs);
            (id, FixedPointFormat::new(int_bits, b as i32 - int_bits))
        })
        .collect()
}

fn allocation_for_bits(
    layers: &[NodeId],
    inventory: &LayerInventory,
    bits: &[u32],
) -> BitwidthAllocation {
    layers
        .iter()
        .zip(bits)
        .map(|(&id, &b)| {
            let info = inventory.find(id).expect("layer present in inventory");
            let int_bits = FixedPointFormat::int_bits_for_max_abs(info.max_abs);
            let fmt = FixedPointFormat::new(int_bits, b as i32 - int_bits);
            LayerFormat {
                layer: info.name.clone(),
                format: fmt,
                delta: fmt.delta(),
                max_abs: info.max_abs,
            }
        })
        .collect()
}

/// Finds the smallest uniform bitwidth in `[1, max_bits]` whose
/// quantized accuracy meets `target_accuracy`.
///
/// Linear descent from the top (the curve is monotone enough in
/// practice, and a binary search would save at most four evaluations).
/// Returns the last feasible assignment; if even `max_bits` fails, that
/// assignment is returned with its measured accuracy so the caller can
/// see the violation.
///
/// # Panics
///
/// Panics if `layers` is empty or `max_bits == 0`.
pub fn uniform_search(
    evaluator: &AccuracyEvaluator<'_>,
    inventory: &LayerInventory,
    layers: &[NodeId],
    target_accuracy: f64,
    max_bits: u32,
) -> BaselineResult {
    assert!(!layers.is_empty(), "uniform search needs layers");
    assert!(max_bits > 0, "max_bits must be positive");
    let mut evaluations = 0usize;
    let mut best_bits = max_bits;
    let mut best_acc = {
        evaluations += 1;
        let bits = vec![max_bits; layers.len()];
        evaluator.accuracy_quantized(&formats_for_bits(layers, inventory, &bits))
    };
    for b in (1..max_bits).rev() {
        let bits = vec![b; layers.len()];
        evaluations += 1;
        let acc = evaluator.accuracy_quantized(&formats_for_bits(layers, inventory, &bits));
        if acc >= target_accuracy {
            best_bits = b;
            best_acc = acc;
        } else {
            break;
        }
    }
    let bits = vec![best_bits; layers.len()];
    BaselineResult {
        allocation: allocation_for_bits(layers, inventory, &bits),
        layers: layers.to_vec(),
        accuracy: best_acc,
        evaluations,
    }
}

/// Stripes-style greedy per-layer search.
///
/// Starting from `start_bits` everywhere (must be feasible, or the
/// search degenerates to reporting it), repeatedly sweeps the layers in
/// `rho`-descending order (most expensive layer first), lowering each
/// layer by one bit whenever the accuracy constraint still holds, until
/// a full sweep makes no progress.
///
/// `rho` weights the sweep order only — the greedy accepts any reduction
/// — so passing `#Input` or `#MAC` steers which layer gets first claim
/// on the error budget, mirroring how Stripes prioritized.
///
/// # Panics
///
/// Panics if lengths mismatch or `layers` is empty.
pub fn greedy_search(
    evaluator: &AccuracyEvaluator<'_>,
    inventory: &LayerInventory,
    layers: &[NodeId],
    rho: &[f64],
    target_accuracy: f64,
    start_bits: u32,
) -> BaselineResult {
    assert!(!layers.is_empty(), "greedy search needs layers");
    assert_eq!(layers.len(), rho.len(), "layers/rho length mismatch");
    assert!(start_bits > 0, "start_bits must be positive");

    let mut order: Vec<usize> = (0..layers.len()).collect();
    order.sort_by(|&a, &b| rho[b].partial_cmp(&rho[a]).expect("finite rho"));

    let mut bits = vec![start_bits; layers.len()];
    let mut evaluations = 0usize;
    let mut accuracy = {
        evaluations += 1;
        evaluator.accuracy_quantized(&formats_for_bits(layers, inventory, &bits))
    };
    loop {
        let mut improved = false;
        for &k in &order {
            if bits[k] == 1 {
                continue;
            }
            bits[k] -= 1;
            evaluations += 1;
            let acc = evaluator.accuracy_quantized(&formats_for_bits(layers, inventory, &bits));
            if acc >= target_accuracy {
                accuracy = acc;
                improved = true;
            } else {
                bits[k] += 1;
            }
        }
        if !improved {
            break;
        }
    }
    BaselineResult {
        allocation: allocation_for_bits(layers, inventory, &bits),
        layers: layers.to_vec(),
        accuracy,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_core::AccuracyMode;
    use mupod_data::{Dataset, DatasetSpec};
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
    use mupod_nn::Network;

    fn setup() -> (Network, Dataset) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 171);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 172, 32);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        (net, data)
    }

    #[test]
    fn uniform_search_finds_feasible_minimum() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let inventory = LayerInventory::measure(&net, data.images().iter().cloned());
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let target = 0.9;
        let result = uniform_search(&ev, &inventory, &layers, target, 20);
        assert!(result.accuracy >= target);
        let bits = result.allocation.bits();
        assert!(bits.iter().all(|&b| b == bits[0]), "not uniform: {bits:?}");
        assert!(bits[0] < 20, "search failed to lower anything");
        assert!(result.evaluations >= 2);
    }

    #[test]
    fn greedy_improves_on_uniform() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let inventory = LayerInventory::measure(&net, data.images().iter().cloned());
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let target = 0.9;
        let uniform = uniform_search(&ev, &inventory, &layers, target, 20);
        let rho: Vec<f64> = layers
            .iter()
            .map(|&id| inventory.find(id).unwrap().macs as f64)
            .collect();
        let greedy = greedy_search(
            &ev,
            &inventory,
            &layers,
            &rho,
            target,
            uniform.allocation.bits()[0],
        );
        assert!(greedy.accuracy >= target);
        let total_uniform: u32 = uniform.allocation.bits().iter().sum();
        let total_greedy: u32 = greedy.allocation.bits().iter().sum();
        assert!(
            total_greedy <= total_uniform,
            "greedy {total_greedy} worse than uniform {total_uniform}"
        );
        // The greedy search burns many more evaluations — the cost the
        // analytical method eliminates.
        assert!(greedy.evaluations > uniform.evaluations);
    }

    #[test]
    fn greedy_respects_accuracy_floor() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let inventory = LayerInventory::measure(&net, data.images().iter().cloned());
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let rho = vec![1.0; layers.len()];
        let result = greedy_search(&ev, &inventory, &layers, &rho, 0.95, 16);
        assert!(result.accuracy >= 0.95);
        assert!(result.allocation.bits().iter().all(|&b| b >= 1));
    }

    #[test]
    #[should_panic(expected = "needs layers")]
    fn uniform_rejects_empty_layers() {
        let (net, data) = setup();
        let inventory = LayerInventory::measure(&net, std::iter::empty());
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        uniform_search(&ev, &inventory, &[], 0.9, 8);
    }
}
