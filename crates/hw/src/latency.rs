//! Roofline latency model: is an allocation compute- or memory-bound?
//!
//! The paper reports Stripes' performance scaling directly from the
//! effective bitwidth; a deployment decision also needs to know whether
//! the accelerator can *feed* its MACs. This model bounds per-layer
//! latency by the classic roofline:
//!
//! `t_K = max(work_K / peak_compute, traffic_K / peak_bandwidth)`
//!
//! where bit-serial compute throughput scales inversely with the
//! operand bitwidth ([`crate::BitSerialModel`]) and traffic is the
//! layer's input-read bits.

use crate::serial::BitSerialModel;

/// Peak rates of the modeled accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineModel {
    /// Peak MAC throughput at the baseline bitwidth (MAC/s).
    pub peak_macs_per_s: f64,
    /// Peak memory bandwidth (bits/s).
    pub peak_bits_per_s: f64,
    /// The bit-serial scaling of compute throughput.
    pub serial: BitSerialModel,
}

impl RooflineModel {
    /// A Stripes-like edge configuration: 1 TMAC/s at 16-bit baseline,
    /// 64 Gbit/s DRAM.
    pub fn edge_stripes() -> Self {
        Self {
            peak_macs_per_s: 1e12,
            peak_bits_per_s: 64e9,
            serial: BitSerialModel::stripes(),
        }
    }

    /// Latency of one layer (seconds).
    pub fn layer_latency(
        &self,
        macs: u64,
        input_bits_traffic: f64,
        input_bitwidth: u32,
        weight_bits: u32,
    ) -> f64 {
        let speed_scale = 1.0
            / self
                .serial
                .layer_cycle_fraction(input_bitwidth, weight_bits);
        let compute = macs as f64 / (self.peak_macs_per_s * speed_scale);
        let memory = input_bits_traffic / self.peak_bits_per_s;
        compute.max(memory)
    }

    /// Whether a layer is memory-bound at this allocation.
    pub fn is_memory_bound(
        &self,
        macs: u64,
        input_bits_traffic: f64,
        input_bitwidth: u32,
        weight_bits: u32,
    ) -> bool {
        let speed_scale = 1.0
            / self
                .serial
                .layer_cycle_fraction(input_bitwidth, weight_bits);
        input_bits_traffic / self.peak_bits_per_s
            > macs as f64 / (self.peak_macs_per_s * speed_scale)
    }

    /// End-to-end latency of an inference (layers execute sequentially).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ.
    pub fn network_latency(
        &self,
        macs: &[u64],
        input_counts: &[u64],
        bits: &[u32],
        weight_bits: u32,
    ) -> f64 {
        assert_eq!(macs.len(), input_counts.len(), "length mismatch");
        assert_eq!(macs.len(), bits.len(), "length mismatch");
        macs.iter()
            .zip(input_counts)
            .zip(bits)
            .map(|((&m, &n), &b)| self.layer_latency(m, n as f64 * b as f64, b, weight_bits))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_layer_scales_with_bitwidth() {
        let m = RooflineModel::edge_stripes();
        // Huge MACs, tiny traffic: compute bound; halving bits halves time.
        let t16 = m.layer_latency(1_000_000_000, 1e3, 16, 16);
        let t8 = m.layer_latency(1_000_000_000, 1e3, 8, 16);
        assert!((t16 / t8 - 2.0).abs() < 1e-9);
        assert!(!m.is_memory_bound(1_000_000_000, 1e3, 16, 16));
    }

    #[test]
    fn memory_bound_layer_scales_with_traffic() {
        let m = RooflineModel::edge_stripes();
        // Tiny MACs, huge traffic: memory bound; time = traffic / bw.
        let t = m.layer_latency(10, 64e9, 8, 16);
        assert!((t - 1.0).abs() < 1e-9);
        assert!(m.is_memory_bound(10, 64e9, 8, 16));
    }

    #[test]
    fn lowering_bits_can_flip_a_layer_to_memory_bound() {
        let m = RooflineModel::edge_stripes();
        // Work/traffic chosen so 16-bit compute (1 ms) dominates memory
        // (0.25 ms), while 2-bit compute (0.125 ms) no longer does.
        let macs = 1_000_000_000u64;
        let traffic = 16e6;
        assert!(!m.is_memory_bound(macs, traffic, 16, 16));
        assert!(m.is_memory_bound(macs, traffic, 2, 16));
    }

    #[test]
    fn network_latency_sums_layers() {
        let m = RooflineModel::edge_stripes();
        let total = m.network_latency(&[1000, 2000], &[100, 200], &[8, 8], 16);
        let by_hand = m.layer_latency(1000, 800.0, 8, 16) + m.layer_latency(2000, 1600.0, 8, 16);
        assert!((total - by_hand).abs() < 1e-15);
    }
}
