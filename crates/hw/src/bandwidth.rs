//! Input-read bandwidth accounting (Table II's `#Input_bits` rows).

use mupod_nn::inventory::LayerInventory;
use mupod_quant::BitwidthAllocation;

/// Total bits read for input operands in one inference:
/// `Σ_K #Input_K · B_K`.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn total_input_bits(input_counts: &[u64], bits: &[u32]) -> f64 {
    assert_eq!(input_counts.len(), bits.len(), "length mismatch");
    input_counts
        .iter()
        .zip(bits)
        .map(|(&n, &b)| n as f64 * b as f64)
        .sum()
}

/// Per-layer input bits (the `#Input_bits` row of Table II).
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn per_layer_input_bits(input_counts: &[u64], bits: &[u32]) -> Vec<f64> {
    assert_eq!(input_counts.len(), bits.len(), "length mismatch");
    input_counts
        .iter()
        .zip(bits)
        .map(|(&n, &b)| n as f64 * b as f64)
        .collect()
}

/// Total input-read traffic of an allocation on a measured network.
///
/// # Panics
///
/// Panics if the allocation and inventory disagree on layer count.
pub fn allocation_input_bits(inventory: &LayerInventory, allocation: &BitwidthAllocation) -> f64 {
    assert_eq!(
        inventory.len(),
        allocation.len(),
        "inventory/allocation layer count mismatch"
    );
    let counts: Vec<u64> = inventory.layers().iter().map(|l| l.input_elems).collect();
    total_input_bits(&counts, &allocation.bits())
}

/// Percentage bandwidth saving of `optimized` over `baseline`
/// (positive = optimized reads fewer bits).
///
/// # Panics
///
/// Panics if `baseline` is not positive.
pub fn saving_percent(baseline: f64, optimized: f64) -> f64 {
    assert!(baseline > 0.0, "baseline traffic must be positive");
    (1.0 - optimized / baseline) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_baseline_row_reproduced() {
        // Paper Table II: inputs (×10³) and baseline bitwidths give
        // #Input_bits = 2833×10³ total.
        let inputs = [154_600u64, 70_000, 43_200, 64_900, 64_900];
        let bits = [9u32, 7, 4, 5, 7];
        let per_layer = per_layer_input_bits(&inputs, &bits);
        assert_eq!(per_layer[0], 1_391_400.0);
        let total = total_input_bits(&inputs, &bits);
        assert!((total - 2_833_000.0).abs() < 1_500.0, "total {total}");
    }

    #[test]
    fn table2_optimized_row_reproduced() {
        // Opt_for_#Input row (6, 6, 5, 6, 7) totals 2407×10³ bits — a
        // 15 % saving, as the paper reports.
        let inputs = [154_600u64, 70_000, 43_200, 64_900, 64_900];
        let base = total_input_bits(&inputs, &[9, 7, 4, 5, 7]);
        let opt = total_input_bits(&inputs, &[6, 6, 5, 6, 7]);
        assert!((opt - 2_407_000.0).abs() < 1_500.0, "opt {opt}");
        let saving = saving_percent(base, opt);
        assert!((saving - 15.0).abs() < 0.5, "saving {saving}");
    }

    #[test]
    fn saving_can_be_negative() {
        assert!(saving_percent(100.0, 120.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_inputs() {
        total_input_bits(&[1, 2], &[3]);
    }
}
