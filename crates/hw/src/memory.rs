//! Memory-access energy: the other half of a system-level objective.
//!
//! The paper optimizes input *bandwidth* (bits moved) and MAC energy
//! separately and notes that "designers can formulate different
//! optimization criteria" (§VI-A). A natural combined criterion is total
//! system energy = MAC energy + memory-access energy; this module
//! supplies the memory half with the classic two-level model: a fraction
//! of input reads hit the on-chip SRAM buffer, the rest go to DRAM,
//! whose per-bit cost is orders of magnitude higher.

use crate::energy::MacEnergyModel;

/// Per-bit energy of the two memory levels (picojoules per bit).
///
/// Defaults follow the widely used Horowitz ISSCC'14 45 nm numbers:
/// DRAM ≈ 20 pJ/bit, large on-chip SRAM ≈ 0.08 pJ/bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEnergyModel {
    /// DRAM access cost (pJ per bit).
    pub dram_pj_per_bit: f64,
    /// On-chip SRAM access cost (pJ per bit).
    pub sram_pj_per_bit: f64,
}

impl Default for MemoryEnergyModel {
    fn default() -> Self {
        Self {
            dram_pj_per_bit: 20.0,
            sram_pj_per_bit: 0.08,
        }
    }
}

impl MemoryEnergyModel {
    /// Energy to read `bits` with the given SRAM hit rate (pJ).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ hit_rate ≤ 1`.
    pub fn read_energy(&self, bits: f64, sram_hit_rate: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&sram_hit_rate),
            "hit rate must be in [0, 1]"
        );
        bits * (sram_hit_rate * self.sram_pj_per_bit + (1.0 - sram_hit_rate) * self.dram_pj_per_bit)
    }
}

/// A system-level energy breakdown for one inference (picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Energy of all multiply–accumulates.
    pub mac_pj: f64,
    /// Energy of input-operand reads.
    pub memory_pj: f64,
}

impl CostBreakdown {
    /// Total energy.
    pub fn total_pj(&self) -> f64 {
        self.mac_pj + self.memory_pj
    }
}

/// Computes the combined MAC + memory energy of an allocation.
///
/// `input_counts`/`macs` are per-layer; `bits` is the allocation's
/// per-layer input bitwidths; `weight_bits` the uniform weight width.
///
/// # Panics
///
/// Panics on length mismatches (see the underlying models).
#[allow(clippy::too_many_arguments)]
pub fn system_energy(
    mac_model: &MacEnergyModel,
    mem_model: &MemoryEnergyModel,
    input_counts: &[u64],
    macs: &[u64],
    bits: &[u32],
    weight_bits: u32,
    sram_hit_rate: f64,
) -> CostBreakdown {
    let mac_pj = mac_model.network_energy(macs, bits, weight_bits);
    let traffic = crate::bandwidth::total_input_bits(input_counts, bits);
    let memory_pj = mem_model.read_energy(traffic, sram_hit_rate);
    CostBreakdown { mac_pj, memory_pj }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_at_low_hit_rate() {
        let m = MemoryEnergyModel::default();
        let cold = m.read_energy(1000.0, 0.0);
        let hot = m.read_energy(1000.0, 1.0);
        assert!(cold / hot > 100.0, "DRAM/SRAM ratio {}", cold / hot);
    }

    #[test]
    fn read_energy_linear_in_bits_and_hit_rate() {
        let m = MemoryEnergyModel::default();
        assert!((m.read_energy(2000.0, 0.5) - 2.0 * m.read_energy(1000.0, 0.5)).abs() < 1e-9);
        let half = m.read_energy(1000.0, 0.5);
        let expect = 0.5 * (m.read_energy(1000.0, 0.0) + m.read_energy(1000.0, 1.0));
        assert!((half - expect).abs() < 1e-9);
    }

    #[test]
    fn system_energy_sums_components() {
        let mac = MacEnergyModel::dwip_40nm();
        let mem = MemoryEnergyModel::default();
        let cb = system_energy(&mac, &mem, &[100, 50], &[1000, 500], &[8, 6], 8, 0.9);
        assert!(cb.mac_pj > 0.0);
        assert!(cb.memory_pj > 0.0);
        assert!((cb.total_pj() - cb.mac_pj - cb.memory_pj).abs() < 1e-9);
    }

    #[test]
    fn fewer_bits_save_both_components() {
        let mac = MacEnergyModel::dwip_40nm();
        let mem = MemoryEnergyModel::default();
        let wide = system_energy(&mac, &mem, &[100], &[1000], &[16], 8, 0.5);
        let narrow = system_energy(&mac, &mem, &[100], &[1000], &[8], 8, 0.5);
        assert!(narrow.mac_pj < wide.mac_pj);
        assert!(narrow.memory_pj < wide.memory_pj);
    }

    #[test]
    #[should_panic(expected = "hit rate")]
    fn rejects_bad_hit_rate() {
        MemoryEnergyModel::default().read_energy(1.0, 1.5);
    }
}
