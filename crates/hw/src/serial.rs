//! Bit-serial accelerator performance models (Stripes / Loom).

/// Which operands the accelerator processes bit-serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialMode {
    /// Stripes (MICRO 2016): activations serial, weights parallel.
    /// Execution time per layer scales with the activation bitwidth.
    ActivationSerial,
    /// Loom (DAC 2018): both activations and weights serial; time scales
    /// with the product of the two bitwidths.
    FullySerial,
}

/// A bit-serial DNN accelerator whose throughput scales with operand
/// bitwidth, relative to a fixed-width baseline datapath.
///
/// The paper (§VI): "their performance scales almost linearly with the
/// saving in effective_bitwidth" — this model realizes exactly that
/// proportionality.
///
/// # Example
///
/// ```
/// use mupod_hw::BitSerialModel;
/// let stripes = BitSerialModel::stripes();
/// // Halving the effective bitwidth doubles throughput.
/// let s8 = stripes.speedup(&[8, 8], &[1.0, 1.0], 8);
/// let s4 = stripes.speedup(&[4, 4], &[1.0, 1.0], 8);
/// assert!((s4 / s8 - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitSerialModel {
    /// Serial dimension(s).
    pub mode: SerialMode,
    /// Baseline datapath width the speedup is measured against.
    pub baseline_bits: u32,
}

impl BitSerialModel {
    /// The Stripes configuration (activation-serial, 16-bit baseline).
    pub fn stripes() -> Self {
        Self {
            mode: SerialMode::ActivationSerial,
            baseline_bits: 16,
        }
    }

    /// The Loom configuration (fully serial, 16-bit baseline).
    pub fn loom() -> Self {
        Self {
            mode: SerialMode::FullySerial,
            baseline_bits: 16,
        }
    }

    /// Relative execution cycles of one layer (1.0 = baseline datapath).
    pub fn layer_cycle_fraction(&self, input_bits: u32, weight_bits: u32) -> f64 {
        let b = self.baseline_bits as f64;
        match self.mode {
            SerialMode::ActivationSerial => input_bits.max(1) as f64 / b,
            SerialMode::FullySerial => {
                (input_bits.max(1) as f64 * weight_bits.max(1) as f64) / (b * b)
            }
        }
    }

    /// Total relative cycles across layers, weighted by per-layer work
    /// (MAC counts).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or total work is zero.
    pub fn network_cycle_fraction(
        &self,
        input_bits: &[u32],
        work: &[f64],
        weight_bits: u32,
    ) -> f64 {
        assert_eq!(input_bits.len(), work.len(), "bits/work length mismatch");
        let total: f64 = work.iter().sum();
        assert!(total > 0.0, "work must be positive");
        input_bits
            .iter()
            .zip(work)
            .map(|(&b, &w)| w * self.layer_cycle_fraction(b, weight_bits))
            .sum::<f64>()
            / total
    }

    /// End-to-end speedup over the baseline datapath.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or total work is zero.
    pub fn speedup(&self, input_bits: &[u32], work: &[f64], weight_bits: u32) -> f64 {
        1.0 / self.network_cycle_fraction(input_bits, work, weight_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_speedup_linear_in_activation_bits() {
        let m = BitSerialModel::stripes();
        // Uniform 8-bit activations on a 16-bit baseline: 2x.
        let s = m.speedup(&[8, 8, 8], &[1.0, 2.0, 3.0], 16);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stripes_ignores_weight_bits() {
        let m = BitSerialModel::stripes();
        assert_eq!(m.layer_cycle_fraction(8, 4), m.layer_cycle_fraction(8, 16));
    }

    #[test]
    fn loom_scales_with_both_operands() {
        let m = BitSerialModel::loom();
        // 8-bit x 8-bit on 16x16 baseline: 4x speedup.
        let s = m.speedup(&[8], &[1.0], 8);
        assert!((s - 4.0).abs() < 1e-12);
        assert!(m.layer_cycle_fraction(8, 4) < m.layer_cycle_fraction(8, 8));
    }

    #[test]
    fn work_weighting_dominated_by_heavy_layers() {
        let m = BitSerialModel::stripes();
        // Heavy layer at 4 bits, light layer at 16: speedup near 4x.
        let s = m.speedup(&[4, 16], &[99.0, 1.0], 16);
        assert!(s > 3.5 && s < 4.0, "speedup {s}");
    }

    #[test]
    fn zero_bits_clamped() {
        let m = BitSerialModel::stripes();
        assert!(m.layer_cycle_fraction(0, 8) > 0.0);
    }
}
