//! Parametric MAC energy model (DesignWare-at-40 nm substitute).

use mupod_nn::inventory::LayerInventory;
use mupod_quant::BitwidthAllocation;

/// Energy model of one multiply–accumulate as a function of the two
/// operand bitwidths:
///
/// `E(b_in, b_w) = e_fixed + e_mult · b_in · b_w + e_add · (b_in + b_w)`
///
/// * `e_mult · b_in·b_w` — the array multiplier's partial products;
/// * `e_add · (b_in+b_w)` — accumulator and operand registers;
/// * `e_fixed` — clocking/control overhead per operation.
///
/// Units are picojoules. See the crate docs for the calibration
/// rationale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacEnergyModel {
    /// Fixed per-operation overhead (pJ).
    pub e_fixed: f64,
    /// Coefficient of the `b_in · b_w` multiplier term (pJ per bit²).
    pub e_mult: f64,
    /// Coefficient of the `b_in + b_w` register/adder term (pJ per bit).
    pub e_add: f64,
}

impl MacEnergyModel {
    /// Default calibration standing in for the paper's Synopsys
    /// DesignWare MAC at TSMC 40 nm LP, 0.9 V, 500 MHz.
    ///
    /// Solves to ≈ 0.20 pJ for an 8×8 MAC and ≈ 0.66 pJ for 16×16.
    pub fn dwip_40nm() -> Self {
        Self {
            e_fixed: 0.02,
            e_mult: 0.0022,
            e_add: 0.0024,
        }
    }

    /// Energy of one MAC with the given operand widths (pJ).
    ///
    /// Zero-width operands still pay the fixed overhead — a layer never
    /// becomes free.
    pub fn energy_per_mac(&self, input_bits: u32, weight_bits: u32) -> f64 {
        self.e_fixed
            + self.e_mult * input_bits as f64 * weight_bits as f64
            + self.e_add * (input_bits + weight_bits) as f64
    }

    /// Energy of all MACs in one layer (pJ).
    pub fn layer_energy(&self, macs: u64, input_bits: u32, weight_bits: u32) -> f64 {
        macs as f64 * self.energy_per_mac(input_bits, weight_bits)
    }

    /// Total MAC energy of one inference given per-layer input bitwidths
    /// and a uniform weight bitwidth (pJ) — the paper's *Ener Save*
    /// denominator.
    ///
    /// # Panics
    ///
    /// Panics if `macs` and `input_bits` lengths differ.
    pub fn network_energy(&self, macs: &[u64], input_bits: &[u32], weight_bits: u32) -> f64 {
        assert_eq!(macs.len(), input_bits.len(), "macs/bits length mismatch");
        macs.iter()
            .zip(input_bits)
            .map(|(&m, &b)| self.layer_energy(m, b, weight_bits))
            .sum()
    }

    /// Total MAC energy of one inference for an allocation measured on a
    /// network inventory (pJ).
    ///
    /// # Panics
    ///
    /// Panics if the allocation and inventory disagree on layer count.
    pub fn allocation_energy(
        &self,
        inventory: &LayerInventory,
        allocation: &BitwidthAllocation,
        weight_bits: u32,
    ) -> f64 {
        assert_eq!(
            inventory.len(),
            allocation.len(),
            "inventory/allocation layer count mismatch"
        );
        let macs: Vec<u64> = inventory.layers().iter().map(|l| l.macs).collect();
        self.network_energy(&macs, &allocation.bits(), weight_bits)
    }

    /// Percentage saving of `optimized` relative to `baseline`
    /// (positive = optimized is cheaper).
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not positive.
    pub fn saving_percent(baseline: f64, optimized: f64) -> f64 {
        assert!(baseline > 0.0, "baseline energy must be positive");
        (1.0 - optimized / baseline) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_anchors() {
        let m = MacEnergyModel::dwip_40nm();
        let e8 = m.energy_per_mac(8, 8);
        let e16 = m.energy_per_mac(16, 16);
        assert!((e8 - 0.20).abs() < 0.03, "8x8 = {e8}");
        assert!((e16 - 0.66).abs() < 0.05, "16x16 = {e16}");
    }

    #[test]
    fn energy_monotone_in_both_operands() {
        let m = MacEnergyModel::dwip_40nm();
        for b in 1..16 {
            assert!(m.energy_per_mac(b + 1, 8) > m.energy_per_mac(b, 8));
            assert!(m.energy_per_mac(8, b + 1) > m.energy_per_mac(8, b));
        }
    }

    #[test]
    fn zero_width_still_costs_overhead() {
        let m = MacEnergyModel::dwip_40nm();
        assert!(m.energy_per_mac(0, 0) > 0.0);
    }

    #[test]
    fn network_energy_sums_layers() {
        let m = MacEnergyModel::dwip_40nm();
        let total = m.network_energy(&[100, 200], &[8, 4], 10);
        let by_hand = m.layer_energy(100, 8, 10) + m.layer_energy(200, 4, 10);
        assert!((total - by_hand).abs() < 1e-9);
    }

    #[test]
    fn saving_percent_signs() {
        assert!((MacEnergyModel::saving_percent(100.0, 80.0) - 20.0).abs() < 1e-12);
        // A regression (more energy) shows as negative saving, like the
        // SqueezeNet -2.7 % cell in Table III.
        assert!(MacEnergyModel::saving_percent(100.0, 110.0) < 0.0);
    }

    #[test]
    fn lowering_input_bits_saves_energy() {
        let m = MacEnergyModel::dwip_40nm();
        let base = m.network_energy(&[1000, 1000], &[16, 16], 10);
        let opt = m.network_energy(&[1000, 1000], &[7, 5], 10);
        let saving = MacEnergyModel::saving_percent(base, opt);
        assert!(saving > 30.0, "saving = {saving}");
    }
}
