//! Hardware cost models: MAC energy, bandwidth and bit-serial
//! accelerators.
//!
//! The paper's evaluation (Table III) reports three hardware-facing
//! quantities derived from per-layer bitwidths:
//!
//! * **Bandwidth saving** — computed directly from the input-weighted
//!   effective bitwidth ([`bandwidth`]).
//! * **MAC energy saving** — the paper synthesizes a Synopsys DesignWare
//!   MAC at TSMC 40 nm LP (0.9 V, 500 MHz) and sums per-MAC energy over
//!   a full inference. We cannot run that flow, so [`MacEnergyModel`] is
//!   a parametric substitute whose shape (energy ≈ bilinear in the two
//!   operand widths, plus a width-linear adder/register term and a fixed
//!   overhead) follows published CMOS multiplier characterizations; the
//!   default coefficients are calibrated so an 8×8 MAC costs ≈ 0.2 pJ
//!   and a 16×16 MAC ≈ 0.65 pJ, Horowitz-style 45 nm numbers. Relative
//!   savings — the quantity the paper actually reports — are insensitive
//!   to the absolute scale (see `DESIGN.md`, substitution table).
//! * **Bit-serial performance** — Stripes processes activations
//!   bit-serially, so throughput scales with `16 / effective_bits`;
//!   Loom is serial in both operands ([`BitSerialModel`]).
//!
//! # Example
//!
//! ```
//! use mupod_hw::MacEnergyModel;
//! let model = MacEnergyModel::dwip_40nm();
//! let e8 = model.energy_per_mac(8, 8);
//! let e16 = model.energy_per_mac(16, 16);
//! assert!(e16 > 2.0 * e8); // energy grows super-linearly in width
//! ```

pub mod bandwidth;
pub mod latency;
pub mod memory;

mod energy;
mod serial;

pub use energy::MacEnergyModel;
pub use serial::BitSerialModel;
