//! The stage supervisor: deadlines, bounded retry, degradation.
//!
//! Each pipeline stage (profile → σ-search → allocate → evaluate) runs
//! under [`Supervisor::run_stage`]:
//!
//! * a **watchdog thread** arms a deadline; if the stage overruns, the
//!   watchdog cancels the shared [`CancelToken`] with
//!   [`CancelReason::Timeout`] and the stage drains at its next
//!   checkpoint — nothing is killed mid-write;
//! * failures classified [`ErrorClass::Transient`] are retried with
//!   exponential backoff and deterministic jitter, up to the policy's
//!   attempt budget;
//! * [`Supervisor::run_stage_with_fallback`] adds the degradation
//!   ladder: when the primary path exhausts its retries, a flagged
//!   conservative fallback runs instead, and the outcome carries
//!   `degraded = true` so reports can surface it.
//!
//! Timeouts are deliberately **not** retried: a deadline overrun means
//! the workload is mis-sized for the budget, and rerunning it would
//! double the damage. The token stays cancelled, so every later stage
//! drains immediately and the process exits with intact artifacts.

use crate::cancel::{CancelReason, CancelToken};
use crate::retry::{ErrorClass, RetryPolicy};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Deadline and retry budget for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StagePolicy {
    /// Watchdog deadline; `None` means unbounded.
    pub timeout: Option<Duration>,
    /// Retry budget for transient failures.
    pub retry: RetryPolicy,
}

impl StagePolicy {
    /// Unbounded, no-retry policy (supervision as pure bookkeeping).
    pub fn unsupervised() -> Self {
        Self {
            timeout: None,
            retry: RetryPolicy::no_retry(),
        }
    }
}

/// How a supervised stage failed.
#[derive(Debug)]
pub enum StageError<E> {
    /// Every attempt failed; `error` is the last failure.
    Failed {
        /// Stage name.
        stage: String,
        /// Attempts consumed (≥ 1).
        attempts: u32,
        /// The final error.
        error: E,
    },
    /// The watchdog deadline fired and the stage drained.
    TimedOut {
        /// Stage name.
        stage: String,
        /// The deadline that was exceeded.
        timeout: Duration,
    },
    /// The run was cancelled (SIGINT, or a deadline in an earlier
    /// stage) before or while this stage ran.
    Cancelled {
        /// Stage name.
        stage: String,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for StageError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Failed {
                stage,
                attempts,
                error,
            } => write!(
                f,
                "stage `{stage}` failed after {attempts} attempt(s): {error}"
            ),
            StageError::TimedOut { stage, timeout } => write!(
                f,
                "stage `{stage}` exceeded its {:.1}s deadline and was drained",
                timeout.as_secs_f64()
            ),
            StageError::Cancelled { stage } => {
                write!(f, "stage `{stage}` cancelled before completion")
            }
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for StageError<E> {}

/// A successful stage result plus supervision metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOutcome<T> {
    /// The stage's value.
    pub value: T,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the value came from the degraded fallback path.
    pub degraded: bool,
}

/// Watchdog state shared between the armed thread and its guard.
struct WatchdogShared {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Disarms (and joins) the watchdog thread on drop, so a stage that
/// finishes in time never observes a spurious deadline.
struct WatchdogGuard {
    shared: Arc<WatchdogShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Recovers the guard from a poisoned watchdog mutex: the protected
/// state is a lone boolean, always valid, so the poison flag carries no
/// information worth dying for.
fn lock_unpoisoned(m: &Mutex<bool>) -> std::sync::MutexGuard<'_, bool> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WatchdogGuard {
    fn arm(token: &CancelToken, stage: &str, deadline: Duration) -> Self {
        let shared = Arc::new(WatchdogShared {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let token = token.clone();
        let stage_name = stage.to_string();
        let spawned = std::thread::Builder::new()
            .name(format!("mupod-watchdog-{stage_name}"))
            .spawn(move || {
                let mut done = lock_unpoisoned(&thread_shared.done);
                let mut remaining = deadline;
                loop {
                    if *done {
                        return;
                    }
                    let start = std::time::Instant::now();
                    let (guard, timeout) = thread_shared
                        .cv
                        .wait_timeout(done, remaining)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    done = guard;
                    if *done {
                        return;
                    }
                    if timeout.timed_out() {
                        break;
                    }
                    // Spurious wakeup: keep waiting out the remainder.
                    remaining = remaining.saturating_sub(start.elapsed());
                }
                drop(done);
                mupod_obs::counter_add("runtime.stage_timeouts", 1);
                mupod_obs::event(
                    mupod_obs::Level::Warn,
                    "runtime.timeout",
                    &[
                        ("stage", &stage_name),
                        ("deadline_ms", &deadline.as_millis().to_string()),
                        ("action", "draining to a graceful stop"),
                    ],
                );
                token.cancel(CancelReason::Timeout);
            });
        // A failed spawn (thread exhaustion) must not kill the pipeline:
        // the stage simply runs without deadline enforcement, loudly.
        let handle = match spawned {
            Ok(h) => Some(h),
            Err(e) => {
                mupod_obs::event(
                    mupod_obs::Level::Warn,
                    "runtime.watchdog_unarmed",
                    &[
                        ("stage", stage),
                        ("error", &e.to_string()),
                        ("action", "stage deadline not enforced"),
                    ],
                );
                None
            }
        };
        Self { shared, handle }
    }
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        *lock_unpoisoned(&self.shared.done) = true;
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs pipeline stages under a shared cancellation token.
#[derive(Debug, Clone, Default)]
pub struct Supervisor {
    token: CancelToken,
}

impl Supervisor {
    /// Creates a supervisor around an existing token (e.g. one already
    /// wired to SIGINT).
    pub fn new(token: CancelToken) -> Self {
        Self { token }
    }

    /// The shared token, for wiring into cooperating stages.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Runs one supervised stage.
    ///
    /// `attempt` is invoked with the shared token (poll it at safe
    /// points); `classify` decides which of its errors are worth
    /// retrying. Timeouts and cancellations are never retried.
    ///
    /// # Errors
    ///
    /// [`StageError::Cancelled`] / [`StageError::TimedOut`] when the
    /// token fired (before or during the stage), [`StageError::Failed`]
    /// when the attempt budget is exhausted or a permanent error occurs.
    pub fn run_stage<T, E>(
        &self,
        stage: &str,
        policy: StagePolicy,
        classify: impl Fn(&E) -> ErrorClass,
        mut attempt: impl FnMut(&CancelToken) -> Result<T, E>,
    ) -> Result<StageOutcome<T>, StageError<E>>
    where
        E: std::fmt::Display,
    {
        let _span = mupod_obs::span_fields("runtime.stage", &[("stage", stage)]);
        let max_attempts = policy.retry.max_attempts.max(1);
        let mut attempts = 0u32;
        loop {
            if let Err(c) = self.token.checkpoint() {
                return Err(self.cancellation_error(stage, c.reason, policy));
            }
            attempts += 1;
            let _watchdog = policy
                .timeout
                .map(|d| WatchdogGuard::arm(&self.token, stage, d));
            let result = attempt(&self.token);
            drop(_watchdog);
            match result {
                Ok(value) => {
                    return Ok(StageOutcome {
                        value,
                        attempts,
                        degraded: false,
                    })
                }
                Err(error) => {
                    // A failure after the token fired is the drain
                    // completing, not a stage bug: report the
                    // cancellation, whatever error the drain surfaced.
                    if let Some(reason) = self.token.reason() {
                        return Err(self.cancellation_error(stage, reason, policy));
                    }
                    let out_of_budget = attempts >= max_attempts;
                    if out_of_budget || classify(&error) == ErrorClass::Permanent {
                        return Err(StageError::Failed {
                            stage: stage.to_string(),
                            attempts,
                            error,
                        });
                    }
                    let delay = policy.retry.delay_for(attempts);
                    mupod_obs::counter_add("runtime.retries", 1);
                    mupod_obs::event(
                        mupod_obs::Level::Warn,
                        "runtime.retry",
                        &[
                            ("stage", stage),
                            ("attempt", &attempts.to_string()),
                            ("delay_ms", &delay.as_millis().to_string()),
                            ("error", &error.to_string()),
                        ],
                    );
                    if self.token.sleep_cancellable(delay).is_err() {
                        let reason = self.token.reason().unwrap_or(CancelReason::Interrupt);
                        return Err(self.cancellation_error(stage, reason, policy));
                    }
                }
            }
        }
    }

    /// [`Supervisor::run_stage`] plus the degradation ladder: when the
    /// primary path fails permanently (or exhausts retries), `fallback`
    /// runs once under the same supervision, and a success is flagged
    /// `degraded`. Cancellations and timeouts are not degradable — they
    /// propagate unchanged.
    ///
    /// # Errors
    ///
    /// As [`Supervisor::run_stage`]; a failed fallback reports the
    /// fallback's error.
    pub fn run_stage_with_fallback<T, E>(
        &self,
        stage: &str,
        policy: StagePolicy,
        classify: impl Fn(&E) -> ErrorClass,
        attempt: impl FnMut(&CancelToken) -> Result<T, E>,
        fallback: impl FnOnce(&CancelToken) -> Result<T, E>,
    ) -> Result<StageOutcome<T>, StageError<E>>
    where
        E: std::fmt::Display,
    {
        match self.run_stage(stage, policy, &classify, attempt) {
            Ok(outcome) => Ok(outcome),
            Err(StageError::Failed {
                attempts, error, ..
            }) => {
                mupod_obs::counter_add("runtime.degraded_fallbacks", 1);
                mupod_obs::event(
                    mupod_obs::Level::Warn,
                    "runtime.degraded",
                    &[
                        ("stage", stage),
                        ("after_attempts", &attempts.to_string()),
                        ("error", &error.to_string()),
                        ("action", "conservative fallback path"),
                    ],
                );
                let fb_stage = format!("{stage}.fallback");
                let fb_policy = StagePolicy {
                    retry: RetryPolicy::no_retry(),
                    ..policy
                };
                let mut fallback = Some(fallback);
                self.run_stage(&fb_stage, fb_policy, &classify, move |token| {
                    // lint:allow(no-panic-path) reason=no_retry policy guarantees a single attempt, so take() can never observe None
                    (fallback.take().expect("fallback runs once"))(token)
                })
                .map(|o| StageOutcome {
                    attempts: attempts + o.attempts,
                    degraded: true,
                    value: o.value,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn cancellation_error<E>(
        &self,
        stage: &str,
        reason: CancelReason,
        policy: StagePolicy,
    ) -> StageError<E> {
        mupod_obs::counter_add("runtime.cancelled_stages", 1);
        match reason {
            CancelReason::Timeout => StageError::TimedOut {
                stage: stage.to_string(),
                timeout: policy.timeout.unwrap_or_default(),
            },
            CancelReason::Interrupt => StageError::Cancelled {
                stage: stage.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_transient(_: &String) -> ErrorClass {
        ErrorClass::Transient
    }

    fn quick_retry(n: u32) -> StagePolicy {
        StagePolicy {
            timeout: None,
            retry: RetryPolicy {
                max_attempts: n,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                jitter_seed: 1,
            },
        }
    }

    #[test]
    fn first_try_success_is_not_degraded() {
        let sup = Supervisor::default();
        let out = sup
            .run_stage("s", quick_retry(3), any_transient, |_| Ok::<_, String>(42))
            .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.attempts, 1);
        assert!(!out.degraded);
    }

    #[test]
    fn transient_failures_retry_until_budget() {
        let sup = Supervisor::default();
        let mut calls = 0;
        let out = sup
            .run_stage("s", quick_retry(3), any_transient, |_| {
                calls += 1;
                if calls < 3 {
                    Err("flaky".to_string())
                } else {
                    Ok(7)
                }
            })
            .unwrap();
        assert_eq!(out.value, 7);
        assert_eq!(out.attempts, 3);

        let mut calls = 0;
        let err = sup
            .run_stage("s", quick_retry(2), any_transient, |_| {
                calls += 1;
                Err::<(), _>("always".to_string())
            })
            .unwrap_err();
        match err {
            StageError::Failed { attempts, .. } => assert_eq!(attempts, 2),
            e => panic!("unexpected {e}"),
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn permanent_failures_do_not_retry() {
        let sup = Supervisor::default();
        let mut calls = 0;
        let err = sup
            .run_stage(
                "s",
                quick_retry(5),
                |_: &String| ErrorClass::Permanent,
                |_| {
                    calls += 1;
                    Err::<(), _>("deterministic".to_string())
                },
            )
            .unwrap_err();
        assert!(matches!(err, StageError::Failed { attempts: 1, .. }));
        assert_eq!(calls, 1);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "asserts wall-clock bounds; flaky under interpretation slowdown"
    )]
    fn watchdog_deadline_drains_cooperative_stage() {
        let sup = Supervisor::default();
        let start = std::time::Instant::now();
        let err = sup
            .run_stage(
                "slow",
                StagePolicy {
                    timeout: Some(Duration::from_millis(40)),
                    retry: RetryPolicy::no_retry(),
                },
                any_transient,
                |token| {
                    // A cooperative stage: works in slices, polls the token.
                    for _ in 0..1000 {
                        if token.is_cancelled() {
                            return Err("drained".to_string());
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Ok(())
                },
            )
            .unwrap_err();
        assert!(matches!(err, StageError::TimedOut { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "drain took too long"
        );
        // The token stays cancelled: later stages refuse to start.
        let err = sup
            .run_stage("next", StagePolicy::unsupervised(), any_transient, |_| {
                Ok::<_, String>(())
            })
            .unwrap_err();
        assert!(matches!(err, StageError::TimedOut { .. }));
    }

    #[test]
    fn fast_stage_never_sees_the_watchdog() {
        let sup = Supervisor::default();
        let out = sup
            .run_stage(
                "fast",
                StagePolicy {
                    timeout: Some(Duration::from_secs(30)),
                    retry: RetryPolicy::no_retry(),
                },
                any_transient,
                |_| Ok::<_, String>(1),
            )
            .unwrap();
        assert_eq!(out.value, 1);
        assert!(!sup.token().is_cancelled());
    }

    #[test]
    fn user_cancel_reports_cancelled() {
        let sup = Supervisor::default();
        sup.token().cancel(CancelReason::Interrupt);
        let err = sup
            .run_stage("s", StagePolicy::unsupervised(), any_transient, |_| {
                Ok::<_, String>(())
            })
            .unwrap_err();
        assert!(matches!(err, StageError::Cancelled { .. }));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "asserts wall-clock bounds; flaky under interpretation slowdown"
    )]
    fn cancel_during_backoff_wins_over_retry() {
        let sup = Supervisor::default();
        let token = sup.token().clone();
        let policy = StagePolicy {
            timeout: None,
            retry: RetryPolicy {
                max_attempts: 10,
                base_delay: Duration::from_secs(30),
                max_delay: Duration::from_secs(30),
                jitter_seed: 3,
            },
        };
        let start = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel(CancelReason::Interrupt);
        });
        let err = sup
            .run_stage("s", policy, any_transient, |_| {
                Err::<(), _>("flaky".to_string())
            })
            .unwrap_err();
        h.join().unwrap();
        assert!(matches!(err, StageError::Cancelled { .. }), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "slept full backoff"
        );
    }

    #[test]
    fn fallback_is_flagged_degraded() {
        let sup = Supervisor::default();
        let out = sup
            .run_stage_with_fallback(
                "s",
                quick_retry(2),
                any_transient,
                |_| Err::<i32, _>("primary broken".to_string()),
                |_| Ok(99),
            )
            .unwrap();
        assert_eq!(out.value, 99);
        assert!(out.degraded);
        assert_eq!(out.attempts, 3); // 2 primary + 1 fallback

        // A failing fallback surfaces its own error.
        let err = sup
            .run_stage_with_fallback(
                "s",
                quick_retry(1),
                any_transient,
                |_| Err::<i32, _>("primary".to_string()),
                |_| Err("fallback too".to_string()),
            )
            .unwrap_err();
        match err {
            StageError::Failed { error, stage, .. } => {
                assert_eq!(error, "fallback too");
                assert_eq!(stage, "s.fallback");
            }
            e => panic!("unexpected {e}"),
        }
    }

    #[test]
    fn cancellation_is_not_degradable() {
        let sup = Supervisor::default();
        sup.token().cancel(CancelReason::Interrupt);
        let err = sup
            .run_stage_with_fallback(
                "s",
                quick_retry(2),
                any_transient,
                |_| Ok::<i32, String>(1),
                |_| Ok(2),
            )
            .unwrap_err();
        assert!(matches!(err, StageError::Cancelled { .. }));
    }
}
