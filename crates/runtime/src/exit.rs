//! The one status-code table shared by the CLI and the serving stack.
//!
//! Before this module existed the exit codes lived as scattered integer
//! literals in `mupod`'s `main.rs`, and the inference server would have
//! grown a second, disjoint set of wire codes. [`StatusCode`] is the
//! single source of truth for both:
//!
//! | code | variant | used as | meaning |
//! |-----:|---------|---------|---------|
//! | 0    | [`StatusCode::Ok`]               | exit + wire | success; for `mupod serve`, a clean SIGINT drain |
//! | 1    | [`StatusCode::RunError`]         | exit | unsupervised runtime failure (bad file, bind failure, …) |
//! | 2    | [`StatusCode::UsageError`]       | exit | malformed command line |
//! | 3    | [`StatusCode::StageFailed`]      | exit | a supervised stage exhausted its retry budget; for `serve`, the worker restart budget |
//! | 4    | [`StatusCode::StageTimeout`]     | exit | a stage overran its `--stage-timeout` watchdog |
//! | 10   | [`StatusCode::ServerBusy`]       | wire | admission control: bounded queue full, request fast-rejected |
//! | 11   | [`StatusCode::DeadlineExceeded`] | wire | per-request deadline expired before or during service |
//! | 12   | [`StatusCode::BadRequest`]       | wire | malformed / truncated / oversized request frame |
//! | 13   | [`StatusCode::Draining`]         | wire | server is draining; queued request returned unexecuted |
//! | 14   | [`StatusCode::WorkerCrashed`]    | wire | the worker serving this batch panicked; it was restarted |
//! | 15   | [`StatusCode::NoHealthyShard`]   | wire | the router found no routable shard (all breakers open / draining) |
//! | 16   | [`StatusCode::Rerouted`]         | wire | bookkeeping: a request was retried on another shard (flight events, never terminal) |
//! | 130  | [`StatusCode::Interrupted`]      | exit | SIGINT before a clean drain (or forced second Ctrl-C) |
//!
//! "exit" codes are process exit statuses (`main.rs`); "wire" codes are
//! the status byte of a `mupod-serve` response frame. The ranges are
//! disjoint on purpose (10–16 never appear as exit statuses, 130 never
//! on the wire) so a number in a log is unambiguous.

/// One entry of the shared exit-/wire-status table (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum StatusCode {
    /// Success. For `mupod serve`: SIGINT arrived, in-flight requests
    /// finished, queued ones were returned [`StatusCode::Draining`],
    /// metrics were flushed atomically.
    Ok = 0,
    /// Unsupervised runtime failure (I/O, parse, bind, …).
    RunError = 1,
    /// Malformed command line.
    UsageError = 2,
    /// A supervised stage failed after its full attempt budget; for the
    /// server, the worker restart budget was exhausted.
    StageFailed = 3,
    /// A supervised stage overran its watchdog deadline and drained.
    StageTimeout = 4,
    /// Wire: bounded request queue is full; the request was rejected at
    /// admission without buffering (never queued).
    ServerBusy = 10,
    /// Wire: the request's deadline expired before a worker produced a
    /// response; expired requests are never executed.
    DeadlineExceeded = 11,
    /// Wire: the request frame was malformed, truncated, or oversized.
    BadRequest = 12,
    /// Wire: the server is draining; this request was dequeued without
    /// being executed.
    Draining = 13,
    /// Wire: the worker serving this request's batch panicked. The
    /// worker was restarted; retrying the request is safe.
    WorkerCrashed = 14,
    /// Wire: the routing front had no shard to forward to — every
    /// backend was draining, reloading, or behind an open circuit
    /// breaker. Retrying after a backoff is safe.
    NoHealthyShard = 15,
    /// Wire: bookkeeping status stamped on router flight events when a
    /// request is retried on another shard. Never a terminal response —
    /// the client sees the rerouted attempt's real outcome.
    Rerouted = 16,
    /// SIGINT ended the run before a clean drain completed (pipelines
    /// always exit 130 on SIGINT; `serve` only on a forced second
    /// Ctrl-C).
    Interrupted = 130,
}

/// Every [`StatusCode`] in ascending code order.
pub const ALL_STATUS_CODES: &[StatusCode] = &[
    StatusCode::Ok,
    StatusCode::RunError,
    StatusCode::UsageError,
    StatusCode::StageFailed,
    StatusCode::StageTimeout,
    StatusCode::ServerBusy,
    StatusCode::DeadlineExceeded,
    StatusCode::BadRequest,
    StatusCode::Draining,
    StatusCode::WorkerCrashed,
    StatusCode::NoHealthyShard,
    StatusCode::Rerouted,
    StatusCode::Interrupted,
];

impl StatusCode {
    /// The code as a process exit status.
    pub fn exit_code(self) -> i32 {
        i32::from(self as u8)
    }

    /// The code as a response-frame status byte.
    pub fn wire(self) -> u8 {
        self as u8
    }

    /// Looks a wire status byte back up in the table.
    pub fn from_wire(byte: u8) -> Option<StatusCode> {
        ALL_STATUS_CODES.iter().copied().find(|s| s.wire() == byte)
    }

    /// Short human-readable meaning, for diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            StatusCode::Ok => "ok",
            StatusCode::RunError => "run error",
            StatusCode::UsageError => "usage error",
            StatusCode::StageFailed => "stage failed after retries",
            StatusCode::StageTimeout => "stage deadline exceeded",
            StatusCode::ServerBusy => "server busy: request queue full",
            StatusCode::DeadlineExceeded => "request deadline exceeded",
            StatusCode::BadRequest => "malformed request frame",
            StatusCode::Draining => "server draining",
            StatusCode::WorkerCrashed => "worker panicked serving this batch",
            StatusCode::NoHealthyShard => "no healthy shard to route to",
            StatusCode::Rerouted => "request rerouted to another shard",
            StatusCode::Interrupted => "interrupted before a clean drain",
        }
    }
}

impl std::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", *self as u8, self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let codes: Vec<u8> = ALL_STATUS_CODES.iter().map(|s| s.wire()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3, 4, 10, 11, 12, 13, 14, 15, 16, 130]);
        for &s in ALL_STATUS_CODES {
            assert_eq!(StatusCode::from_wire(s.wire()), Some(s));
            assert_eq!(s.exit_code(), i32::from(s.wire()));
        }
    }

    #[test]
    fn unknown_wire_bytes_are_rejected() {
        for byte in [5u8, 9, 17, 42, 129, 131, 255] {
            assert_eq!(StatusCode::from_wire(byte), None, "{byte}");
        }
    }

    #[test]
    fn display_carries_code_and_meaning() {
        let s = StatusCode::ServerBusy.to_string();
        assert!(s.contains("10") && s.contains("busy"), "{s}");
    }
}
