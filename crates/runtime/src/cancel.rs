//! Cooperative cancellation: a shared token that long-running stages
//! poll at safe points.
//!
//! Cancellation is *cooperative* by design: nothing is ever torn down
//! mid-write. A SIGINT or a watchdog deadline merely flips the token;
//! each stage notices at its next [`CancelToken::checkpoint`] and
//! drains — finishing (or abandoning) the current unit of work, leaving
//! every artifact either untouched or complete. The supervisor then
//! flushes journals, metrics and traces before the process exits.

// Every unsafe operation in this module (the signal(2) FFI below) must
// be individually justified, even inside unsafe fns.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

/// Why a run was cancelled. The first cancellation wins; later calls
/// with a different reason are ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The user asked the process to stop (SIGINT / Ctrl-C).
    Interrupt,
    /// A stage overran its watchdog deadline.
    Timeout,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Interrupt => write!(f, "interrupted"),
            CancelReason::Timeout => write!(f, "stage deadline exceeded"),
        }
    }
}

/// The typed error a cancelled checkpoint returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// What triggered the cancellation.
    pub reason: CancelReason,
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cancelled: {}", self.reason)
    }
}

impl std::error::Error for Cancelled {}

const STATE_LIVE: u8 = 0;
const STATE_INTERRUPT: u8 = 1;
const STATE_TIMEOUT: u8 = 2;

/// A cloneable cancellation flag shared between the supervisor, its
/// watchdogs, the SIGINT handler and every cooperating stage.
///
/// Clones share state: cancelling any clone cancels them all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// Creates a live (not cancelled) token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. The first reason to arrive is kept.
    pub fn cancel(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Interrupt => STATE_INTERRUPT,
            CancelReason::Timeout => STATE_TIMEOUT,
        };
        if self
            .state
            .compare_exchange(STATE_LIVE, code, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            mupod_obs::counter_add("runtime.cancellations", 1);
        }
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::SeqCst) != STATE_LIVE
    }

    /// The cancellation reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::SeqCst) {
            STATE_INTERRUPT => Some(CancelReason::Interrupt),
            STATE_TIMEOUT => Some(CancelReason::Timeout),
            _ => None,
        }
    }

    /// The polling point stages call between units of work.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] once cancellation has been requested.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        match self.reason() {
            None => Ok(()),
            Some(reason) => Err(Cancelled { reason }),
        }
    }

    /// Sleeps up to `total`, waking early (returning `Err`) if the token
    /// is cancelled meanwhile. Polls in small slices so Ctrl-C during a
    /// retry backoff stays responsive.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] if cancellation arrives during the sleep.
    pub fn sleep_cancellable(&self, total: std::time::Duration) -> Result<(), Cancelled> {
        let slice = std::time::Duration::from_millis(10);
        let deadline = std::time::Instant::now() + total;
        loop {
            self.checkpoint()?;
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(());
            }
            std::thread::sleep(slice.min(deadline - now));
        }
    }
}

// ---------------------------------------------------------------------
// SIGINT wiring
// ---------------------------------------------------------------------

/// Set by the signal handler; drained by the watcher thread. A signal
/// handler may only touch async-signal-safe state, hence the indirection
/// through a plain atomic rather than cancelling the token directly.
static SIGINT_PENDING: AtomicBool = AtomicBool::new(false);
static SIGINT_SEEN_ONCE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;
    pub type Handler = extern "C" fn(c_int);

    extern "C" {
        pub fn signal(signum: c_int, handler: Handler) -> usize;
        pub fn _exit(status: c_int) -> !;
    }
}

#[cfg(unix)]
extern "C" fn sigint_handler(_sig: std::os::raw::c_int) {
    // Second Ctrl-C: the drain is taking too long for the user's taste —
    // exit immediately with the conventional 128 + SIGINT status.
    if SIGINT_SEEN_ONCE.swap(true, Ordering::SeqCst) {
        // SAFETY: `_exit(2)` is on POSIX's async-signal-safe list and
        // takes no pointers; it never returns, so no Rust state is
        // observed afterwards. Nothing in this handler allocates or
        // locks before reaching it.
        unsafe { sys::_exit(130) };
    }
    SIGINT_PENDING.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT handler that cancels `token` with
/// [`CancelReason::Interrupt`].
///
/// The handler itself only sets an atomic flag (the async-signal-safe
/// subset); a detached watcher thread polls the flag every few
/// milliseconds and performs the actual cancellation. A **second**
/// SIGINT bypasses the graceful drain and exits with status 130
/// immediately.
///
/// On non-unix platforms this is a no-op.
pub fn install_sigint(token: &CancelToken) {
    #[cfg(unix)]
    {
        let token = token.clone();
        // SAFETY: `sigint_handler` is `extern "C"`, never unwinds, and
        // touches only lock-free atomics (the async-signal-safe subset).
        // `signal(2)` itself only installs the pointer; the previous
        // handler is the process default, safe to discard.
        unsafe {
            sys::signal(sys::SIGINT, sigint_handler);
        }
        let spawned = std::thread::Builder::new()
            .name("mupod-sigint-watcher".into())
            .spawn(move || loop {
                if SIGINT_PENDING.load(Ordering::SeqCst) {
                    token.cancel(CancelReason::Interrupt);
                    mupod_obs::event(
                        mupod_obs::Level::Warn,
                        "runtime.interrupt",
                        &[("action", "draining to a graceful stop")],
                    );
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        // Without the watcher a first Ctrl-C cannot drain gracefully
        // (the second still hard-exits via the handler); degrade loudly
        // rather than panic during startup.
        if let Err(e) = spawned {
            mupod_obs::event(
                mupod_obs::Level::Warn,
                "runtime.sigint_watcher_failed",
                &[
                    ("error", &e.to_string()),
                    ("action", "graceful Ctrl-C drain disabled"),
                ],
            );
        }
    }
    #[cfg(not(unix))]
    {
        let _ = token;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_live_and_latches_first_reason() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert!(t.checkpoint().is_ok());

        t.cancel(CancelReason::Timeout);
        t.cancel(CancelReason::Interrupt); // loses the race, ignored
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Timeout));
        assert_eq!(
            t.checkpoint().unwrap_err(),
            Cancelled {
                reason: CancelReason::Timeout
            }
        );
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel(CancelReason::Interrupt);
        assert!(a.is_cancelled());
        assert_eq!(a.reason(), Some(CancelReason::Interrupt));
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "asserts wall-clock bounds; flaky under interpretation slowdown"
    )]
    fn cancellable_sleep_wakes_early() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let start = std::time::Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            t2.cancel(CancelReason::Interrupt);
        });
        let err = t
            .sleep_cancellable(std::time::Duration::from_secs(30))
            .unwrap_err();
        assert_eq!(err.reason, CancelReason::Interrupt);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        h.join().unwrap();
    }

    #[test]
    fn completed_sleep_returns_ok() {
        let t = CancelToken::new();
        t.sleep_cancellable(std::time::Duration::from_millis(1))
            .unwrap();
    }
}
