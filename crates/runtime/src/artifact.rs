//! Crash-safe, checksummed artifact persistence.
//!
//! Every final on-disk artifact (allocation CSV, profile CSV,
//! metrics/trace JSON, experiment reports) goes through two layers of
//! protection:
//!
//! * **Atomic replacement** ([`write_atomic`]): content is written to a
//!   temporary file in the destination directory, fsynced, then
//!   `rename(2)`d over the target, and the directory is fsynced. A
//!   crash at any point leaves either the complete old artifact or the
//!   complete new one — never a truncated hybrid. Stray temp files from
//!   a killed run are ignored by every reader and overwritten by the
//!   next run.
//! * **Checksum footer** ([`seal`]/[`unseal`]): the last line of the
//!   file is `#mupod-artifact v1 fnv1a64=<16 hex> len=<bytes>`, covering
//!   everything before it. [`read_verified`] validates the footer and
//!   returns the payload; truncation, bit flips, appended garbage and
//!   foreign files each produce a distinct typed [`ArtifactError`] —
//!   never a panic, never silently-wrong data.
//!
//! The footer starts with `#`, so CSV consumers that skip comment lines
//! read sealed files unchanged. For strict-JSON consumers
//! (`chrome://tracing`, `python3 -m json.tool`) strip it first:
//! `grep -v '^#mupod-artifact' trace.json`.
//!
//! The profiling *journal* is the one artifact not sealed with a
//! footer: it is append-only (a whole-file checksum would be
//! invalidated by every append), and instead carries a checksum per
//! record (see `mupod-core`). Its full rewrites do use
//! [`write_atomic_unsealed`].

use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors from artifact persistence and validation.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file has no integrity footer: it was truncated past the
    /// footer, or predates (or never came from) the sealed-artifact
    /// writer.
    MissingFooter(PathBuf),
    /// The footer line exists but cannot be parsed; payload is a
    /// description.
    BadFooter(String),
    /// The footer's recorded payload length disagrees with the file.
    LengthMismatch {
        /// Length recorded in the footer.
        stored: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// The payload does not hash to the footer's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        stored: u64,
        /// Checksum of the bytes on disk.
        computed: u64,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::MissingFooter(p) => write!(
                f,
                "{}: no integrity footer (truncated, foreign, or written \
                 by a pre-footer version; regenerate the artifact)",
                p.display()
            ),
            ArtifactError::BadFooter(d) => write!(f, "malformed artifact footer: {d}"),
            ArtifactError::LengthMismatch { stored, actual } => write!(
                f,
                "artifact length mismatch: footer says {stored} payload \
                 bytes, file has {actual} (truncated or spliced)"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch (stored {stored:016x}, \
                 computed {computed:016x}): content corrupted"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl ArtifactError {
    /// Lowers into an [`std::io::Error`] for callers whose error types
    /// only carry I/O failures. Validation failures map to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn into_io(self) -> std::io::Error {
        match self {
            ArtifactError::Io(e) => e,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// First bytes of the integrity footer line.
pub const FOOTER_PREFIX: &str = "#mupod-artifact v1 ";

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty to catch
/// truncation and bit flips. Shared with the journal's per-record
/// checksums in `mupod-core`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends the integrity footer to `content`, returning the sealed
/// bytes. A separating newline is inserted when the content does not
/// end with one (the footer's `len` field records the exact payload
/// length either way).
pub fn seal(content: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(content.len() + 64);
    out.extend_from_slice(content);
    if !content.is_empty() && !content.ends_with(b"\n") {
        out.push(b'\n');
    }
    out.extend_from_slice(
        format!(
            "{FOOTER_PREFIX}fnv1a64={:016x} len={}\n",
            fnv1a64(content),
            content.len()
        )
        .as_bytes(),
    );
    out
}

/// Validates sealed bytes and returns the payload (footer stripped).
///
/// # Errors
///
/// [`ArtifactError::MissingFooter`] when no footer line is present
/// (reported against an empty path — prefer [`read_verified`] for a
/// path-qualified message), [`ArtifactError::BadFooter`] /
/// [`ArtifactError::LengthMismatch`] / [`ArtifactError::ChecksumMismatch`]
/// for the corruption cases.
pub fn unseal(bytes: &[u8]) -> Result<&[u8], ArtifactError> {
    // The footer is the last newline-terminated line.
    let end = match bytes.last() {
        Some(b'\n') => bytes.len() - 1,
        _ => return Err(ArtifactError::MissingFooter(PathBuf::new())),
    };
    let footer_start = bytes[..end]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let footer = &bytes[footer_start..end];
    let footer =
        std::str::from_utf8(footer).map_err(|_| ArtifactError::MissingFooter(PathBuf::new()))?;
    let Some(fields) = footer.strip_prefix(FOOTER_PREFIX) else {
        return Err(ArtifactError::MissingFooter(PathBuf::new()));
    };
    let mut stored_sum = None;
    let mut stored_len = None;
    for field in fields.split_whitespace() {
        if let Some(v) = field.strip_prefix("fnv1a64=") {
            stored_sum = Some(
                u64::from_str_radix(v, 16)
                    .map_err(|_| ArtifactError::BadFooter(format!("bad checksum `{v}`")))?,
            );
        } else if let Some(v) = field.strip_prefix("len=") {
            stored_len = Some(
                v.parse::<usize>()
                    .map_err(|_| ArtifactError::BadFooter(format!("bad length `{v}`")))?,
            );
        }
    }
    let stored_sum =
        stored_sum.ok_or_else(|| ArtifactError::BadFooter("missing fnv1a64 field".into()))?;
    let stored_len =
        stored_len.ok_or_else(|| ArtifactError::BadFooter("missing len field".into()))?;
    // The payload is everything before the footer, minus the separator
    // newline `seal` may have added. `len` is authoritative.
    let before_footer = &bytes[..footer_start];
    let payload = match stored_len {
        n if n == before_footer.len() => before_footer,
        n if n + 1 == before_footer.len() && before_footer.ends_with(b"\n") => &before_footer[..n],
        _ => {
            return Err(ArtifactError::LengthMismatch {
                stored: stored_len,
                actual: before_footer.len(),
            })
        }
    };
    let computed = fnv1a64(payload);
    if computed != stored_sum {
        return Err(ArtifactError::ChecksumMismatch {
            stored: stored_sum,
            computed,
        });
    }
    Ok(payload)
}

/// Temp-file name used by the atomic writers: unique per process so two
/// concurrent runs cannot clobber each other's staging file.
fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map_or_else(|| "artifact".into(), |n| n.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.tmp.{}", std::process::id()))
}

/// Kill-switch for crash-window tests: when this environment variable is
/// set, the atomic writers abort the process *after* staging the temp
/// file but *before* the rename — the exact window a crash-safety test
/// needs to probe.
pub const TEST_DIE_BEFORE_RENAME_ENV: &str = "MUPOD_TEST_DIE_BEFORE_RENAME";

fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> Result<(), ArtifactError> {
    let tmp = temp_path(path);
    let result = (|| -> Result<(), ArtifactError> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        if std::env::var_os(TEST_DIE_BEFORE_RENAME_ENV).is_some() {
            // See TEST_DIE_BEFORE_RENAME_ENV: simulate dying in the
            // crash window. abort() skips destructors and exit handlers,
            // like a real kill.
            std::process::abort();
        }
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory.
        // Failure here is ignorable on filesystems that refuse to open
        // directories; the data file itself is already synced.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    } else {
        mupod_obs::counter_add("artifact.writes", 1);
        mupod_obs::counter_add("artifact.bytes_written", bytes.len() as u64);
    }
    result
}

/// Atomically replaces `path` with `content` sealed under an integrity
/// footer. See the module docs for the crash-safety contract.
///
/// # Errors
///
/// [`ArtifactError::Io`] on any filesystem failure; the staging temp
/// file is removed and the previous artifact (if any) is untouched.
pub fn write_atomic(path: &Path, content: &[u8]) -> Result<(), ArtifactError> {
    write_atomic_bytes(path, &seal(content))
}

/// Atomically replaces `path` with `content` as-is (no footer). For
/// artifacts with their own integrity scheme, like the per-record
/// checksummed profiling journal.
///
/// # Errors
///
/// As [`write_atomic`].
pub fn write_atomic_unsealed(path: &Path, content: &[u8]) -> Result<(), ArtifactError> {
    write_atomic_bytes(path, content)
}

/// Reads `path` and validates its integrity footer, returning the
/// payload with the footer stripped.
///
/// # Errors
///
/// [`ArtifactError::Io`] if the file cannot be read, otherwise the
/// typed corruption errors of [`unseal`] (with [`ArtifactError::
/// MissingFooter`] carrying the offending path).
pub fn read_verified(path: &Path) -> Result<Vec<u8>, ArtifactError> {
    let bytes = std::fs::read(path)?;
    match unseal(&bytes) {
        Ok(payload) => Ok(payload.to_vec()),
        Err(ArtifactError::MissingFooter(_)) => {
            mupod_obs::counter_add("artifact.verify_failures", 1);
            Err(ArtifactError::MissingFooter(path.to_path_buf()))
        }
        Err(e) => {
            mupod_obs::counter_add("artifact.verify_failures", 1);
            Err(e)
        }
    }
}

/// Validates `path`'s integrity footer without returning the payload.
///
/// # Errors
///
/// As [`read_verified`].
pub fn verify_file(path: &Path) -> Result<(), ArtifactError> {
    read_verified(path).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        for content in [
            &b""[..],
            b"a,b,c\n1,2,3\n",
            b"{\"k\": 1}",               // no trailing newline
            b"line with no newline end", // separator path
        ] {
            let sealed = seal(content);
            assert_eq!(unseal(&sealed).unwrap(), content, "{content:?}");
        }
    }

    #[test]
    fn unseal_rejects_bitflip() {
        let mut sealed = seal(b"payload,1,2\nmore,3,4\n");
        sealed[3] ^= 0x40;
        assert!(matches!(
            unseal(&sealed).unwrap_err(),
            ArtifactError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn unseal_rejects_truncation() {
        let sealed = seal(b"0123456789\n0123456789\n");
        // Chop mid-payload: the footer is gone entirely.
        assert!(matches!(
            unseal(&sealed[..8]).unwrap_err(),
            ArtifactError::MissingFooter(_)
        ));
        // Chop payload bytes but keep the footer: length mismatch.
        let mut spliced = sealed.clone();
        spliced.drain(2..6);
        assert!(matches!(
            unseal(&spliced).unwrap_err(),
            ArtifactError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn unseal_rejects_garbage_and_missing_footer() {
        assert!(matches!(
            unseal(b"complete garbage\n").unwrap_err(),
            ArtifactError::MissingFooter(_)
        ));
        assert!(matches!(
            unseal(b"").unwrap_err(),
            ArtifactError::MissingFooter(_)
        ));
        assert!(matches!(
            unseal(&[0xFF, 0xFE, 0x00, b'\n']).unwrap_err(),
            ArtifactError::MissingFooter(_)
        ));
        // A well-prefixed but mangled footer is BadFooter, not a panic.
        let text = format!("data\n{FOOTER_PREFIX}fnv1a64=zzzz len=5\n");
        assert!(matches!(
            unseal(text.as_bytes()).unwrap_err(),
            ArtifactError::BadFooter(_)
        ));
        let text = format!("data\n{FOOTER_PREFIX}nonsense\n");
        assert!(matches!(
            unseal(text.as_bytes()).unwrap_err(),
            ArtifactError::BadFooter(_)
        ));
    }

    #[test]
    fn write_read_roundtrip_and_no_temp_left() {
        let dir = std::env::temp_dir().join("mupod_artifact_rw_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("alloc.csv");
        write_atomic(&path, b"layer,bits\nconv1,9\n").unwrap();
        assert_eq!(read_verified(&path).unwrap(), b"layer,bits\nconv1,9\n");
        verify_file(&path).unwrap();
        // Overwrite is atomic too.
        write_atomic(&path, b"layer,bits\nconv1,7\n").unwrap();
        assert_eq!(read_verified(&path).unwrap(), b"layer,bits\nconv1,7\n");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp.")
            })
            .collect();
        assert!(stray.is_empty(), "staging file left behind: {stray:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_verified_names_the_path_on_missing_footer() {
        let dir = std::env::temp_dir().join("mupod_artifact_legacy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.csv");
        std::fs::write(&path, "old,format\n1,2\n").unwrap();
        match read_verified(&path).unwrap_err() {
            ArtifactError::MissingFooter(p) => assert_eq!(p, path),
            e => panic!("unexpected {e}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_payload_may_contain_hash_lines() {
        // Only the *last* line is treated as the footer; a payload line
        // that merely starts with '#' survives the roundtrip.
        let content = b"# a comment\ndata,1\n";
        assert_eq!(unseal(&seal(content)).unwrap(), content);
    }
}
