//! Run supervision and durable artifacts for long MUPOD pipelines.
//!
//! The profiling sweeps behind Table III run for minutes to hours per
//! network; an unattended multi-network run must survive hangs, flaky
//! I/O, Ctrl-C and outright crashes without producing a truncated
//! deliverable. This crate provides the two halves of that contract,
//! dependency-free (only `mupod-obs` for counters/events):
//!
//! * **Supervision** ([`Supervisor`]): wraps each pipeline stage with a
//!   watchdog-thread deadline, bounded retry with exponential backoff
//!   and deterministic jitter ([`RetryPolicy`]), and a cooperative
//!   [`CancelToken`] that SIGINT ([`install_sigint`]) or a deadline
//!   flips — stages drain at their next checkpoint, artifacts are
//!   flushed, and the process exits with a distinct status code.
//! * **Durable artifacts** ([`artifact`]): atomic temp-file + fsync +
//!   rename replacement with a checksum footer on every final artifact,
//!   validated on load with typed errors ([`ArtifactError`]) — a
//!   corrupted file is always a clean diagnostic, never a panic or a
//!   silently-wrong allocation.
//!
//! See `DESIGN.md` §9 for the full failure model.

pub mod artifact;
mod cancel;
mod exit;
mod retry;
mod supervisor;

pub use artifact::{read_verified, seal, unseal, verify_file, write_atomic, ArtifactError};
pub use cancel::{install_sigint, CancelReason, CancelToken, Cancelled};
pub use exit::{StatusCode, ALL_STATUS_CODES};
pub use retry::{ErrorClass, RetryPolicy};
pub use supervisor::{StageError, StageOutcome, StagePolicy, Supervisor};
