//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! The supervisor retries only failures classified as *transient*
//! (I/O hiccups, resource exhaustion that may clear); deterministic
//! failures (degenerate fits, validation misses, parse errors) are
//! permanent — retrying them would burn the budget reproducing the same
//! result. Jitter is derived from a seed rather than the clock so that a
//! given `(seed, attempt)` always produces the same delay: retry
//! schedules are replayable, and tests can assert them exactly.

use std::time::Duration;

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// May succeed on a later attempt (I/O, contention).
    Transient,
    /// Deterministic; retrying reproduces the same failure.
    Permanent,
}

/// Retry budget and backoff shape for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry). Zero is treated as one.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent attempt.
    pub base_delay: Duration,
    /// Cap applied after the exponential growth.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(5),
            jitter_seed: 0x5EED,
        }
    }
}

/// SplitMix64 — the jitter stream's mixing function. Tiny, well
/// distributed, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A policy with `max_attempts` total attempts and default backoff.
    pub fn attempts(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            ..Self::default()
        }
    }

    /// The backoff before retry number `retry` (1-based: the delay
    /// between attempt `retry` failing and attempt `retry + 1` starting).
    ///
    /// Full-jitter exponential backoff: `base · 2^(retry-1)` capped at
    /// `max_delay`, then scaled by a deterministic factor in
    /// `[0.5, 1.0)` drawn from `jitter_seed ⊕ retry`. Deterministic so
    /// schedules replay bit-identically for a fixed seed.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(32);
        let raw = self
            .base_delay
            .saturating_mul(1u32 << exp.min(31))
            .min(self.max_delay);
        let r = splitmix64(self.jitter_seed ^ u64::from(retry));
        // Map the top 53 bits to [0.5, 1.0).
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(0.5 + unit / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            jitter_seed: 7,
        };
        // Jitter keeps each delay within [raw/2, raw).
        let raw = [100u64, 200, 400, 450, 450];
        for (i, &r) in raw.iter().enumerate() {
            let d = p.delay_for(i as u32 + 1).as_millis() as u64;
            assert!(d >= r / 2 && d < r, "retry {}: {d}ms vs raw {r}ms", i + 1);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = RetryPolicy {
            jitter_seed: 1,
            ..Default::default()
        };
        let b = RetryPolicy {
            jitter_seed: 1,
            ..Default::default()
        };
        let c = RetryPolicy {
            jitter_seed: 2,
            ..Default::default()
        };
        for retry in 1..6 {
            assert_eq!(a.delay_for(retry), b.delay_for(retry));
        }
        // Different seeds must differ somewhere in the schedule.
        assert!((1..6).any(|r| a.delay_for(r) != c.delay_for(r)));
    }

    #[test]
    fn huge_retry_counts_do_not_overflow() {
        let p = RetryPolicy::default();
        assert!(p.delay_for(u32::MAX) <= p.max_delay);
    }

    /// The splitmix64 jitter stream is part of the replay contract: the
    /// serving stack's supervised worker restarts schedule their backoff
    /// from it, and the chaos tests replay those schedules exactly. The
    /// golden nanosecond values below pin the sequence — integer mixing
    /// and the one f64 scale are both IEEE-exact, so any platform (or
    /// any accidental reseeding/reordering) that diverges fails here.
    #[test]
    fn jitter_sequence_matches_golden_values() {
        let golden: [(u64, [u64; 5]); 2] = [
            (
                0x5EED, // the default seed
                [
                    43_578_936,
                    61_480_453,
                    184_710_762,
                    375_404_130,
                    607_776_492,
                ],
            ),
            (
                0xC0FFEE,
                [
                    45_506_703,
                    95_160_759,
                    112_260_858,
                    241_318_182,
                    618_866_348,
                ],
            ),
        ];
        for (seed, delays_ns) in golden {
            let p = RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            };
            for (i, &want_ns) in delays_ns.iter().enumerate() {
                let retry = i as u32 + 1;
                assert_eq!(
                    p.delay_for(retry),
                    Duration::from_nanos(want_ns),
                    "seed {seed:#x} retry {retry} drifted from the golden schedule"
                );
            }
        }
    }

    /// `delay_for` must be a pure function of `(policy, retry)`: calling
    /// it out of order, repeatedly, or from several policies sharing a
    /// seed never perturbs the stream (no hidden state).
    #[test]
    fn jitter_stream_is_stateless() {
        let p = RetryPolicy::default();
        let forward: Vec<Duration> = (1..=6).map(|r| p.delay_for(r)).collect();
        let backward: Vec<Duration> = (1..=6).rev().map(|r| p.delay_for(r)).collect();
        let twice: Vec<Duration> = (1..=6).map(|r| p.delay_for(r)).collect();
        assert_eq!(forward, twice);
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "evaluation order must not matter"
        );
    }
}
