//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in an offline container, so the real `proptest`
//! cannot be fetched from a registry. This crate implements exactly the
//! API subset the workspace's property tests use — `proptest!`,
//! `ProptestConfig::with_cases`, range and collection strategies,
//! `prop_assert*!` — on top of a self-contained xoshiro256++ generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message; it is not minimized.
//! * **Deterministic seeding.** Each test's input stream is a pure
//!   function of the test name and case index, so failures reproduce
//!   exactly across runs and machines.
//! * **Tiny strategy algebra.** Ranges, tuples, `collection::vec`,
//!   `sample::select`, and `any::<bool>()` only.

use std::ops::{Range, RangeInclusive};

/// Deterministic random generator backing every strategy.
///
/// xoshiro256++ seeded through SplitMix64; small, fast, and good enough
/// for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Modulo bias is negligible for the
    /// small bounds test strategies use.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }
}

pub mod test_runner {
    //! Test-case orchestration: configuration, runner, failure type.

    use super::TestRng;

    /// Subset of proptest's `Config` that the workspace touches.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; tests here are heavier per
            // case, so keep the uncustomized default moderate.
            Self { cases: 32 }
        }
    }

    /// A property-test outcome raised by `prop_assert*!` / `prop_assume!`.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property does not hold: the test fails.
        Fail(String),
        /// The generated inputs don't satisfy a precondition: the case is
        /// skipped without failing the test.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }

        /// Builds a rejection (skipped case) from a message.
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(m) => f.write_str(m),
                Self::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Drives the per-test case loop; seeded from the test name so every
    /// run of every build generates identical inputs.
    #[derive(Debug)]
    pub struct Runner {
        cases: u32,
        seed: u64,
    }

    impl Runner {
        /// Creates a runner for the named test.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across compilers and runs.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                cases: config.cases,
                seed,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The input generator for one case.
        pub fn rng(&self, case: u32) -> TestRng {
            TestRng::new(self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its primitive implementations.

    use super::{Range, RangeInclusive, TestRng};

    /// A recipe for generating one random test input.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::{Range, RangeInclusive, TestRng};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Chooses uniformly among `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u128) as usize;
            self.items[i].clone()
        }
    }
}

/// The `prop::` module path used inside `proptest!` bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg [$crate::test_runner::ProptestConfig::default()]
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::Runner::new($cfg, stringify!($name));
            for __case in 0..runner.cases() {
                let mut __rng = runner.rng(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match __result {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err(e) => panic!(
                        "property `{}` failed at case {}: {}",
                        stringify!($name),
                        __case,
                        e
                    ),
                }
            }
        }
        $crate::__proptest_items! { @cfg [$cfg] $($rest)* }
    };
    (@cfg [$cfg:expr]) => {};
}

/// Skips the current case when a generated-input precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let n = (3usize..=3).generate(&mut rng);
            assert_eq!(n, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, config, and assertions together.
        #[test]
        fn macro_end_to_end(
            x in 1u64..100,
            v in prop::collection::vec(0.0f64..1.0, 2usize..8),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 8, "len {}", v.len());
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
            let _ = flag;
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
