//! CSV persistence for [`BitwidthAllocation`]s.
//!
//! An allocation is the framework's deliverable — the per-layer formats
//! a hardware team consumes. Persisting it decouples the optimization
//! run from downstream use (RTL parameterization, accelerator
//! configuration, documentation).

use crate::{BitwidthAllocation, FixedPointFormat, LayerFormat};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from allocation persistence.
#[derive(Debug)]
pub enum AllocationIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed CSV; payload is line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for AllocationIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationIoError::Io(e) => write!(f, "allocation io error: {e}"),
            AllocationIoError::Parse(line, msg) => {
                write!(f, "allocation parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for AllocationIoError {}

impl From<std::io::Error> for AllocationIoError {
    fn from(e: std::io::Error) -> Self {
        AllocationIoError::Io(e)
    }
}

const HEADER: &str = "layer,int_bits,frac_bits,total_bits,delta,max_abs";

impl BitwidthAllocation {
    /// Writes the allocation as CSV (header + one row per layer).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_csv<W: Write>(&self, mut w: W) -> Result<(), AllocationIoError> {
        writeln!(w, "{HEADER}")?;
        for lf in self.layers() {
            writeln!(
                w,
                "{},{},{},{},{},{}",
                lf.layer,
                lf.format.int_bits(),
                lf.format.frac_bits(),
                lf.bits(),
                lf.delta,
                lf.max_abs
            )?;
        }
        Ok(())
    }

    /// Reads an allocation previously written by
    /// [`BitwidthAllocation::save_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`AllocationIoError::Parse`] on malformed rows and
    /// [`AllocationIoError::Io`] on reader failures.
    pub fn load_csv<R: Read>(r: R) -> Result<BitwidthAllocation, AllocationIoError> {
        let reader = BufReader::new(r);
        let mut lines = reader.lines().enumerate();
        match lines.next() {
            Some((_, Ok(h))) if h.trim() == HEADER => {}
            Some((_, Ok(h))) => {
                return Err(AllocationIoError::Parse(1, format!("bad header `{h}`")))
            }
            Some((_, Err(e))) => return Err(e.into()),
            None => return Err(AllocationIoError::Parse(1, "empty file".into())),
        }
        let mut layers = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, line) in lines {
            let line = line?;
            // `#` lines: comments and the sealed-artifact integrity
            // footer appended by `mupod_runtime::artifact::write_atomic`.
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 6 {
                return Err(AllocationIoError::Parse(
                    i + 1,
                    format!("expected 6 fields, got {}", fields.len()),
                ));
            }
            let int_bits: i32 = fields[1].parse().map_err(|_| {
                AllocationIoError::Parse(i + 1, format!("bad int_bits `{}`", fields[1]))
            })?;
            let frac_bits: i32 = fields[2].parse().map_err(|_| {
                AllocationIoError::Parse(i + 1, format!("bad frac_bits `{}`", fields[2]))
            })?;
            let total_bits: i32 = fields[3].parse().map_err(|_| {
                AllocationIoError::Parse(i + 1, format!("bad total_bits `{}`", fields[3]))
            })?;
            let delta: f64 = fields[4].parse().map_err(|_| {
                AllocationIoError::Parse(i + 1, format!("bad delta `{}`", fields[4]))
            })?;
            let max_abs: f64 = fields[5].parse().map_err(|_| {
                AllocationIoError::Parse(i + 1, format!("bad max_abs `{}`", fields[5]))
            })?;
            // Semantic validation: a hand-edited or spliced file whose
            // redundant column disagrees, or which names a layer twice,
            // would otherwise silently configure wrong hardware widths.
            let format = FixedPointFormat::new(int_bits, frac_bits);
            if total_bits < 0 || total_bits as u32 != format.total_bits() {
                return Err(AllocationIoError::Parse(
                    i + 1,
                    format!(
                        "total_bits {total_bits} inconsistent with int_bits \
                         {int_bits} + frac_bits {frac_bits} (= {})",
                        format.total_bits()
                    ),
                ));
            }
            if !seen.insert(fields[0].to_string()) {
                return Err(AllocationIoError::Parse(
                    i + 1,
                    format!("duplicate layer `{}`", fields[0]),
                ));
            }
            layers.push(LayerFormat {
                layer: fields[0].to_string(),
                format,
                delta,
                max_abs,
            });
        }
        Ok(BitwidthAllocation::new(layers))
    }

    /// Renders the allocation as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| layer | format | bits | Δ | max|x| |\n");
        out.push_str("|---|---|---|---|---|\n");
        for lf in self.layers() {
            out.push_str(&format!(
                "| {} | {} | {} | {:.5} | {:.1} |\n",
                lf.layer,
                lf.format,
                lf.bits(),
                lf.delta,
                lf.max_abs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitwidthAllocation {
        BitwidthAllocation::new(vec![
            LayerFormat::from_delta("conv1", 0.01, 161.0),
            LayerFormat::from_delta("conv2", 0.5, 139.0),
        ])
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample();
        let mut buf = Vec::new();
        a.save_csv(&mut buf).unwrap();
        let b = BitwidthAllocation::load_csv(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_header_and_rows() {
        assert!(matches!(
            BitwidthAllocation::load_csv("nope".as_bytes()).unwrap_err(),
            AllocationIoError::Parse(1, _)
        ));
        let text = format!("{HEADER}\nconv1,9\n");
        assert!(matches!(
            BitwidthAllocation::load_csv(text.as_bytes()).unwrap_err(),
            AllocationIoError::Parse(2, _)
        ));
        let text = format!("{HEADER}\nconv1,nine,3,12,0.1,100\n");
        assert!(matches!(
            BitwidthAllocation::load_csv(text.as_bytes()).unwrap_err(),
            AllocationIoError::Parse(2, _)
        ));
    }

    #[test]
    fn rejects_duplicate_layer_rows() {
        let text = format!("{HEADER}\nconv1,9,3,12,0.1,100\nconv1,9,3,12,0.1,100\n");
        let err = BitwidthAllocation::load_csv(text.as_bytes()).unwrap_err();
        match err {
            AllocationIoError::Parse(3, msg) => assert!(msg.contains("duplicate layer")),
            other => panic!("expected Parse(3, duplicate), got {other:?}"),
        }
    }

    #[test]
    fn rejects_inconsistent_total_bits() {
        let text = format!("{HEADER}\nconv1,9,3,13,0.1,100\n");
        let err = BitwidthAllocation::load_csv(text.as_bytes()).unwrap_err();
        match err {
            AllocationIoError::Parse(2, msg) => assert!(msg.contains("inconsistent")),
            other => panic!("expected Parse(2, total_bits), got {other:?}"),
        }
        // Negative frac_bits (Δ > 1 formats) clamp the word length at 0;
        // the stored column must match the clamped value.
        let text = format!("{HEADER}\nconv1,1,-3,0,2.0,0.5\n");
        assert!(BitwidthAllocation::load_csv(text.as_bytes()).is_ok());
    }

    #[test]
    fn skips_comment_and_footer_lines() {
        let a = sample();
        let mut buf = Vec::new();
        a.save_csv(&mut buf).unwrap();
        let sealed = mupod_runtime::seal(&buf);
        let b = BitwidthAllocation::load_csv(sealed.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn markdown_contains_every_layer() {
        let md = sample().to_markdown();
        assert!(md.contains("conv1"));
        assert!(md.contains("conv2"));
        assert_eq!(md.lines().count(), 4);
    }
}
