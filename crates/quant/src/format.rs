//! The `I.F` fixed-point format.

use mupod_tensor::Tensor;

/// A signed fixed-point format with `int_bits` integer bits and
/// `frac_bits` fraction bits (paper §II-A).
///
/// Both fields may be negative: `frac_bits < 0` drops useless low-order
/// integer bits when the tolerable rounding error exceeds 1 (realized in
/// hardware with an implicit shift), while `int_bits < 1` describes
/// purely fractional data whose magnitude never reaches 0.5. The word
/// length charged to hardware is [`FixedPointFormat::total_bits`] =
/// `max(int_bits + frac_bits, 0)`.
///
/// # Example
///
/// ```
/// use mupod_quant::FixedPointFormat;
/// // Tolerate an absolute error of 0.1 on values up to 6.0 in magnitude.
/// let fmt = FixedPointFormat::for_range_and_delta(6.0, 0.1);
/// assert_eq!(fmt.int_bits(), 4); // ⌈log2 6⌉ + 1
/// assert!(fmt.delta() <= 0.1);
/// let q = fmt.quantize(1.234);
/// assert!((q - 1.234).abs() <= fmt.delta());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPointFormat {
    int_bits: i32,
    frac_bits: i32,
}

impl FixedPointFormat {
    /// Creates a format from explicit integer and fraction bit counts.
    pub fn new(int_bits: i32, frac_bits: i32) -> Self {
        Self {
            int_bits,
            frac_bits,
        }
    }

    /// Number of fraction bits needed so the worst-case rounding error
    /// `2^{-(F+1)}` does not exceed `delta`.
    ///
    /// This is the paper's `F = ⌈−log2(2Δ)⌉` rule. The result may be
    /// negative (Δ > 1).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not a positive finite number.
    pub fn frac_bits_for_delta(delta: f64) -> i32 {
        assert!(
            delta.is_finite() && delta > 0.0,
            "delta must be positive and finite, got {delta}"
        );
        (-(2.0 * delta).log2()).ceil() as i32
    }

    /// Number of signed integer bits needed to represent magnitudes up to
    /// `max_abs` without overflow: `I = ⌈log2 max|x|⌉ + 1` (§II-A).
    ///
    /// Returns 1 (just a sign bit) when `max_abs` is zero. Exact powers
    /// of two get one extra bit so the value itself remains representable.
    ///
    /// # Panics
    ///
    /// Panics if `max_abs` is negative or non-finite.
    pub fn int_bits_for_max_abs(max_abs: f64) -> i32 {
        assert!(
            max_abs.is_finite() && max_abs >= 0.0,
            "max_abs must be non-negative and finite, got {max_abs}"
        );
        // lint:allow(no-float-eq) reason=exact zero means an all-zero tensor, which gets the 1-bit degenerate format; near-zero values need real magnitude bits
        if max_abs == 0.0 {
            return 1;
        }
        let log = max_abs.log2();
        let ceil = log.ceil();
        // A power of two needs ⌈log2⌉ + 1 magnitude bits (e.g. 8 -> 4).
        let magnitude_bits = if (ceil - log).abs() < 1e-12 {
            ceil as i32 + 1
        } else {
            ceil as i32
        };
        magnitude_bits + 1
    }

    /// Builds the smallest format covering magnitude `max_abs` with
    /// worst-case rounding error at most `delta`.
    ///
    /// # Panics
    ///
    /// Panics on invalid `max_abs` or `delta` (see the constructors it
    /// delegates to).
    pub fn for_range_and_delta(max_abs: f64, delta: f64) -> Self {
        Self::new(
            Self::int_bits_for_max_abs(max_abs),
            Self::frac_bits_for_delta(delta),
        )
    }

    /// Integer bit count `I`.
    pub fn int_bits(&self) -> i32 {
        self.int_bits
    }

    /// Fraction bit count `F` (may be negative).
    pub fn frac_bits(&self) -> i32 {
        self.frac_bits
    }

    /// Hardware word length `max(I + F, 0)`.
    pub fn total_bits(&self) -> u32 {
        (self.int_bits + self.frac_bits).max(0) as u32
    }

    /// Grid step `2^{-F}`.
    pub fn step(&self) -> f64 {
        (-self.frac_bits as f64).exp2()
    }

    /// Worst-case rounding error `Δ = 2^{-(F+1)}` = half the grid step.
    pub fn delta(&self) -> f64 {
        0.5 * self.step()
    }

    /// Largest representable magnitude, `2^{I−1}` (saturation bound).
    pub fn max_magnitude(&self) -> f64 {
        ((self.int_bits - 1) as f64).exp2()
    }

    /// Rounds `x` to the nearest grid point, saturating at the format's
    /// range.
    ///
    /// Exact zeros stay exactly zero for every format — the property the
    /// paper leans on when arguing ReLU scales error standard deviation
    /// (§III-C).
    pub fn quantize(&self, x: f64) -> f64 {
        let step = self.step();
        let (lo, hi) = self.grid_index_range();
        (x / step).round().clamp(lo, hi) * step
    }

    /// Smallest and largest representable grid indices (`value = k·step`).
    ///
    /// Saturation clamps the *index*, not the value, so saturated results
    /// are always on the grid and quantization is idempotent — including
    /// degenerate formats whose word length is zero (they represent only
    /// zero).
    fn grid_index_range(&self) -> (f64, f64) {
        let step = self.step();
        let bound = self.max_magnitude();
        let lo = (-bound / step).ceil();
        let hi = ((bound - step.min(bound)) / step).floor();
        (lo, hi.max(0.0))
    }

    /// Quantizes an `f32` value (convenience for tensor data).
    pub fn quantize_f32(&self, x: f32) -> f32 {
        self.quantize(x as f64) as f32
    }

    /// Rounds `x` to the grid *stochastically*: up with probability
    /// equal to the fractional position, down otherwise, then saturates.
    ///
    /// Stochastic rounding is unbiased — `E[q(x)] = x` inside the range
    /// — at the price of doubling the error variance relative to nearest
    /// rounding (`step²/6` vs `step²/12`). Hardware implements it with an
    /// LFSR per rounder; the reproduction offers it as an ablation
    /// against the paper's nearest rounding (which the ablation finds
    /// preferable at these scales).
    pub fn quantize_stochastic(&self, x: f64, rng: &mut mupod_stats::SeededRng) -> f64 {
        let step = self.step();
        let (lo_idx, hi_idx) = self.grid_index_range();
        let pos = x / step;
        let below = pos.floor();
        let frac = pos - below;
        let k = if rng.unit() < frac {
            below + 1.0
        } else {
            below
        };
        k.clamp(lo_idx, hi_idx) * step
    }

    /// Stochastically quantizes every element of a tensor in place.
    pub fn quantize_tensor_stochastic(&self, t: &mut Tensor, rng: &mut mupod_stats::SeededRng) {
        for v in t.data_mut() {
            *v = self.quantize_stochastic(*v as f64, rng) as f32;
        }
    }

    /// Quantizes every element of a tensor in place.
    pub fn quantize_tensor(&self, t: &mut Tensor) {
        let step = self.step() as f32;
        let (lo, hi) = self.grid_index_range();
        let (lo, hi) = (lo as f32, hi as f32);
        for v in t.data_mut() {
            *v = (*v / step).round().clamp(lo, hi) * step;
        }
    }
}

impl std::fmt::Display for FixedPointFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.int_bits, self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_bits_rule_matches_paper() {
        // Δ = 2^-(F+1): F=3 gives Δ=1/16; asking for Δ=1/16 returns F=3.
        assert_eq!(FixedPointFormat::frac_bits_for_delta(1.0 / 16.0), 3);
        // Slightly tighter tolerance bumps F.
        assert_eq!(FixedPointFormat::frac_bits_for_delta(0.9 / 16.0), 4);
        // Δ > 1 yields negative F (drop integer LSBs).
        assert_eq!(FixedPointFormat::frac_bits_for_delta(4.0), -3);
        assert_eq!(FixedPointFormat::frac_bits_for_delta(0.5), 0);
    }

    #[test]
    fn int_bits_rule_matches_paper() {
        // Table II: max|X| = 161 -> 9 signed bits (⌈log2 161⌉ = 8).
        assert_eq!(FixedPointFormat::int_bits_for_max_abs(161.0), 9);
        assert_eq!(FixedPointFormat::int_bits_for_max_abs(443.0), 10);
        assert_eq!(FixedPointFormat::int_bits_for_max_abs(0.0), 1);
        assert_eq!(FixedPointFormat::int_bits_for_max_abs(0.4), 0);
        // Power of two needs the extra bit: representing 8 requires 4+1.
        assert_eq!(FixedPointFormat::int_bits_for_max_abs(8.0), 5);
    }

    #[test]
    fn quantize_rounds_to_grid() {
        let fmt = FixedPointFormat::new(4, 2); // step 0.25
        assert_eq!(fmt.quantize(1.1), 1.0);
        assert_eq!(fmt.quantize(1.13), 1.25);
        assert_eq!(fmt.quantize(-0.95), -1.0);
        assert_eq!(fmt.quantize(0.0), 0.0);
    }

    #[test]
    fn quantize_saturates() {
        let fmt = FixedPointFormat::new(3, 1); // range [-4, 3.5], step 0.5
        assert_eq!(fmt.quantize(100.0), 3.5);
        assert_eq!(fmt.quantize(-100.0), -4.0);
    }

    #[test]
    fn negative_frac_bits_coarse_grid() {
        let fmt = FixedPointFormat::new(8, -2); // step 4
        assert_eq!(fmt.step(), 4.0);
        assert_eq!(fmt.delta(), 2.0);
        assert_eq!(fmt.quantize(5.0), 4.0);
        assert_eq!(fmt.quantize(6.1), 8.0);
        assert_eq!(fmt.total_bits(), 6);
    }

    #[test]
    fn total_bits_never_negative() {
        let fmt = FixedPointFormat::new(2, -5);
        assert_eq!(fmt.total_bits(), 0);
    }

    #[test]
    fn for_range_and_delta_error_bound_holds() {
        let fmt = FixedPointFormat::for_range_and_delta(10.0, 0.03);
        for i in 0..1000 {
            let x = -10.0 + i as f64 * 0.02;
            let q = fmt.quantize(x);
            assert!((q - x).abs() <= 0.03 + 1e-12, "error too large at {x}: {q}");
        }
    }

    #[test]
    fn quantize_tensor_matches_scalar() {
        let fmt = FixedPointFormat::new(4, 2);
        let mut t = Tensor::from_vec(&[4], vec![1.1, -0.95, 0.0, 7.9]);
        fmt.quantize_tensor(&mut t);
        for (i, &x) in [1.1f64, -0.95, 0.0, 7.9].iter().enumerate() {
            assert_eq!(t.data()[i], fmt.quantize(x) as f32);
        }
    }

    #[test]
    fn display_shows_if_format() {
        assert_eq!(FixedPointFormat::new(9, 3).to_string(), "9.3");
        assert_eq!(FixedPointFormat::new(8, -2).to_string(), "8.-2");
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        let fmt = FixedPointFormat::new(6, 2); // step 0.25
        let mut rng = mupod_stats::SeededRng::new(5);
        let x = 1.1; // 0.4 of the way from 1.0 to 1.25
        let mut sum = 0.0;
        let n = 40_000;
        for _ in 0..n {
            let q = fmt.quantize_stochastic(x, &mut rng);
            assert!(q == 1.0 || q == 1.25, "off-grid result {q}");
            sum += q;
        }
        let mean = sum / n as f64;
        assert!((mean - x).abs() < 5e-3, "biased: {mean}");
    }

    #[test]
    fn stochastic_rounding_exact_on_grid_and_saturates() {
        let fmt = FixedPointFormat::new(3, 1); // range [-4, 3.5], step .5
        let mut rng = mupod_stats::SeededRng::new(6);
        assert_eq!(fmt.quantize_stochastic(1.5, &mut rng), 1.5);
        assert_eq!(fmt.quantize_stochastic(100.0, &mut rng), 3.5);
        assert_eq!(fmt.quantize_stochastic(-100.0, &mut rng), -4.0);
    }

    #[test]
    fn zero_always_exact() {
        for (i, f) in [(1, 7), (9, -3), (0, 4), (16, 16)] {
            assert_eq!(FixedPointFormat::new(i, f).quantize(0.0), 0.0);
        }
    }
}
