//! Per-layer bitwidth allocations and the effective-bitwidth metric.

use crate::FixedPointFormat;

/// The fixed-point format chosen for one layer's input tensor, together
/// with the measurements that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerFormat {
    /// Name of the layer (e.g. `conv3`).
    pub layer: String,
    /// Chosen format.
    pub format: FixedPointFormat,
    /// The error half-width `Δ_{X_K}` the optimizer granted this layer.
    pub delta: f64,
    /// Observed `max|X_K|` used for the integer part.
    pub max_abs: f64,
}

impl LayerFormat {
    /// Builds a layer format from the optimizer's `Δ` grant and the
    /// profiled dynamic range.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not positive finite or `max_abs` is negative.
    pub fn from_delta(layer: impl Into<String>, delta: f64, max_abs: f64) -> Self {
        Self {
            layer: layer.into(),
            format: FixedPointFormat::for_range_and_delta(max_abs, delta),
            delta,
            max_abs,
        }
    }

    /// Hardware word length of this layer's input operand.
    ///
    /// Clamped below at 1 bit: even a layer granted an enormous error
    /// budget still reads *something*.
    pub fn bits(&self) -> u32 {
        self.format.total_bits().max(1)
    }
}

/// A complete per-layer bitwidth assignment for a network.
///
/// # Example
///
/// ```
/// use mupod_quant::{BitwidthAllocation, LayerFormat};
/// let alloc = BitwidthAllocation::new(vec![
///     LayerFormat::from_delta("conv1", 0.01, 100.0),
///     LayerFormat::from_delta("conv2", 0.05, 50.0),
/// ]);
/// assert_eq!(alloc.len(), 2);
/// let bits = alloc.bits();
/// assert!(bits[0] > bits[1]); // tighter Δ ⇒ more fraction bits
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitwidthAllocation {
    layers: Vec<LayerFormat>,
}

impl BitwidthAllocation {
    /// Creates an allocation from per-layer formats.
    pub fn new(layers: Vec<LayerFormat>) -> Self {
        Self { layers }
    }

    /// Builds an allocation with a uniform bitwidth: each layer gets
    /// `bits` total, with the fraction part filling whatever the integer
    /// part (from `max_abs`) leaves over.
    ///
    /// This is the paper's fallback baseline ("the smallest possible
    /// uniform bitwidth for all layers").
    pub fn uniform(names: &[&str], max_abs: &[f64], bits: u32) -> Self {
        assert_eq!(names.len(), max_abs.len(), "name/range length mismatch");
        let layers = names
            .iter()
            .zip(max_abs)
            .map(|(&name, &ma)| {
                let int_bits = FixedPointFormat::int_bits_for_max_abs(ma);
                let frac_bits = bits as i32 - int_bits;
                let format = FixedPointFormat::new(int_bits, frac_bits);
                LayerFormat {
                    layer: name.to_string(),
                    format,
                    delta: format.delta(),
                    max_abs: ma,
                }
            })
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Per-layer formats.
    pub fn layers(&self) -> &[LayerFormat] {
        &self.layers
    }

    /// Per-layer word lengths.
    pub fn bits(&self) -> Vec<u32> {
        self.layers.iter().map(LayerFormat::bits).collect()
    }

    /// Weighted mean bitwidth `Σ ρ_K B_K / Σ ρ_K` (paper §V-D).
    ///
    /// With `rho` = per-layer input counts this is the bandwidth-effective
    /// bitwidth; with `rho` = per-layer MAC counts it is the
    /// energy-effective bitwidth of Table III.
    ///
    /// # Panics
    ///
    /// Panics if `rho` has the wrong length or sums to zero.
    pub fn effective_bitwidth(&self, rho: &[f64]) -> f64 {
        let bits = self.bits();
        effective_bitwidth(&bits, rho)
    }

    /// Total weighted bits `Σ ρ_K B_K` (e.g. the `#Input_bits` row of
    /// Table II when `rho` is the per-layer input element count).
    ///
    /// # Panics
    ///
    /// Panics if `rho` has the wrong length.
    pub fn total_weighted_bits(&self, rho: &[f64]) -> f64 {
        assert_eq!(rho.len(), self.layers.len(), "rho length mismatch");
        self.bits()
            .iter()
            .zip(rho)
            .map(|(&b, &r)| b as f64 * r)
            .sum()
    }
}

impl FromIterator<LayerFormat> for BitwidthAllocation {
    fn from_iter<I: IntoIterator<Item = LayerFormat>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// Weighted mean bitwidth `Σ ρ_K B_K / Σ ρ_K` over raw bit counts.
///
/// # Panics
///
/// Panics if the slices differ in length or `rho` sums to zero.
pub fn effective_bitwidth(bits: &[u32], rho: &[f64]) -> f64 {
    assert_eq!(bits.len(), rho.len(), "bits/rho length mismatch");
    let denom: f64 = rho.iter().sum();
    assert!(denom > 0.0, "rho must have positive total weight");
    bits.iter()
        .zip(rho)
        .map(|(&b, &r)| b as f64 * r)
        .sum::<f64>()
        / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bitwidth_matches_paper_example() {
        // Paper §V-D: AlexNet baseline 2833e3 bits / 397.6e3 inputs ≈ 7.1.
        let bits = [9u32, 7, 4, 5, 7];
        let rho = [154.6e3, 70e3, 43.2e3, 64.9e3, 64.9e3];
        let eff = effective_bitwidth(&bits, &rho);
        assert!((eff - 7.125).abs() < 0.01, "got {eff}");
    }

    #[test]
    fn uniform_allocation_has_constant_bits() {
        let alloc = BitwidthAllocation::uniform(&["a", "b", "c"], &[100.0, 10.0, 1000.0], 8);
        assert_eq!(alloc.bits(), vec![8, 8, 8]);
        // Layers with larger range spend more integer bits, so their Δ is
        // coarser.
        assert!(alloc.layers()[2].delta > alloc.layers()[1].delta);
    }

    #[test]
    fn from_delta_respects_error_bound() {
        let lf = LayerFormat::from_delta("conv1", 0.02, 161.0);
        assert!(lf.format.delta() <= 0.02);
        assert_eq!(lf.format.int_bits(), 9);
        assert!(lf.bits() >= 1);
    }

    #[test]
    fn bits_clamped_to_one() {
        // Giant delta, tiny range: raw total bits would be <= 0.
        let lf = LayerFormat::from_delta("x", 100.0, 0.5);
        assert_eq!(lf.bits(), 1);
    }

    #[test]
    fn total_weighted_bits_table2_shape() {
        // Paper Table II baseline: per-layer bits × #inputs sums to 2833e3.
        let alloc = BitwidthAllocation::uniform(
            &["conv1", "conv2", "conv3", "conv4", "conv5"],
            &[161.0, 139.0, 139.0, 443.0, 415.0],
            8,
        );
        let rho = [154.6e3, 70e3, 43.2e3, 64.9e3, 64.9e3];
        let total = alloc.total_weighted_bits(&rho);
        assert!((total - 8.0 * rho.iter().sum::<f64>()).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn effective_bitwidth_rejects_zero_weight() {
        effective_bitwidth(&[4], &[0.0]);
    }

    #[test]
    fn collects_from_iterator() {
        let alloc: BitwidthAllocation = (0..3)
            .map(|i| LayerFormat::from_delta(format!("l{i}"), 0.1, 10.0))
            .collect();
        assert_eq!(alloc.len(), 3);
        assert!(!alloc.is_empty());
    }
}
