//! Fixed-point formats and uniform quantization (paper §II-A).
//!
//! A fixed-point format `I.F` has `I` integer bits (signed, two's
//! complement) and `F` fraction bits. Rounding a value to the `I.F` grid
//! with correct rounding incurs a worst-case error of `Δ = 2^{-(F+1)}`;
//! over a large population the error is modelled as additive white noise,
//! uniform on `[-Δ, Δ]` with variance `(2Δ)²/12` (Widrow's statistical
//! theory of quantization, the paper's reference \[8\]).
//!
//! Two non-obvious conventions from the paper are implemented faithfully:
//!
//! * **Negative fraction bits.** When the tolerable `Δ` exceeds 1, the
//!   low-order *integer* bits are also useless, so `F < 0` deletes them
//!   ("saving the integer bitwidth when Δ is greater than 1", §II-A). The
//!   effective word length is still `I + F`.
//! * **Integer bits from the observed range.** `I = ⌈log2 max|x|⌉ + 1`
//!   for a signed format, measured with a forward pass over the dataset.
//!
//! # Example
//!
//! ```
//! use mupod_quant::FixedPointFormat;
//!
//! // A 4.3 format: values in [-8, 8) on a 1/8 grid.
//! let fmt = FixedPointFormat::new(4, 3);
//! assert_eq!(fmt.quantize(1.30), 1.25);
//! assert_eq!(fmt.total_bits(), 7);
//! assert!((fmt.delta() - 1.0 / 16.0).abs() < 1e-12);
//! ```

mod allocation;
mod allocation_io;
mod format;

pub use allocation::{effective_bitwidth, BitwidthAllocation, LayerFormat};
pub use allocation_io::AllocationIoError;
pub use format::FixedPointFormat;

/// Standard deviation of the quantization noise for half-width `delta`.
///
/// The noise is uniform on `[-Δ, Δ]`, so `σ = 2Δ/√12 = Δ/√3` (paper
/// §II-A, citing Widrow).
///
/// ```
/// let sd = mupod_quant::noise_std_for_delta(0.5);
/// assert!((sd - 0.5 / 3.0_f64.sqrt()).abs() < 1e-12);
/// ```
pub fn noise_std_for_delta(delta: f64) -> f64 {
    delta / 3.0_f64.sqrt()
}

/// Half-width `Δ` of the uniform noise with standard deviation `sigma`.
///
/// Inverse of [`noise_std_for_delta`]: `Δ = σ·√12/2 = σ·√3` (the paper
/// writes `Δ_{X_K} = σ_{X_K}·√12/2` in §IV).
pub fn delta_for_noise_std(sigma: f64) -> f64 {
    sigma * 3.0_f64.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_std_roundtrip() {
        for delta in [1e-4, 0.1, 1.0, 37.5] {
            let sigma = noise_std_for_delta(delta);
            assert!((delta_for_noise_std(sigma) - delta).abs() < 1e-12 * delta.max(1.0));
        }
    }

    #[test]
    fn noise_std_matches_uniform_variance_formula() {
        // Var(U[-Δ, Δ]) = (2Δ)² / 12.
        let delta = 0.75;
        let sigma = noise_std_for_delta(delta);
        assert!((sigma * sigma - (2.0 * delta).powi(2) / 12.0).abs() < 1e-12);
    }
}
