//! Property tests for the fixed-point format rules of §II-A.

use mupod_quant::{delta_for_noise_std, noise_std_for_delta, FixedPointFormat};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `frac_bits_for_delta` always delivers a format whose worst-case
    /// error is within the requested Δ, and never wastes more than one
    /// extra bit.
    #[test]
    fn frac_bits_rule_is_tight(delta in 1e-9f64..1e6) {
        let f = FixedPointFormat::frac_bits_for_delta(delta);
        let achieved = FixedPointFormat::new(32, f).delta();
        prop_assert!(achieved <= delta * (1.0 + 1e-12), "error bound violated");
        // One fewer fraction bit would violate the bound.
        let coarser = FixedPointFormat::new(32, f - 1).delta();
        prop_assert!(coarser > delta * (1.0 - 1e-12), "wasted a bit");
    }

    /// `int_bits_for_max_abs` covers the range and is minimal.
    #[test]
    fn int_bits_rule_is_tight(max_abs in 1e-6f64..1e9) {
        let i = FixedPointFormat::int_bits_for_max_abs(max_abs);
        let fmt = FixedPointFormat::new(i, 40);
        prop_assert!(fmt.max_magnitude() >= max_abs * (1.0 - 1e-12));
        // One fewer integer bit could not represent the magnitude.
        let smaller = FixedPointFormat::new(i - 1, 40);
        prop_assert!(smaller.max_magnitude() < max_abs * (1.0 + 1e-9));
    }

    /// Quantization is idempotent: q(q(x)) == q(x).
    #[test]
    fn quantize_idempotent(
        x in -1e5f64..1e5,
        int_bits in 2i32..20,
        frac_bits in -4i32..16,
    ) {
        let fmt = FixedPointFormat::new(int_bits, frac_bits);
        let q = fmt.quantize(x);
        prop_assert_eq!(fmt.quantize(q), q);
    }

    /// Saturation clamps to the representable range, preserving sign.
    #[test]
    fn quantize_saturates_in_range(
        x in -1e9f64..1e9,
        int_bits in 2i32..16,
        frac_bits in 0i32..8,
    ) {
        let fmt = FixedPointFormat::new(int_bits, frac_bits);
        let q = fmt.quantize(x);
        prop_assert!(q.abs() <= fmt.max_magnitude());
        if x.abs() > fmt.max_magnitude() {
            prop_assert_eq!(q.signum(), x.signum());
        }
    }

    /// Δ ↔ σ conversions are mutually inverse.
    #[test]
    fn delta_sigma_inverse(delta in 1e-9f64..1e9) {
        let s = noise_std_for_delta(delta);
        let d = delta_for_noise_std(s);
        prop_assert!((d - delta).abs() < 1e-9 * delta.max(1.0));
    }

    /// Larger Δ tolerance never yields a *longer* word.
    #[test]
    fn coarser_delta_never_longer_word(
        max_abs in 0.1f64..1e6,
        d1 in 1e-6f64..1e3,
        factor in 1.0f64..1e3,
    ) {
        let fine = FixedPointFormat::for_range_and_delta(max_abs, d1);
        let coarse = FixedPointFormat::for_range_and_delta(max_abs, d1 * factor);
        prop_assert!(coarse.total_bits() <= fine.total_bits());
    }
}
