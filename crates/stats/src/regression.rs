//! Ordinary least-squares linear regression.
//!
//! The heart of the paper is Eq. 5, `Δ_{X_K} ≈ λ_K · σ_{Y_{K→Ł}} + θ_K`: a
//! per-layer straight line fitted from ~20 (σ, Δ) measurement pairs
//! (§V-A). [`LinearFit`] performs that fit and exposes the quality metrics
//! the paper reports — R² and the relative prediction error, which the
//! authors found below 5 % for most layers and below 10 % in the worst
//! case (§IV).

/// Result of fitting `y = slope · x + intercept` by least squares.
///
/// # Example
///
/// ```
/// use mupod_stats::LinearFit;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.9, 5.1, 7.0, 9.0];
/// let fit = LinearFit::fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 0.1);
/// assert!(fit.r_squared > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope (`λ_K` in Eq. 5).
    pub slope: f64,
    /// Fitted intercept (`θ_K` in Eq. 5).
    pub intercept: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

/// Errors returned by [`LinearFit::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two points, or mismatched slice lengths.
    NotEnoughData,
    /// All x values identical — slope is undefined.
    DegenerateX,
    /// A NaN/Inf crept into the points or weights; a fit over such data
    /// would silently return NaN coefficients.
    NonFiniteInput,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughData => write!(f, "need at least two (x, y) points"),
            FitError::DegenerateX => write!(f, "all x values identical, slope undefined"),
            FitError::NonFiniteInput => {
                write!(f, "non-finite value among regression points or weights")
            }
        }
    }
}

impl std::error::Error for FitError {}

impl LinearFit {
    /// Fits `y = slope · x + intercept` to the given points.
    ///
    /// # Errors
    ///
    /// Returns [`FitError::NotEnoughData`] when fewer than two points are
    /// supplied or the slices differ in length, and
    /// [`FitError::DegenerateX`] when the x values have zero variance.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, FitError> {
        let w = vec![1.0; xs.len()];
        Self::fit_weighted(xs, ys, &w)
    }

    /// Fits `y = slope · x + intercept` by *weighted* least squares.
    ///
    /// The profiler's sweep points span two orders of magnitude of `Δ`;
    /// with uniform weights the largest points dominate and the small-Δ
    /// end of the line — precisely the fine-bitwidth regime the
    /// optimizer cares about — fits poorly in relative terms. Weighting
    /// each point by `1/y²` makes the residuals relative, matching the
    /// paper's "< 5 % relative prediction error" quality metric.
    ///
    /// # Errors
    ///
    /// Same as [`LinearFit::fit`]; additionally requires weights to be
    /// positive and matching in length.
    pub fn fit_weighted(xs: &[f64], ys: &[f64], weights: &[f64]) -> Result<Self, FitError> {
        if xs.len() != ys.len() || xs.len() != weights.len() || xs.len() < 2 {
            return Err(FitError::NotEnoughData);
        }
        if xs.iter().chain(ys).chain(weights).any(|v| !v.is_finite()) {
            return Err(FitError::NonFiniteInput);
        }
        let sw: f64 = weights.iter().sum();
        if sw <= 0.0 || weights.iter().any(|&w| w < 0.0) {
            return Err(FitError::NotEnoughData);
        }
        let mean_x = xs.iter().zip(weights).map(|(&x, &w)| w * x).sum::<f64>() / sw;
        let mean_y = ys.iter().zip(weights).map(|(&y, &w)| w * y).sum::<f64>() / sw;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for ((&x, &y), &w) in xs.iter().zip(ys).zip(weights) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += w * dx * dx;
            sxy += w * dx * dy;
            syy += w * dy * dy;
        }
        if sxx == 0.0 {
            return Err(FitError::DegenerateX);
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .zip(weights)
            .map(|((&x, &y), &w)| {
                let r = y - (slope * x + intercept);
                w * r * r
            })
            .sum();
        let r_squared = if syy == 0.0 {
            // y constant: a flat line explains everything.
            1.0
        } else {
            1.0 - ss_res / syy
        };
        Ok(Self {
            slope,
            intercept,
            r_squared,
            n: xs.len(),
        })
    }

    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Maximum relative prediction error `|ŷ − y| / |y|` over the points.
    ///
    /// This is the metric the paper quotes when validating Eq. 5 ("mostly
    /// < 5 % error … in the worst case about 10 %"). Points with `y == 0`
    /// are skipped.
    pub fn max_relative_error(&self, xs: &[f64], ys: &[f64]) -> f64 {
        xs.iter()
            .zip(ys)
            .filter(|(_, &y)| y != 0.0)
            .map(|(&x, &y)| ((self.predict(x) - y) / y).abs())
            .fold(0.0, f64::max)
    }

    /// Mean relative prediction error over the points (zero-`y` skipped).
    pub fn mean_relative_error(&self, xs: &[f64], ys: &[f64]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (&x, &y) in xs.iter().zip(ys) {
            if y != 0.0 {
                total += ((self.predict(x) - y) / y).abs();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.5).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.max_relative_error(&xs, &ys) < 1e-9);
    }

    #[test]
    fn recovers_planted_line_under_noise() {
        let mut rng = SeededRng::new(31);
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + 0.5 + rng.gaussian(0.0, 0.01))
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.02);
        assert!((fit.intercept - 0.5).abs() < 0.02);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(
            LinearFit::fit(&[1.0], &[2.0]).unwrap_err(),
            FitError::NotEnoughData
        );
        assert_eq!(
            LinearFit::fit(&[1.0, 2.0], &[2.0]).unwrap_err(),
            FitError::NotEnoughData
        );
        assert_eq!(
            LinearFit::fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            FitError::DegenerateX
        );
    }

    #[test]
    fn rejects_non_finite_points() {
        assert_eq!(
            LinearFit::fit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert_eq!(
            LinearFit::fit(&[1.0, 2.0, 3.0], &[1.0, f64::INFINITY, 3.0]).unwrap_err(),
            FitError::NonFiniteInput
        );
        assert_eq!(
            LinearFit::fit_weighted(&[1.0, 2.0], &[1.0, 2.0], &[1.0, f64::NAN]).unwrap_err(),
            FitError::NonFiniteInput
        );
    }

    #[test]
    fn single_point_and_zero_variance_stay_typed() {
        // The profiler's degenerate-layer fallback keys off these exact
        // variants; they must not be conflated with NaN poisoning.
        assert_eq!(
            LinearFit::fit(&[1.0], &[1.0]).unwrap_err(),
            FitError::NotEnoughData
        );
        assert_eq!(
            LinearFit::fit(&[2.0, 2.0], &[1.0, 3.0]).unwrap_err(),
            FitError::DegenerateX
        );
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn relative_errors_skip_zero_targets() {
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0]).unwrap();
        // y = x exactly; the y=0 point must not divide by zero.
        assert_eq!(fit.max_relative_error(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        assert_eq!(fit.mean_relative_error(&[0.0], &[0.0]), 0.0);
    }
}
