//! Statistical substrate for the MUPOD precision-optimization framework.
//!
//! The DATE 2019 method is built almost entirely out of elementary
//! statistics: standard deviations of rounding-error populations, linear
//! regressions between injected noise magnitude and observed output error
//! (Eq. 5 of the paper), histograms used to validate the Gaussian shape of
//! the propagated error (Fig. 3), and a ridge-regression solve used by the
//! model zoo to calibrate classifier heads. This crate implements all of
//! that from scratch so the numeric core of the reproduction is auditable
//! and free of heavyweight dependencies.
//!
//! # Example
//!
//! ```
//! use mupod_stats::{RunningStats, regression::LinearFit};
//!
//! let mut stats = RunningStats::new();
//! for x in [1.0_f64, 2.0, 3.0, 4.0] {
//!     stats.push(x);
//! }
//! assert_eq!(stats.mean(), 2.5);
//!
//! // Fit y = 2x + 1 exactly.
//! let xs = [0.0, 1.0, 2.0, 3.0];
//! let ys = [1.0, 3.0, 5.0, 7.0];
//! let fit = LinearFit::fit(&xs, &ys).unwrap();
//! assert!((fit.slope - 2.0).abs() < 1e-12);
//! assert!((fit.intercept - 1.0).abs() < 1e-12);
//! ```

pub mod histogram;
pub mod linalg;
pub mod moments;
pub mod regression;
pub mod rng;

pub use histogram::Histogram;
pub use moments::RunningStats;
pub use regression::LinearFit;
pub use rng::SeededRng;

/// Computes the population standard deviation of a slice in one pass.
///
/// This is the estimator used throughout the paper when measuring the
/// standard deviation of error tensors (`σ_{Y_{K→Ł}}`): the error
/// population over *all* output elements of *all* images is treated as one
/// sample. Returns `0.0` for slices with fewer than two elements.
///
/// ```
/// let sd = mupod_stats::population_std(&[1.0, 1.0, 1.0]);
/// assert_eq!(sd, 0.0);
/// ```
pub fn population_std(values: &[f64]) -> f64 {
    let mut stats = RunningStats::new();
    for &v in values {
        stats.push(v);
    }
    stats.population_std()
}

/// Computes the mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_std_matches_hand_computation() {
        // Values 1, 2, 3: mean 2, population variance (1 + 0 + 1) / 3.
        let sd = population_std(&[1.0, 2.0, 3.0]);
        assert!((sd - (2.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn population_std_degenerate_inputs() {
        assert_eq!(population_std(&[]), 0.0);
        assert_eq!(population_std(&[5.0]), 0.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
