//! Fixed-bin histograms.
//!
//! Used to regenerate the error-shape panels of the paper: the uniform
//! input-error histogram and the approximately Gaussian output-error
//! histogram of Fig. 1, and the `N(0, 1)` comparison of Fig. 3 (right).

/// A histogram with uniformly spaced bins over `[low, high)`.
///
/// Out-of-range values are counted in saturating edge bins so no
/// observation is silently dropped.
///
/// # Example
///
/// ```
/// use mupod_stats::Histogram;
/// let mut h = Histogram::new(-1.0, 1.0, 4);
/// for v in [-0.9, -0.1, 0.1, 0.9, 0.95] {
///     h.push(v);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.counts()[3], 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation; values outside the range clamp to edge bins.
    pub fn push(&mut self, value: f64) {
        let bins = self.counts.len();
        let t = (value - self.low) / (self.high - self.low);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center coordinate of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        self.low + (i as f64 + 0.5) * width
    }

    /// Probability-density estimate per bin (integrates to ~1).
    pub fn density(&self) -> Vec<f64> {
        let width = (self.high - self.low) / self.counts.len() as f64;
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / (self.total as f64 * width))
            .collect()
    }

    /// Total-variation distance between this histogram's density and a
    /// reference density function, evaluated at bin centers.
    ///
    /// Low values mean the sampled distribution matches the reference —
    /// this is how the reproduction quantifies the "output error is almost
    /// `N(0, 1)`" claim under Fig. 3.
    pub fn total_variation_vs<F: Fn(f64) -> f64>(&self, pdf: F) -> f64 {
        let width = (self.high - self.low) / self.counts.len() as f64;
        let dens = self.density();
        0.5 * dens
            .iter()
            .enumerate()
            .map(|(i, &d)| (d - pdf(self.bin_center(i))).abs() * width)
            .sum::<f64>()
    }

    /// Renders a compact ASCII bar chart, one row per bin.
    pub fn render_ascii(&self, max_width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * max_width) / peak as usize;
            out.push_str(&format!(
                "{:>9.4} | {}{}\n",
                self.bin_center(i),
                "#".repeat(bar),
                if c > 0 && bar == 0 { "." } else { "" }
            ));
        }
        out
    }
}

/// Standard normal probability density function.
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Probability density function of `N(mean, std²)`.
pub fn normal_pdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 0.0 {
        return 0.0;
    }
    standard_normal_pdf((x - mean) / std) / std
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn bins_and_centers() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend([0.5, 1.5, 1.6, 3.9]);
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-5.0, 5.0]);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn density_integrates_to_one() {
        let mut h = Histogram::new(-2.0, 2.0, 16);
        let mut rng = SeededRng::new(2);
        for _ in 0..10_000 {
            h.push(rng.uniform(-2.0, 2.0));
        }
        let width = 4.0 / 16.0;
        let integral: f64 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gaussian_sample_matches_normal_pdf() {
        let mut h = Histogram::new(-4.0, 4.0, 40);
        let mut rng = SeededRng::new(8);
        for _ in 0..100_000 {
            h.push(rng.standard_gaussian());
        }
        let tv = h.total_variation_vs(standard_normal_pdf);
        assert!(tv < 0.03, "total variation too high: {tv}");
    }

    #[test]
    fn uniform_sample_is_far_from_normal() {
        let mut h = Histogram::new(-4.0, 4.0, 40);
        let mut rng = SeededRng::new(8);
        for _ in 0..50_000 {
            h.push(rng.uniform(-1.0, 1.0));
        }
        assert!(h.total_variation_vs(standard_normal_pdf) > 0.2);
    }

    #[test]
    fn ascii_render_is_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.push(0.5);
        let art = h.render_ascii(20);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('#'));
    }
}
