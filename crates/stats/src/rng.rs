//! Seeded random number generation helpers.
//!
//! Every stochastic step in the reproduction — synthetic image generation,
//! weight initialization, uniform noise injection `U[-Δ, Δ]`, Gaussian
//! output noise `N(0, σ²)` (Scheme 2 of §V-C) — flows through
//! [`SeededRng`] so that experiments are bit-reproducible from a single
//! `u64` seed. The generator is a self-contained xoshiro256++ (seeded
//! through SplitMix64) and the Gaussian sampler a self-contained
//! Box–Muller implementation, which keeps the workspace dependency-free:
//! the build container has no registry access, so `rand` cannot be
//! fetched.

/// Deterministic random source used across the workspace.
///
/// A self-contained xoshiro256++ generator plus the samplers the paper's
/// method needs. Child generators can be split off deterministically with
/// [`SeededRng::fork`], which lets per-layer or per-image work draw from
/// independent streams regardless of evaluation order.
///
/// # Example
///
/// ```
/// use mupod_stats::SeededRng;
/// let mut rng = SeededRng::new(42);
/// let a = rng.uniform(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&a));
/// let mut again = SeededRng::new(42);
/// assert_eq!(a, again.uniform(-1.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    /// xoshiro256++ state words.
    state: [u64; 4],
    /// The creation seed, kept so [`SeededRng::fork`] derives children
    /// from the seed rather than the evolving stream position.
    seed: u64,
    /// Cached second Box–Muller variate.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            seed,
            gauss_spare: None,
        }
    }

    /// Deterministically derives an independent child generator.
    ///
    /// The child's stream depends only on the parent seed state and
    /// `stream`, so calling `fork(3)` before or after other draws on
    /// *different* forks yields the same child sequence.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the stream id with SplitMix64 so adjacent ids decorrelate.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::new(self.seed ^ z)
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let out = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        out
    }

    /// Samples uniformly from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is non-finite.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(
            low.is_finite() && high.is_finite() && low < high,
            "invalid uniform bounds [{low}, {high})"
        );
        // `low + u·(high-low)` can round up to exactly `high` for u close
        // to 1; redraw in that (astronomically rare) case to keep the
        // half-open contract.
        loop {
            let v = low + self.unit() * (high - low);
            if v < high {
                return v;
            }
        }
    }

    /// Samples from the symmetric uniform distribution `U[-delta, delta]`.
    ///
    /// This is the quantization-noise model of §II-A: rounding to a
    /// fixed-point grid with step `2Δ` produces errors uniform on
    /// `[-Δ, Δ]` with standard deviation `2Δ/√12`. Returns `0.0` when
    /// `delta == 0` so "no injection" composes cleanly.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or non-finite.
    pub fn symmetric_uniform(&mut self, delta: f64) -> f64 {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "invalid uniform half-width {delta}"
        );
        if delta == 0.0 {
            0.0
        } else {
            self.uniform(-delta, delta)
        }
    }

    /// Samples from `N(mean, std²)` via Box–Muller.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn gaussian(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std.is_finite() && std >= 0.0, "invalid gaussian std {std}");
        mean + std * self.standard_gaussian()
    }

    /// Samples from the standard normal `N(0, 1)`.
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller: u1 in (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.gauss_spare = Some(r * s);
        r * c
    }

    /// Samples an integer uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index bound must be positive");
        // Lemire's multiply-and-reject method: unbiased for any bound.
        let bound = bound as u64;
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if m as u64 >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunningStats;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let root = SeededRng::new(99);
        let mut c1 = root.fork(1);
        let seq1: Vec<f64> = (0..8).map(|_| c1.unit()).collect();

        // Interleave other forks; fork(1) must still produce seq1.
        let mut c0 = root.fork(0);
        let _ = c0.unit();
        let mut c1_again = root.fork(1);
        let seq1_again: Vec<f64> = (0..8).map(|_| c1_again.unit()).collect();
        assert_eq!(seq1, seq1_again);
    }

    #[test]
    fn forks_decorrelate() {
        let root = SeededRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn symmetric_uniform_moments() {
        let mut rng = SeededRng::new(11);
        let delta = 0.25;
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            let v = rng.symmetric_uniform(delta);
            assert!(v.abs() <= delta);
            s.push(v);
        }
        // Theoretical std of U[-Δ, Δ] is Δ/√3.
        let expected = delta / 3.0_f64.sqrt();
        assert!(s.mean().abs() < 2e-3);
        assert!((s.population_std() - expected).abs() / expected < 0.02);
    }

    #[test]
    fn symmetric_uniform_zero_delta() {
        let mut rng = SeededRng::new(1);
        assert_eq!(rng.symmetric_uniform(0.0), 0.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SeededRng::new(13);
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(rng.gaussian(1.5, 2.0));
        }
        assert!((s.mean() - 1.5).abs() < 0.02);
        assert!((s.population_std() - 2.0).abs() < 0.02);
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let mut rng = SeededRng::new(3);
        assert_eq!(rng.gaussian(4.0, 0.0), 4.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_bad_bounds() {
        SeededRng::new(0).uniform(1.0, 1.0);
    }
}
