//! Minimal dense linear algebra: symmetric solves and ridge regression.
//!
//! The model zoo calibrates each network's classifier head with a linear
//! probe — ridge regression of one-hot labels onto penultimate features
//! (see `DESIGN.md`, substitution table). That needs nothing more than a
//! Cholesky factorization of `XᵀX + αI`, implemented here without external
//! dependencies.

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use mupod_stats::linalg::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut m = Self::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of a row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of a row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Gram matrix `selfᵀ · self` (symmetric, cols × cols).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Transposed product `selfᵀ · other` (cols × other.cols).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for i in 0..self.cols {
                let a = a_row[i];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * b_row[j];
                }
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

/// Errors from the symmetric positive-definite solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is not positive definite (or too ill-conditioned).
    NotPositiveDefinite,
    /// Dimension mismatch between the system matrix and right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            SolveError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix, stored as lower-triangular `L`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NotPositiveDefinite`] if a non-positive pivot
    /// is encountered and [`SolveError::DimensionMismatch`] if `a` is not
    /// square. Only the lower triangle of `a` is read.
    pub fn factor(a: &Matrix) -> Result<Self, SolveError> {
        if a.rows() != a.cols() {
            return Err(SolveError::DimensionMismatch);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(SolveError::NotPositiveDefinite);
            }
            let dj = diag.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / dj;
            }
        }
        Ok(Self { l })
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(SolveError::DimensionMismatch);
        }
        // Forward substitution L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                v -= self.l[(i, k)] * yk;
            }
            y[i] = v / self.l[(i, i)];
        }
        // Back substitution Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                v -= self.l[(k, i)] * xk;
            }
            x[i] = v / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DimensionMismatch`] if `b.rows() != n`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, SolveError> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(SolveError::DimensionMismatch);
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }
}

/// Solves the ridge regression `min ‖X·W − Y‖² + alpha·‖W‖²`.
///
/// Returns `W` with shape `(X.cols, Y.cols)`. This is the linear-probe
/// calibration primitive used by `mupod-models`.
///
/// # Errors
///
/// Returns [`SolveError::DimensionMismatch`] if `X` and `Y` disagree on
/// row count, and [`SolveError::NotPositiveDefinite`] if `alpha` is too
/// small to regularize a rank-deficient `X`.
pub fn ridge_regression(x: &Matrix, y: &Matrix, alpha: f64) -> Result<Matrix, SolveError> {
    if x.rows() != y.rows() {
        return Err(SolveError::DimensionMismatch);
    }
    let mut gram = x.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += alpha;
    }
    let chol = Cholesky::factor(&gram)?;
    let xty = x.t_matmul(y);
    chol.solve_matrix(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let g = x.gram();
        let gt = x.t_matmul(&x);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - gt[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]] is SPD; solve A x = [8, 7] -> x = [1.25, 1.5].
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x = Cholesky::factor(&a).unwrap().solve(&[8.0, 7.0]).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            SolveError::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            SolveError::DimensionMismatch
        );
    }

    #[test]
    fn ridge_recovers_planted_weights() {
        let mut rng = SeededRng::new(17);
        let n = 200;
        let d = 6;
        let mut x = Matrix::zeros(n, d);
        for i in 0..n {
            for j in 0..d {
                x[(i, j)] = rng.gaussian(0.0, 1.0);
            }
        }
        let w_true = [0.5, -1.0, 2.0, 0.0, 3.0, -0.5];
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let v: f64 = (0..d).map(|j| x[(i, j)] * w_true[j]).sum();
            y[(i, 0)] = v + rng.gaussian(0.0, 0.01);
        }
        let w = ridge_regression(&x, &y, 1e-6).unwrap();
        for j in 0..d {
            assert!(
                (w[(j, 0)] - w_true[j]).abs() < 0.01,
                "weight {j}: {} vs {}",
                w[(j, 0)],
                w_true[j]
            );
        }
    }

    #[test]
    fn ridge_regularizes_rank_deficient_design() {
        // Two identical columns: OLS is singular, ridge is not.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = Matrix::from_rows(&[&[2.0], &[4.0], &[6.0]]);
        let w = ridge_regression(&x, &y, 1e-3).unwrap();
        // Symmetry: both columns get the same weight, summing to ~2.
        assert!((w[(0, 0)] - w[(1, 0)]).abs() < 1e-9);
        assert!((w[(0, 0)] + w[(1, 0)] - 2.0).abs() < 1e-2);
    }
}
