//! Streaming moment accumulators (Welford's algorithm).
//!
//! Error populations in the profiler can be large (every output element of
//! every image for every injected noise magnitude), so the standard
//! deviation is accumulated in a single numerically stable streaming pass
//! instead of materializing the error vector.

/// Numerically stable streaming accumulator for mean, variance, extrema.
///
/// Uses Welford's online algorithm; pushing `n` values costs `O(n)` with no
/// allocation. Both the *population* and the *sample* standard deviation
/// are exposed — the paper's error-tensor measurements use the population
/// estimator over very large populations where the two coincide.
///
/// # Example
///
/// ```
/// use mupod_stats::RunningStats;
/// let mut s = RunningStats::new();
/// s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// Uses the Chan et al. parallel update so that partial accumulators
    /// produced by worker threads combine into exactly the same moments a
    /// sequential pass would produce (up to rounding).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`m2 / n`); `0.0` with fewer than two values.
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2 / (n - 1)`); `0.0` with fewer than two values.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+∞` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-∞` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Largest absolute observation; `0.0` if empty.
    ///
    /// Used to derive the signed integer bitwidth `I = ⌈log2 max|x|⌉ + 1`
    /// (paper §II-A).
    pub fn max_abs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min.abs().max(self.max.abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_computation() {
        let values = [0.3, -1.2, 4.5, 2.2, -0.7, 3.3, 1.1];
        let mut s = RunningStats::new();
        s.extend(values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_vals = [1.0, 2.0, 3.0];
        let b_vals = [10.0, -5.0, 0.5, 2.5];
        let mut a = RunningStats::new();
        a.extend(a_vals);
        let mut b = RunningStats::new();
        b.extend(b_vals);
        a.merge(&b);

        let mut seq = RunningStats::new();
        seq.extend(a_vals.into_iter().chain(b_vals));
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-12);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0]);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn extrema_and_max_abs() {
        let mut s = RunningStats::new();
        s.extend([-3.0, 2.0, 1.0]);
        assert_eq!(s.min(), -3.0);
        assert_eq!(s.max(), 2.0);
        assert_eq!(s.max_abs(), 3.0);
        assert_eq!(RunningStats::new().max_abs(), 0.0);
    }

    #[test]
    fn sample_vs_population_variance() {
        let mut s = RunningStats::new();
        s.extend([1.0, 3.0]);
        assert!((s.population_variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
    }
}
