//! Property tests for the statistics substrate.

use mupod_stats::histogram::{normal_pdf, standard_normal_pdf};
use mupod_stats::linalg::{ridge_regression, Cholesky, Matrix};
use mupod_stats::{Histogram, LinearFit, RunningStats, SeededRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Forked RNG streams are independent of sibling consumption order.
    #[test]
    fn rng_forks_order_independent(seed in 0u64..10_000, s1 in 0u64..64, s2 in 0u64..64) {
        prop_assume!(s1 != s2);
        let root = SeededRng::new(seed);
        let take = |stream: u64| -> Vec<f64> {
            let mut r = root.fork(stream);
            (0..4).map(|_| r.unit()).collect()
        };
        let a_first = take(s1);
        let _ = take(s2);
        let a_again = take(s1);
        prop_assert_eq!(a_first, a_again);
    }

    /// Gaussian sampler matches its nominal moments on aggregate.
    #[test]
    fn gaussian_moments(seed in 0u64..5_000, mean in -10.0f64..10.0, std in 0.1f64..10.0) {
        let mut rng = SeededRng::new(seed);
        let mut s = RunningStats::new();
        for _ in 0..4_000 {
            s.push(rng.gaussian(mean, std));
        }
        prop_assert!((s.mean() - mean).abs() < 0.15 * std + 0.05);
        prop_assert!((s.population_std() - std).abs() / std < 0.1);
    }

    /// Weighted regression with uniform weights equals plain OLS.
    #[test]
    fn weighted_fit_with_unit_weights_is_ols(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..20),
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1e-6);
        let w = vec![1.0; xs.len()];
        let plain = LinearFit::fit(&xs, &ys).unwrap();
        let weighted = LinearFit::fit_weighted(&xs, &ys, &w).unwrap();
        prop_assert!((plain.slope - weighted.slope).abs() < 1e-9 * (1.0 + plain.slope.abs()));
        prop_assert!((plain.intercept - weighted.intercept).abs() < 1e-9 * (1.0 + plain.intercept.abs()));
    }

    /// Cholesky solves random SPD systems: A = BᵀB + I is always SPD.
    #[test]
    fn cholesky_solves_random_spd(seed in 0u64..10_000, n in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let mut b = Matrix::zeros(n + 1, n);
        for i in 0..(n + 1) {
            for j in 0..n {
                b[(i, j)] = rng.gaussian(0.0, 1.0);
            }
        }
        let mut a = b.gram();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let rhs: Vec<f64> = (0..n).map(|_| rng.gaussian(0.0, 1.0)).collect();
        let x = Cholesky::factor(&a).unwrap().solve(&rhs).unwrap();
        // Residual check: A·x ≈ rhs.
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
            prop_assert!((ax - rhs[i]).abs() < 1e-7 * (1.0 + rhs[i].abs()));
        }
    }

    /// Ridge shrinks toward zero as alpha grows.
    #[test]
    fn ridge_shrinks_with_alpha(seed in 0u64..10_000) {
        let mut rng = SeededRng::new(seed);
        let n = 30;
        let d = 4;
        let mut x = Matrix::zeros(n, d);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            for j in 0..d {
                x[(i, j)] = rng.gaussian(0.0, 1.0);
            }
            y[(i, 0)] = rng.gaussian(0.0, 1.0);
        }
        let small = ridge_regression(&x, &y, 1e-3).unwrap();
        let large = ridge_regression(&x, &y, 1e3).unwrap();
        let norm = |m: &Matrix| -> f64 {
            (0..d).map(|j| m[(j, 0)] * m[(j, 0)]).sum::<f64>().sqrt()
        };
        prop_assert!(norm(&large) <= norm(&small) + 1e-12);
    }

    /// Histogram density integrates to one regardless of data.
    #[test]
    fn histogram_density_normalized(
        values in prop::collection::vec(-10.0f64..10.0, 1..200),
        bins in 1usize..40,
    ) {
        let mut h = Histogram::new(-10.0, 10.0, bins);
        h.extend(values.iter().copied());
        let width = 20.0 / bins as f64;
        let total: f64 = h.density().iter().map(|d| d * width).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// The normal pdf family is consistent with its standard form.
    #[test]
    fn normal_pdf_scaling(x in -5.0f64..5.0, mean in -3.0f64..3.0, std in 0.1f64..5.0) {
        let direct = normal_pdf(x, mean, std);
        let via_standard = standard_normal_pdf((x - mean) / std) / std;
        prop_assert!((direct - via_standard).abs() < 1e-12);
    }
}
