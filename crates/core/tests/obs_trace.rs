//! Observability integration: Chrome trace structure, counter
//! determinism, journal metrics, and the progress callback.
//!
//! Every scenario that installs a global recorder lives inside the one
//! sequential test function — `mupod_obs` has a single process-wide
//! dispatcher, so parallel test threads would otherwise see each
//! other's counter traffic.

use std::sync::Mutex;

use mupod_core::{ProfileConfig, Profiler};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::Network;
use mupod_obs::{json, Level, MetricsSnapshot, Phase, Recorder, TraceEvent};

fn setup(seed: u64) -> (Network, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = ModelKind::AlexNet.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let data = Dataset::generate(&spec, seed ^ 3, 16);
    calibrate_head(&mut net, &data, 0.1).unwrap();
    (net, data)
}

fn quick(threads: usize) -> ProfileConfig {
    ProfileConfig {
        n_deltas: 6,
        repeats: 2,
        threads,
        ..Default::default()
    }
}

/// Runs one seeded profile under a fresh recorder and returns what it
/// captured.
fn profile_under_recorder(seed: u64, threads: usize) -> (MetricsSnapshot, Vec<TraceEvent>) {
    let (net, data) = setup(seed);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let recorder = Recorder::new(Level::Info).quiet();
    {
        let _guard = recorder.install();
        Profiler::new(&net, &data.images()[..4])
            .with_config(quick(threads))
            .profile(&layers)
            .expect("profile");
    }
    (recorder.snapshot(), recorder.trace_events())
}

/// Replays the event stream as a per-thread span stack and returns
/// `(parent name, name)` pairs for every Begin event.
fn nesting(events: &[TraceEvent]) -> Vec<(Option<&'static str>, &'static str)> {
    use std::collections::BTreeMap;
    let mut stacks: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
    let mut pairs = Vec::new();
    for ev in events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.phase {
            Phase::Begin => {
                pairs.push((stack.last().copied(), ev.name));
                stack.push(ev.name);
            }
            Phase::End => {
                let open = stack.pop().expect("End without matching Begin");
                assert_eq!(open, ev.name, "unbalanced span nesting on tid {}", ev.tid);
            }
            Phase::Instant => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans {stack:?} on tid {tid}");
    }
    pairs
}

fn trace_spans_balanced(events: &[TraceEvent]) {
    let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
    let ends = events.iter().filter(|e| e.phase == Phase::End).count();
    assert_eq!(begins, ends, "begin/end events must balance");
    nesting(events); // panics on per-tid imbalance
}

#[test]
fn observability_scenarios() {
    // --- Chrome trace: valid JSON, balanced, nesting matches the model.
    let (snap, events) = profile_under_recorder(0x0b5, 1);
    trace_spans_balanced(&events);

    let mut buf = Vec::new();
    mupod_obs::write_chrome_trace(&events, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let value = json::parse(&text).expect("trace is valid JSON");
    let top = value.as_object().expect("trace root is an object");
    let listed = top["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(listed.len(), events.len());
    for ev in listed {
        let obj = ev.as_object().expect("event object");
        let ph = obj["ph"].as_str().unwrap();
        assert!(matches!(ph, "B" | "E" | "i"), "unexpected phase {ph}");
        assert_eq!(obj["pid"].as_f64(), Some(1.0));
        assert!(obj["ts"].as_f64().is_some());
    }

    // With threads == 1 everything runs on one tid and the hierarchy is
    // exactly: profile.sweep ⊃ (profile.clean_pass, 5 × profile.layer),
    // each layer span wrapping one profile.fit.
    let pairs = nesting(&events);
    assert!(pairs.contains(&(None, "profile.sweep")));
    assert!(pairs.contains(&(Some("profile.sweep"), "profile.clean_pass")));
    let layer_spans = pairs
        .iter()
        .filter(|(parent, name)| *name == "profile.layer" && *parent == Some("profile.sweep"))
        .count();
    assert_eq!(layer_spans, 5, "one profile.layer span per AlexNet layer");
    let fits = pairs
        .iter()
        .filter(|(parent, name)| *name == "profile.fit" && *parent == Some("profile.layer"))
        .count();
    assert_eq!(fits, 5, "one profile.fit span inside each profile.layer");

    // Counters reflect the tiny run's shape.
    assert_eq!(snap.counters["profile.layers_profiled"], 5);
    assert_eq!(snap.counters["profile.deltas_injected"], 5 * 6);
    assert!(snap.counters["nn.forward_passes"] > 0);
    assert!(snap.counters["nn.suffix_replays"] > 0);
    assert_eq!(snap.histograms["profile.r_squared"].count, 5);

    // --- Counter determinism: identical seeds ⇒ identical counters,
    // histograms and span structure, at any thread count.
    let (snap2, events2) = profile_under_recorder(0x0b5, 1);
    assert_eq!(snap.counters, snap2.counters);
    assert_eq!(snap.histograms, snap2.histograms);
    assert_eq!(
        snap.spans.keys().collect::<Vec<_>>(),
        snap2.spans.keys().collect::<Vec<_>>()
    );
    assert_eq!(events.len(), events2.len());

    let (snap4, events4) = profile_under_recorder(0x0b5, 4);
    assert_eq!(
        snap.counters, snap4.counters,
        "counters must not depend on thread count"
    );
    assert_eq!(snap.histograms, snap4.histograms);
    assert_eq!(events.len(), events4.len());
    trace_spans_balanced(&events4);

    // --- Journal counters: fresh run appends every record; a resumed
    // run replays them all from disk and appends none.
    let (net, data) = setup(0x0b6);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let dir = std::env::temp_dir().join(format!("mupod_obs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&path);

    let recorder = Recorder::new(Level::Info).quiet();
    {
        let _guard = recorder.install();
        Profiler::new(&net, &data.images()[..4])
            .with_config(quick(1))
            .profile_journaled(&layers, &path)
            .expect("fresh journaled profile");
    }
    let fresh = recorder.snapshot();
    assert_eq!(fresh.counters["journal.records_appended"], 5);
    assert!(fresh.counters["journal.bytes_written"] > 0);
    assert!(!fresh.counters.contains_key("journal.layers_resumed"));

    let recorder = Recorder::new(Level::Info).quiet();
    {
        let _guard = recorder.install();
        Profiler::new(&net, &data.images()[..4])
            .with_config(quick(1))
            .profile_journaled(&layers, &path)
            .expect("resumed journaled profile");
    }
    let resumed = recorder.snapshot();
    assert_eq!(resumed.counters["journal.layers_resumed"], 5);
    assert!(!resumed.counters.contains_key("journal.records_appended"));
    std::fs::remove_dir_all(&dir).ok();

    // --- Progress callback: monotone (done, total) per completed layer.
    let (net, data) = setup(0x0b7);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let seen: Mutex<Vec<(usize, usize, String)>> = Mutex::new(Vec::new());
    Profiler::new(&net, &data.images()[..4])
        .with_config(quick(1))
        .with_progress(|done, total, name| {
            seen.lock().unwrap().push((done, total, name.to_string()));
        })
        .profile(&layers)
        .expect("profile with progress");
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), 5);
    assert_eq!(
        seen.iter().map(|(d, _, _)| *d).collect::<Vec<_>>(),
        vec![1, 2, 3, 4, 5]
    );
    assert!(seen.iter().all(|(_, t, _)| *t == 5));
    assert!(seen.iter().all(|(_, _, n)| !n.is_empty()));
}
