//! Fault-injection harness: every fault a hostile environment can throw
//! at the profile → allocate → evaluate pipeline must surface as a typed
//! error or a documented conservative fallback — never a panic, never a
//! silently wrong answer.
//!
//! Faults covered: NaN/Inf activations (via poisoned images and poisoned
//! weights), degenerate Eq. 5 fits, and journal corruption (truncation,
//! bit flips, wrong schema version, foreign configuration).

use mupod_core::{
    allocate, AllocateConfig, CoreError, JournalError, Objective, OptimizeError,
    PrecisionOptimizer, Profile, ProfileConfig, ProfileError, Profiler,
};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::tap::{FaultKind, FaultTap};
use mupod_nn::{ExecError, Network, ValidateConfig};
use std::path::PathBuf;

fn setup(seed: u64) -> (Network, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = ModelKind::AlexNet.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let data = Dataset::generate(&spec, seed ^ 3, 24);
    calibrate_head(&mut net, &data, 0.1).unwrap();
    (net, data)
}

fn quick() -> ProfileConfig {
    ProfileConfig {
        n_deltas: 6,
        repeats: 2,
        ..Default::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mupod_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

// ---------------------------------------------------------------------
// NaN/Inf activations
// ---------------------------------------------------------------------

#[test]
fn poisoned_image_is_a_typed_error() {
    let (net, data) = setup(0xF1);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let mut images = data.images()[..4].to_vec();
    images[2].data_mut()[5] = f32::NAN;
    let err = Profiler::new(&net, &images)
        .with_config(quick())
        .profile(&layers)
        .unwrap_err();
    match err {
        ProfileError::NumericalFault(ExecError::NonFiniteInput { .. }) => {}
        e => panic!("expected NonFiniteInput, got {e:?}"),
    }
}

#[test]
fn poisoned_weight_is_blamed_on_its_layer() {
    for bad in [f32::NAN, f32::INFINITY] {
        let (mut net, data) = setup(0xF2);
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let victim = layers[2];
        net.update_layer_weights(victim, |w, _| w.data_mut()[0] = bad);
        let err = Profiler::new(&net, &data.images()[..4])
            .with_config(quick())
            .profile(&layers)
            .unwrap_err();
        match err {
            ProfileError::NumericalFault(ExecError::NonFiniteActivation { node, .. }) => {
                assert_eq!(
                    node, victim,
                    "fault must be attributed to the poisoned layer"
                )
            }
            e => panic!("expected NonFiniteActivation, got {e:?}"),
        }
    }
}

#[test]
fn full_pipeline_surfaces_numerical_faults_without_panicking() {
    let (mut net, data) = setup(0xF3);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    net.update_layer_weights(layers[0], |w, _| w.data_mut()[1] = f32::NAN);
    let err = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .profile_config(quick())
        .profile_images(4)
        .run(Objective::Bandwidth)
        .unwrap_err();
    match err {
        OptimizeError::Profile(ProfileError::NumericalFault(_)) => {}
        e => panic!("expected a profiling numerical fault, got {e:?}"),
    }
}

#[test]
fn fault_tap_on_checked_pass_never_panics() {
    let (net, data) = setup(0xF4);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let image = &data.images()[0];
    for kind in [FaultKind::Nan, FaultKind::PosInf, FaultKind::NegInf] {
        for &layer in &layers {
            let mut tap = FaultTap::single_element(layer, kind);
            let res = net.forward_tapped_checked(image, &mut tap, ValidateConfig::default());
            let err = res.expect_err("fault must be detected");
            assert!(
                matches!(err, ExecError::NonFiniteActivation { .. }),
                "{err:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Degenerate fits → conservative fallback
// ---------------------------------------------------------------------

#[test]
fn fallback_layer_flows_through_allocation_at_max_precision() {
    // A profile with one healthy layer and one flagged fallback, loaded
    // through the public CSV surface.
    let csv = "\
node,name,lambda,theta,r_squared,max_relative_error,max_abs,input_elems,macs,fallback
1,good,0.5,0.01,0.999,0.03,4.0,1000,1000,-
4,broken,0,0,0,0,4.0,1000,1000,neg_slope
";
    let profile = Profile::load_csv(csv.as_bytes()).unwrap();
    assert_eq!(profile.fallback_layers().len(), 1);
    assert_eq!(profile.fallback_layers()[0].0, "broken");

    let outcome = allocate(
        &profile,
        0.1,
        &Objective::Bandwidth,
        &AllocateConfig::default(),
    );
    let bits = outcome.allocation.bits();
    assert_eq!(bits.len(), 2);
    // The fallback layer's Δ is clamped to the f32 floor, so it must be
    // granted at least as many fractional bits as the measured layer —
    // conservative, never silently under-provisioned.
    assert!(
        bits[1] > bits[0],
        "fallback layer got {} bits vs healthy {}",
        bits[1],
        bits[0]
    );
}

// ---------------------------------------------------------------------
// Journal corruption
// ---------------------------------------------------------------------

/// Produces a completed journal plus the reference profile, shared by the
/// corruption tests below.
fn journaled_run(
    name: &str,
    seed: u64,
) -> (Network, Dataset, Vec<mupod_nn::NodeId>, PathBuf, Profile) {
    let (net, data) = setup(seed);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let path = temp_path(name);
    let _ = std::fs::remove_file(&path);
    let (profile, summary) = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap();
    assert_eq!(summary.resumed, 0);
    assert_eq!(summary.computed, layers.len());
    (net, data, layers, path, profile)
}

#[test]
fn killed_run_resumes_bit_identical() {
    let (net, data, layers, path, reference) = journaled_run("resume.journal", 0xF5);

    // The journaled result matches a plain uninterrupted run exactly.
    let plain = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile(&layers)
        .unwrap();
    assert_eq!(reference, plain, "journaled != plain profiling");

    // Kill simulation: drop the last record's tail (unterminated line).
    let text = std::fs::read_to_string(&path).unwrap();
    let cut = text.trim_end().rfind('\n').unwrap() + 10;
    std::fs::write(&path, &text[..cut]).unwrap();

    let (resumed, summary) = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap();
    assert_eq!(summary.resumed, layers.len() - 1);
    assert_eq!(summary.computed, 1);
    assert!(summary.dropped_partial_record);
    // Bit-identical LayerProfiles, sweeps included.
    assert_eq!(resumed, reference);
}

#[test]
fn flipped_byte_in_journal_is_corrupt_not_wrong() {
    let (net, data, layers, path, _) = journaled_run("bitflip.journal", 0xF6);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a bit inside the second record's payload (well past the
    // header line and the first record's checksum).
    let record_starts: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let target = record_starts[1] + 30;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let err = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap_err();
    match err {
        CoreError::Journal(JournalError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("checksum") || reason.contains("bad"),
                "{reason}"
            )
        }
        e => panic!("expected Corrupt, got {e:?}"),
    }
}

#[test]
fn wrong_journal_version_is_rejected() {
    let (net, data, layers, path, _) = journaled_run("version.journal", 0xF7);
    let text = std::fs::read_to_string(&path).unwrap();
    let rest = text.split_once('\n').unwrap().1;
    let patched = format!(
        "{}\n{rest}",
        text.lines().next().unwrap().replace(" v1 ", " v99 ")
    );
    std::fs::write(&path, patched).unwrap();

    let err = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap_err();
    match err {
        CoreError::Journal(JournalError::UnsupportedVersion(v)) => assert_eq!(v, "v99"),
        e => panic!("expected UnsupportedVersion, got {e:?}"),
    }
}

#[test]
fn foreign_config_journal_is_rejected() {
    let (net, data, layers, path, _) = journaled_run("config.journal", 0xF8);
    // Same journal, different sweep seed: resuming would silently mix
    // measurements from two different experiments.
    let err = Profiler::new(&net, &data.images()[..4])
        .with_config(ProfileConfig {
            seed: 0xDEAD,
            ..quick()
        })
        .profile_journaled(&layers, &path)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Journal(JournalError::ConfigMismatch { .. })),
        "{err:?}"
    );
}

#[test]
fn non_journal_file_is_rejected() {
    let (net, data) = setup(0xF9);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let path = temp_path("notajournal.journal");
    std::fs::write(&path, "totally,a,csv\n1,2,3\n").unwrap();
    let err = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::Journal(JournalError::BadHeader(_))),
        "{err:?}"
    );
}

#[test]
fn empty_journal_file_starts_fresh() {
    let (net, data) = setup(0xFA);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let path = temp_path("empty.journal");
    std::fs::write(&path, "").unwrap();
    let (profile, summary) = Profiler::new(&net, &data.images()[..4])
        .with_config(quick())
        .profile_journaled(&layers, &path)
        .unwrap();
    assert_eq!(summary.resumed, 0);
    assert_eq!(profile.len(), layers.len());
}
