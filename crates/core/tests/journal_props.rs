//! Property tests for journal robustness, in the style of
//! `crates/data/tests/dataset_props.rs`: for *any* truncation point and
//! *any* single-bit flip, resuming from a damaged journal must either
//! fail with a typed journal error or produce a profile bit-identical
//! to the undamaged run — never a panic, never a silently wrong answer.

use mupod_core::{CoreError, Profile, ProfileConfig, Profiler};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::{Network, NodeId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

struct Fixture {
    net: Network,
    data: Dataset,
    layers: Vec<NodeId>,
    journal: Vec<u8>,
    reference: Profile,
}

fn quick() -> ProfileConfig {
    ProfileConfig {
        n_deltas: 4,
        repeats: 2,
        ..Default::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mupod_journal_props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One profiled run shared by every generated case: the pristine journal
/// bytes plus the profile they encode.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 0xA11);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw)
            .with_class_seed(0xA11);
        let data = Dataset::generate(&spec, 0xA11 ^ 3, 8);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        let layers = ModelKind::AlexNet.analyzable_layers(&net)[..3].to_vec();
        let path = scratch("pristine.journal");
        let _ = std::fs::remove_file(&path);
        let (reference, _) = Profiler::new(&net, &data.images()[..3])
            .with_config(quick())
            .profile_journaled(&layers, &path)
            .unwrap();
        let journal = std::fs::read(&path).unwrap();
        Fixture {
            net,
            data,
            layers,
            journal,
            reference,
        }
    })
}

/// Re-runs the sweep against `bytes` as the on-disk journal and returns
/// the outcome, using a per-test scratch file.
fn resume_from(name: &str, bytes: &[u8]) -> Result<Profile, CoreError> {
    let fx = fixture();
    let path = scratch(name);
    std::fs::write(&path, bytes).unwrap();
    Profiler::new(&fx.net, &fx.data.images()[..3])
        .with_config(quick())
        .profile_journaled(&fx.layers, &path)
        .map(|(p, _)| p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A journal cut anywhere — mid-header, mid-record, at a record
    /// boundary, or to nothing — resumes to the reference profile or
    /// fails typed. (A clean cut merely drops the unterminated tail.)
    #[test]
    fn any_truncation_resumes_or_fails_typed(frac in 0.0f64..1.0) {
        let fx = fixture();
        let cut = (frac * fx.journal.len() as f64) as usize;
        match resume_from("truncated.journal", &fx.journal[..cut]) {
            Ok(profile) => prop_assert_eq!(&profile, &fx.reference),
            Err(CoreError::Journal(_)) => {}
            Err(e) => prop_assert!(false, "non-journal error from truncation: {e}"),
        }
    }

    /// Flipping any single bit anywhere in the journal is either caught
    /// (checksum, header validation, unterminated tail) or harmless —
    /// it can never smuggle in different profiling results.
    #[test]
    fn any_bit_flip_is_caught_or_harmless(frac in 0.0f64..1.0, bit in 0usize..8) {
        let fx = fixture();
        let idx = ((frac * fx.journal.len() as f64) as usize).min(fx.journal.len() - 1);
        let mut bytes = fx.journal.clone();
        bytes[idx] ^= 1 << bit;
        // `read_to_string` on the resumed run requires UTF-8; a flip that
        // produces invalid UTF-8 surfaces as a typed Io error, which the
        // invariant also accepts.
        match resume_from("bitflip.journal", &bytes) {
            Ok(profile) => prop_assert_eq!(&profile, &fx.reference),
            Err(CoreError::Journal(_)) => {}
            Err(e) => prop_assert!(false, "non-journal error from bit flip: {e}"),
        }
    }
}
