//! Pipeline variants not covered by the unit tests: Scheme 2 end to
//! end, generator-label accuracy, unweighted objectives, and the
//! refinement bookkeeping.

use mupod_core::{AccuracyMode, Objective, PrecisionOptimizer, ProfileConfig, SearchScheme};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::Network;

fn setup(seed: u64) -> (Network, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = ModelKind::AlexNet.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let data = Dataset::generate(&spec, seed ^ 3, 48);
    calibrate_head(&mut net, &data, 0.1).unwrap();
    (net, data)
}

fn quick() -> ProfileConfig {
    ProfileConfig {
        n_deltas: 10,
        repeats: 2,
        ..Default::default()
    }
}

#[test]
fn scheme2_pipeline_end_to_end() {
    let (net, data) = setup(0x51);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let result = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .scheme(SearchScheme::GaussianApprox)
        .profile_config(quick())
        .profile_images(8)
        .run(Objective::MacEnergy)
        .expect("scheme 2 pipeline");
    assert!(result.sigma.sigma > 0.0);
    assert!(result.validated_accuracy >= 0.85);
}

#[test]
fn generator_labels_mode_targets_real_accuracy() {
    let (net, data) = setup(0x52);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let result = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .accuracy_mode(AccuracyMode::GeneratorLabels)
        .profile_config(quick())
        .profile_images(8)
        .run(Objective::Bandwidth)
        .expect("generator-label pipeline");
    // fp accuracy under generator labels is below 1.0 (the probe is not
    // perfect), and the validated accuracy respects the relative budget.
    assert!(result.fp_accuracy < 1.0);
    assert!(result.fp_accuracy > 0.5);
    assert!(
        result.validated_accuracy >= result.fp_accuracy * 0.95 - 0.1,
        "validated {} vs fp {}",
        result.validated_accuracy,
        result.fp_accuracy
    );
}

#[test]
fn unweighted_objective_runs() {
    let (net, data) = setup(0x53);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let result = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .profile_config(quick())
        .profile_images(8)
        .skip_validation()
        .run(Objective::Unweighted)
        .expect("unweighted pipeline");
    assert!(result.validated_accuracy.is_nan(), "skip_validation => NaN");
    let sum: f64 = result.xi.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);
}

#[test]
fn refinement_never_grows_sigma() {
    let (net, data) = setup(0x54);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let result = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .profile_config(quick())
        .profile_images(8)
        .run(Objective::Bandwidth)
        .expect("pipeline");
    assert!(
        result.sigma_allocated <= result.sigma.sigma.max(1e-6) + 1e-12,
        "allocated σ {} exceeds searched σ {}",
        result.sigma_allocated,
        result.sigma.sigma
    );
}

#[test]
fn scheme1_and_scheme2_allocations_are_comparable() {
    // §V-C supports both schemes interchangeably: their final effective
    // bitwidths should be within ~2 bits of each other.
    let (net, data) = setup(0x55);
    let layers = ModelKind::AlexNet.analyzable_layers(&net);
    let s1 = PrecisionOptimizer::new(&net, &data)
        .layers(layers.clone())
        .relative_accuracy_loss(0.05)
        .profile_config(quick())
        .profile_images(8)
        .skip_validation()
        .run(Objective::Bandwidth)
        .expect("scheme 1");
    let s2 = PrecisionOptimizer::new(&net, &data)
        .layers(layers)
        .relative_accuracy_loss(0.05)
        .scheme(SearchScheme::GaussianApprox)
        .with_profile(s1.profile.clone())
        .skip_validation()
        .run(Objective::Bandwidth)
        .expect("scheme 2");
    let rho = vec![1.0; s1.allocation.len()];
    let e1 = s1.allocation.effective_bitwidth(&rho);
    let e2 = s2.allocation.effective_bitwidth(&rho);
    assert!(
        (e1 - e2).abs() < 2.5,
        "scheme effective bitwidths diverge: {e1} vs {e2}"
    );
}
