//! End-to-end two-tier contract checks (DESIGN.md §16): the fast tier
//! may reassociate every inner product, but on a calibrated model it
//! must classify every image the same as the exact tier, and the exact
//! tier must stay byte-for-byte the default.

use mupod_core::{AccuracyEvaluator, AccuracyMode};
use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::{ExecArena, KernelTier, Network};

fn setup(seed: u64, images: usize) -> (Network, Dataset) {
    let scale = ModelScale::tiny();
    let mut net = ModelKind::AlexNet.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let data = Dataset::generate(&spec, seed ^ 3, images);
    calibrate_head(&mut net, &data, 0.1).unwrap();
    (net, data)
}

#[test]
fn fast_tier_keeps_every_top1_prediction() {
    let (net, data) = setup(0x61, 64);
    let mut exact = ExecArena::for_network_tier(&net, KernelTier::Exact);
    let mut fast = ExecArena::for_network_tier(&net, KernelTier::Fast);
    assert_eq!(exact.tier(), KernelTier::Exact);
    assert_eq!(fast.tier(), KernelTier::Fast);
    let mut agreements = 0usize;
    for img in data.images() {
        let (pe, pf) = (
            net.classify_arena(img, &mut exact),
            net.classify_arena(img, &mut fast),
        );
        assert_eq!(pe, pf, "tiers disagree on a top-1 class");
        agreements += 1;
    }
    assert_eq!(agreements, data.len());
}

#[test]
fn fast_tier_evaluator_reports_identical_top1_counts() {
    let (net, data) = setup(0x62, 48);
    // Both evaluators score the same generator labels; identical top-1
    // predictions mean identical clean-accuracy counts, so fp_accuracy
    // must agree exactly (it is a ratio of two integer counts).
    let exact = AccuracyEvaluator::with_threads_tier(
        &net,
        &data,
        AccuracyMode::GeneratorLabels,
        1,
        KernelTier::Exact,
    );
    let fast = AccuracyEvaluator::with_threads_tier(
        &net,
        &data,
        AccuracyMode::GeneratorLabels,
        1,
        KernelTier::Fast,
    );
    assert_eq!(exact.tier(), KernelTier::Exact);
    assert_eq!(fast.tier(), KernelTier::Fast);
    assert_eq!(
        exact.fp_accuracy(),
        fast.fp_accuracy(),
        "top-1 counts changed under the fast tier"
    );
}

#[test]
fn exact_tier_is_the_default_and_stays_bit_reproducible() {
    let (net, data) = setup(0x63, 16);
    let default_arena = ExecArena::for_network(&net);
    assert_eq!(default_arena.tier(), KernelTier::Exact);
    // Two independent exact arenas must produce bit-identical logits —
    // the property every recorded artifact's byte-stability rests on.
    let mut a = ExecArena::for_network_tier(&net, KernelTier::Exact);
    let mut b = ExecArena::for_network_tier(&net, KernelTier::Exact);
    for img in data.images() {
        let la = net.output(net.forward_arena(img, &mut a)).data().to_vec();
        let lb = net.output(net.forward_arena(img, &mut b)).data().to_vec();
        let bits_a: Vec<u32> = la.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u32> = lb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b);
    }
}
