//! Analytical per-layer *weight* bitwidth allocation (extension).
//!
//! The paper's Eq. 2 carries both a `δ_x` and a `δ_w` term, but §V-E
//! only integrates Stripes' empirical search for a single uniform weight
//! width. This module closes the gap the paper leaves open: the same
//! Eq. 5 machinery — inject uniform noise, measure the output error
//! s.d., fit a per-layer line — applies verbatim when the noise goes
//! into the *weights* instead of the inputs:
//!
//! `Δ_{W_K} ≈ λʷ_K · σ_{Y_{K→Ł}} + θʷ_K`.
//!
//! The result is packaged as an ordinary [`Profile`] (with `max|W_K|`
//! in the range slot and the layer's weight count as its bandwidth
//! weight), so [`crate::allocate`] distributes a weight-error budget
//! across layers with no new code, and the granted `Δ_{W_K}` convert to
//! per-layer weight formats exactly like input formats do.
//!
//! Profiling cost is higher than the input profiler's: perturbing
//! weights invalidates the layer itself, so each probe clones the layer
//! (cheap) and replays the suffix from the clean activation cache.
//! Note that one weight perturbation is *shared* by all images (as real
//! rounding would be), so `ProfileConfig::repeats` is the effective
//! sample count of each σ estimate — use ≥ 8 repeats here where the
//! input profiler is happy with 2.

use crate::profile::{fit_sweep_guarded, LayerProfile, Profile, ProfileConfig, ProfileError};
use mupod_nn::inventory::LayerInventory;
use mupod_nn::tap::NoTap;
use mupod_nn::{Network, NodeId, Op};
use mupod_stats::{RunningStats, SeededRng};
use mupod_tensor::Tensor;

/// Largest absolute weight and weight count of a dot-product layer, or
/// `None` for any other node kind.
fn weight_stats(net: &Network, id: NodeId) -> Option<(f64, u64)> {
    match &net.node(id).op {
        Op::Conv2d { weight, .. } | Op::FullyConnected { weight, .. } => {
            Some((weight.max_abs() as f64, weight.numel() as u64))
        }
        _ => None,
    }
}

/// Profiles the weight-noise response of each layer, producing a
/// [`Profile`] whose lines relate `Δ_{W_K}` to the output error s.d.
///
/// Inventory conventions inside the returned profile:
/// * `max_abs` is `max|W_K|` (drives the weight format's integer bits);
/// * `input_elems` is the layer's weight count (so
///   [`crate::Objective::Bandwidth`] weighs by weight-storage traffic);
/// * `macs` is the layer's MAC count (so [`crate::Objective::MacEnergy`]
///   keeps its meaning).
///
/// # Errors
///
/// Same failure modes as the input profiler ([`ProfileError`]).
pub fn profile_weights(
    net: &Network,
    images: &[Tensor],
    layers: &[NodeId],
    config: &ProfileConfig,
) -> Result<Profile, ProfileError> {
    if images.is_empty() {
        return Err(ProfileError::NoImages);
    }
    if layers.is_empty() {
        return Err(ProfileError::NoLayers);
    }
    // Validated up front, same policy as the input profiler: poisoned
    // weights or images must fail fast with a typed error.
    let clean: Vec<_> = if config.guard.validate_activations {
        images
            .iter()
            .map(|img| net.forward_checked(img))
            .collect::<Result<_, _>>()?
    } else {
        images.iter().map(|img| net.forward(img)).collect()
    };
    let inventory = LayerInventory::measure(net, images.iter().cloned());
    let rng = SeededRng::new(config.seed ^ 0x77EE);

    let mut out = Vec::with_capacity(layers.len());
    for (li, &layer) in layers.iter().enumerate() {
        let (w_max, w_count) =
            weight_stats(net, layer).ok_or(ProfileError::NotAnalyzable(layer))?;
        let scale = if w_max > 0.0 { w_max } else { 1.0 };
        let mut sigmas = Vec::with_capacity(config.n_deltas);
        let mut deltas = Vec::with_capacity(config.n_deltas);
        for j in 0..config.n_deltas {
            let delta = scale
                * config.delta_max_fraction
                * (-(j as f64) * config.delta_step_octaves).exp2();
            let mut stats = RunningStats::new();
            for rep in 0..config.repeats.max(1) {
                // One weight perturbation per repeat, replayed over all
                // images (a fixed weight error is shared across images,
                // matching how rounding error behaves).
                let stream = ((li as u64) << 44) ^ ((j as u64) << 28) ^ rep as u64;
                let mut noise_rng = rng.fork(stream);
                let noisy = net.with_perturbed_weights(layer, delta, &mut noise_rng);
                for base in &clean {
                    let out_t = if config.guard.validate_activations {
                        noisy.forward_suffix_checked(
                            base,
                            layer,
                            &mut NoTap,
                            mupod_nn::ValidateConfig::default(),
                        )?
                    } else {
                        noisy.forward_suffix(base, layer, &mut NoTap)
                    };
                    let ref_out = net.output(base);
                    for (a, b) in out_t.data().iter().zip(ref_out.data()) {
                        stats.push((a - b) as f64);
                    }
                }
            }
            sigmas.push(stats.population_std());
            deltas.push(delta);
        }
        let name = net.node(layer).name.clone();
        let fit = fit_sweep_guarded(&name, &sigmas, &deltas, &config.guard)?;
        let info = inventory
            .find(layer)
            .ok_or(ProfileError::NotAnalyzable(layer))?;
        out.push(LayerProfile {
            node: layer,
            name,
            lambda: fit.lambda,
            theta: fit.theta,
            r_squared: fit.r_squared,
            max_relative_error: fit.max_relative_error,
            max_abs: w_max,
            input_elems: w_count,
            macs: info.macs,
            sweep: sigmas.into_iter().zip(deltas).collect(),
            fallback: fit.fallback,
        });
    }
    Ok(Profile::from_layers(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{allocate, AllocateConfig, Objective};
    use mupod_data::{Dataset, DatasetSpec};
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};

    fn setup() -> (Network, Dataset) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::Nin.build(&scale, 0x3E1);
        let spec =
            DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(1);
        let data = Dataset::generate(&spec, 2, 16);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        (net, data)
    }

    #[test]
    fn weight_lines_are_linear_too() {
        let (net, data) = setup();
        let layers = &ModelKind::Nin.analyzable_layers(&net)[..4];
        let profile = profile_weights(
            &net,
            &data.images()[..6],
            layers,
            &ProfileConfig {
                n_deltas: 8,
                repeats: 10,
                ..Default::default()
            },
        )
        .unwrap();
        for l in profile.layers() {
            assert!(l.lambda > 0.0, "{}: λʷ = {}", l.name, l.lambda);
            assert!(
                l.r_squared > 0.9,
                "{}: weight-noise linearity broke (R² = {})",
                l.name,
                l.r_squared
            );
            // max_abs is the weight range, well below activation ranges.
            assert!(l.max_abs < 5.0, "{}: {}", l.name, l.max_abs);
        }
    }

    #[test]
    fn weight_profile_feeds_the_standard_allocator() {
        let (net, data) = setup();
        let layers = &ModelKind::Nin.analyzable_layers(&net)[..4];
        let profile = profile_weights(
            &net,
            &data.images()[..4],
            layers,
            &ProfileConfig {
                n_deltas: 6,
                repeats: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let outcome = allocate(
            &profile,
            0.05,
            &Objective::Bandwidth,
            &AllocateConfig::default(),
        );
        assert_eq!(outcome.allocation.len(), 4);
        // Weight formats land in a plausible range (weights are small).
        for lf in outcome.allocation.layers() {
            assert!(lf.format.int_bits() <= 4, "{:?}", lf.format);
            assert!(lf.bits() >= 1);
        }
    }

    #[test]
    fn errors_on_empty_inputs() {
        let (net, data) = setup();
        let layers = ModelKind::Nin.analyzable_layers(&net);
        assert!(matches!(
            profile_weights(&net, &[], &layers, &ProfileConfig::default()),
            Err(ProfileError::NoImages)
        ));
        assert!(matches!(
            profile_weights(&net, data.images(), &[], &ProfileConfig::default()),
            Err(ProfileError::NoLayers)
        ));
    }
}
