//! Weight bitwidth search (§V-E).
//!
//! Stripes/Loom pick a single weight bitwidth per network; the paper
//! integrates "the same method at the end of the input optimization
//! process": after input formats are fixed, lower the uniform weight
//! bitwidth while the accuracy constraint still holds. The search is a
//! simple descending scan — weight quantization accuracy is monotone
//! enough in practice, and the candidate range is tiny (1..=16).

use crate::eval::AccuracyEvaluator;
use mupod_nn::{Network, NodeId};
use mupod_quant::FixedPointFormat;
use std::collections::HashMap;

/// Finds the smallest uniform weight bitwidth in `[min_bits, max_bits]`
/// that keeps accuracy at or above `target_accuracy`, with the given
/// per-layer *input* formats simultaneously applied.
///
/// Returns `(weight_bits, accuracy)`; falls back to `max_bits` if even
/// that violates the target (the caller can then relax its budget).
///
/// # Panics
///
/// Panics if `min_bits == 0` or `min_bits > max_bits`.
pub fn search_weight_bits(
    net: &Network,
    evaluator_dataset: &mupod_data::Dataset,
    mode: crate::eval::AccuracyMode,
    input_formats: &HashMap<NodeId, FixedPointFormat>,
    target_accuracy: f64,
    min_bits: u32,
    max_bits: u32,
) -> (u32, f64) {
    assert!(min_bits > 0, "weight bitwidth must be positive");
    assert!(min_bits <= max_bits, "empty weight bitwidth range");
    let mut chosen = max_bits;
    let mut chosen_acc = 0.0;
    for bits in (min_bits..=max_bits).rev() {
        let quantized = net.with_quantized_weights(bits);
        // The evaluator references the *quantized* network so fp-agreement
        // still compares against the original labels semantics: reuse the
        // original network's reference predictions by evaluating the
        // quantized network on the original evaluator's targets.
        let ev = AccuracyEvaluator::new(net, evaluator_dataset, mode);
        let acc = {
            let formats = input_formats.clone();
            // Quantize inputs on the weight-quantized clone.
            let root = &quantized;
            evaluator_accuracy_on(&ev, root, &formats)
        };
        if acc >= target_accuracy {
            chosen = bits;
            chosen_acc = acc;
        } else {
            break;
        }
    }
    // lint:allow(no-float-eq) reason=0.0 is the never-assigned sentinel, not a computed accuracy; any measured accuracy overwrites it
    if chosen_acc == 0.0 {
        // Even max_bits failed; report its measured accuracy.
        let quantized = net.with_quantized_weights(max_bits);
        let ev = AccuracyEvaluator::new(net, evaluator_dataset, mode);
        chosen_acc = evaluator_accuracy_on(&ev, &quantized, input_formats);
        chosen = max_bits;
    }
    (chosen, chosen_acc)
}

/// Accuracy of `other` (a weight-quantized clone) against the reference
/// targets of `ev`, with input quantization applied.
fn evaluator_accuracy_on(
    ev: &AccuracyEvaluator<'_>,
    other: &Network,
    input_formats: &HashMap<NodeId, FixedPointFormat>,
) -> f64 {
    // AccuracyEvaluator does not expose per-image targets, so measure via
    // its quantized-network entry point: temporarily treat `other` as the
    // network and quantize inputs with a tap.
    ev.accuracy_of_network_with_formats(other, input_formats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AccuracyMode;
    use mupod_data::{Dataset, DatasetSpec};
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};

    #[test]
    fn weight_search_returns_feasible_bits() {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 131);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 132, 32);
        calibrate_head(&mut net, &data, 0.1).unwrap();

        // Generous input formats so weights dominate the error.
        let formats: HashMap<NodeId, FixedPointFormat> = net
            .dot_product_layers()
            .into_iter()
            .map(|l| (l, FixedPointFormat::new(12, 10)))
            .collect();
        let (bits, acc) =
            search_weight_bits(&net, &data, AccuracyMode::FpAgreement, &formats, 0.9, 2, 16);
        assert!((2..=16).contains(&bits));
        assert!(
            acc >= 0.9 || bits == 16,
            "reported accuracy {acc} at {bits} bits"
        );
        // The paper's W column sits in the 8-11 bit range; sanity-check
        // ours is not absurdly large.
        assert!(bits <= 14, "weight bits {bits} unexpectedly high");
    }

    #[test]
    fn lower_target_allows_fewer_weight_bits() {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::Nin.build(&scale, 133);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 134, 32);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        let formats: HashMap<NodeId, FixedPointFormat> = net
            .dot_product_layers()
            .into_iter()
            .map(|l| (l, FixedPointFormat::new(12, 10)))
            .collect();
        let (loose_bits, _) =
            search_weight_bits(&net, &data, AccuracyMode::FpAgreement, &formats, 0.7, 1, 16);
        let (tight_bits, _) = search_weight_bits(
            &net,
            &data,
            AccuracyMode::FpAgreement,
            &formats,
            0.99,
            1,
            16,
        );
        assert!(loose_bits <= tight_bits, "{loose_bits} > {tight_bits}");
    }
}
