//! Accuracy evaluation under noise injection and quantization.
//!
//! All evaluation paths are **image-parallel**: workers claim image
//! indices off a shared atomic cursor, each owning one reusable
//! [`ExecArena`] and one tap clone. Determinism is per-index — every
//! image's noise stream is forked from the seed by its position, never
//! by worker schedule — so results are bit-identical for any thread
//! count, which the test suite asserts.

use mupod_data::Dataset;
use mupod_nn::tap::{gaussian_output_noise, QuantizeTap, StochasticQuantizeTap, UniformNoiseTap};
use mupod_nn::{ExecArena, KernelTier, Network, NodeId};
use mupod_quant::{BitwidthAllocation, FixedPointFormat};
use mupod_stats::SeededRng;
use mupod_tensor::Tensor;
use std::collections::HashMap;

/// Runs `predict` over every image, parallelized over an atomic cursor.
///
/// Each worker builds its own state once via `make_state` (an execution
/// arena plus any tap template) and reuses it across the images it
/// claims. `predict` must be deterministic given `(state, index, image)`
/// — index-keyed, not schedule-keyed — so the output is identical for
/// any `threads`.
fn predict_all<S: Send>(
    images: &[Tensor],
    threads: usize,
    make_state: impl Fn() -> S + Sync,
    predict: impl Fn(&mut S, usize, &Tensor) -> usize + Sync,
) -> Vec<usize> {
    let threads = threads.min(images.len()).max(1);
    if threads <= 1 {
        let mut state = make_state();
        return images
            .iter()
            .enumerate()
            .map(|(i, img)| predict(&mut state, i, img))
            .collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let locals: Vec<Vec<(usize, usize)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let make_state = &make_state;
            let predict = &predict;
            handles.push(scope.spawn(move || {
                let mut state = make_state();
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(img) = images.get(i) else {
                        break;
                    };
                    local.push((i, predict(&mut state, i, img)));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // Propagate a worker panic (e.g. a failed kernel assert)
                // instead of swallowing it into a wrong accuracy number.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = vec![0usize; images.len()];
    for (i, p) in locals.into_iter().flatten() {
        out[i] = p;
    }
    out
}

/// What counts as the "correct" label when measuring accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyMode {
    /// The dataset's generator labels (ordinary top-1 accuracy).
    GeneratorLabels,
    /// Agreement with the full-precision model's own predictions —
    /// measures *relative* accuracy directly: the fp32 reference scores
    /// 100 % by construction, exactly the quantity "relative accuracy
    /// drop" compares against.
    FpAgreement,
}

/// Evaluates a network's accuracy on a dataset under various
/// perturbations.
///
/// The reference predictions for [`AccuracyMode::FpAgreement`] are
/// computed once at construction.
pub struct AccuracyEvaluator<'a> {
    net: &'a Network,
    dataset: &'a Dataset,
    mode: AccuracyMode,
    /// Per-image target label under the chosen mode.
    targets: Vec<usize>,
    /// Clean accuracy under the chosen mode.
    fp_accuracy: f64,
    /// Worker threads (`0` = machine parallelism). Results are
    /// bit-identical for any value.
    threads: usize,
    /// Kernel tier every forward pass (reference and noisy) runs on.
    tier: KernelTier,
}

impl std::fmt::Debug for AccuracyEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccuracyEvaluator")
            .field("mode", &self.mode)
            .field("samples", &self.dataset.len())
            .field("fp_accuracy", &self.fp_accuracy)
            .finish()
    }
}

impl<'a> AccuracyEvaluator<'a> {
    /// Builds an evaluator; runs one clean pass per image to establish
    /// the reference. Uses the machine's available parallelism; see
    /// [`AccuracyEvaluator::with_threads`] to pin the worker count.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn new(net: &'a Network, dataset: &'a Dataset, mode: AccuracyMode) -> Self {
        Self::with_threads(net, dataset, mode, 0)
    }

    /// [`AccuracyEvaluator::new`] with an explicit worker-thread count
    /// (`0` = machine parallelism). The thread count never changes any
    /// result — per-image noise streams are keyed by image index — it
    /// only changes wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn with_threads(
        net: &'a Network,
        dataset: &'a Dataset,
        mode: AccuracyMode,
        threads: usize,
    ) -> Self {
        Self::with_threads_tier(net, dataset, mode, threads, KernelTier::Exact)
    }

    /// [`AccuracyEvaluator::with_threads`] with an explicit kernel
    /// tier: every forward pass — the clean reference establishing
    /// pass included — dispatches to `tier`'s kernels. With
    /// [`KernelTier::Exact`] (the default everywhere) results are
    /// bit-exact and byte-reproducible; `Fast` runs the SIMD/FMA
    /// microkernels, whose top-1 agreement with the exact tier is
    /// asserted by the e2e test suite.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn with_threads_tier(
        net: &'a Network,
        dataset: &'a Dataset,
        mode: AccuracyMode,
        threads: usize,
        tier: KernelTier,
    ) -> Self {
        assert!(!dataset.is_empty(), "evaluation dataset must not be empty");
        let resolved = resolve_threads(threads);
        // The fp-reference pass goes through the same parallel engine as
        // every accuracy call: one arena per worker, zero allocation per
        // image once warm.
        let fp_preds = predict_all(
            dataset.images(),
            resolved,
            || ExecArena::for_network_tier(net, tier),
            |arena, _i, img| net.classify_arena(img, arena),
        );
        let (targets, fp_accuracy) = match mode {
            AccuracyMode::GeneratorLabels => {
                let correct = fp_preds
                    .iter()
                    .zip(dataset.labels())
                    .filter(|(p, l)| p == l)
                    .count();
                (
                    dataset.labels().to_vec(),
                    correct as f64 / dataset.len() as f64,
                )
            }
            AccuracyMode::FpAgreement => (fp_preds, 1.0),
        };
        Self {
            net,
            dataset,
            mode,
            targets,
            fp_accuracy,
            threads,
            tier,
        }
    }

    /// The kernel tier this evaluator's forward passes run on.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// The label mode in use.
    pub fn mode(&self) -> AccuracyMode {
        self.mode
    }

    /// Clean (full-precision) accuracy under the chosen mode.
    pub fn fp_accuracy(&self) -> f64 {
        self.fp_accuracy
    }

    /// Number of evaluation samples.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the evaluator holds no samples (never true — construction
    /// rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Runs a state-based parallel prediction over the dataset and
    /// scores it against the targets. `make_state` builds one per-worker
    /// state (arena + tap template); `predict` must be index-keyed
    /// deterministic.
    fn fraction_correct_with<S: Send>(
        &self,
        make_state: impl Fn() -> S + Sync,
        predict: impl Fn(&mut S, usize, &Tensor) -> usize + Sync,
    ) -> f64 {
        mupod_obs::counter_add("eval.images", self.dataset.len() as u64);
        let preds = predict_all(
            self.dataset.images(),
            resolve_threads(self.threads),
            make_state,
            predict,
        );
        let correct = preds
            .iter()
            .zip(&self.targets)
            .filter(|(p, t)| p == t)
            .count();
        correct as f64 / self.dataset.len() as f64
    }

    /// Accuracy with uniform noise `U[-Δ_K, Δ_K]` injected into every
    /// listed layer simultaneously (Scheme 1's test, §V-C).
    ///
    /// Each image uses an independent fork of `seed`, so results do not
    /// depend on evaluation order or thread count.
    pub fn accuracy_uniform_noise(&self, deltas: &HashMap<NodeId, f64>, seed: u64) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct_with(
            || {
                (
                    ExecArena::for_network_tier(self.net, self.tier),
                    UniformNoiseTap::new(deltas.clone(), root.fork(0)),
                )
            },
            |(arena, tap), i, img| {
                tap.set_rng(root.fork(i as u64));
                self.net.classify_tapped_arena(img, tap, arena)
            },
        )
    }

    /// Accuracy with `N(0, σ²)` added to the logits only (Scheme 2's
    /// test, §V-C).
    pub fn accuracy_gaussian_output(&self, sigma: f64, seed: u64) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct_with(
            || ExecArena::for_network_tier(self.net, self.tier),
            |arena, i, img| {
                let acts = self.net.forward_arena(img, arena);
                let mut logits = self.net.output(acts).clone();
                let mut rng = root.fork(i as u64);
                gaussian_output_noise(&mut logits, sigma, &mut rng);
                logits.argmax()
            },
        )
    }

    /// Accuracy with each listed layer's input rounded to its format —
    /// the final validation under true fixed-point arithmetic.
    pub fn accuracy_quantized(&self, formats: &HashMap<NodeId, FixedPointFormat>) -> f64 {
        self.fraction_correct_with(
            || {
                (
                    ExecArena::for_network_tier(self.net, self.tier),
                    QuantizeTap::new(formats.clone()),
                )
            },
            |(arena, tap), _i, img| self.net.classify_tapped_arena(img, tap, arena),
        )
    }

    /// Accuracy with each listed layer's input rounded *stochastically*
    /// to its format — the unbiased-rounding ablation partner of
    /// [`AccuracyEvaluator::accuracy_quantized`].
    pub fn accuracy_quantized_stochastic(
        &self,
        formats: &HashMap<NodeId, FixedPointFormat>,
        seed: u64,
    ) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct_with(
            || {
                (
                    ExecArena::for_network_tier(self.net, self.tier),
                    StochasticQuantizeTap::new(formats.clone(), root.fork(0)),
                )
            },
            |(arena, tap), i, img| {
                tap.set_rng(root.fork(i as u64));
                self.net.classify_tapped_arena(img, tap, arena)
            },
        )
    }

    /// Accuracy of a [`BitwidthAllocation`] whose entries correspond to
    /// `layers` (same order).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn accuracy_of_allocation(
        &self,
        layers: &[NodeId],
        allocation: &BitwidthAllocation,
    ) -> f64 {
        assert_eq!(
            layers.len(),
            allocation.len(),
            "layers/allocation length mismatch"
        );
        let formats: HashMap<NodeId, FixedPointFormat> = layers
            .iter()
            .zip(allocation.layers())
            .map(|(&id, lf)| (id, lf.format))
            .collect();
        self.accuracy_quantized(&formats)
    }

    /// Accuracy of a different network (e.g. weight-quantized clone) on
    /// the same targets.
    ///
    /// # Panics
    ///
    /// Panics if the other network's input shape differs.
    pub fn accuracy_of_network(&self, other: &Network) -> f64 {
        self.fraction_correct_with(
            || ExecArena::for_network_tier(other, self.tier),
            |arena, _i, img| other.classify_arena(img, arena),
        )
    }

    /// Accuracy of a different network with per-layer input quantization
    /// applied — used by the §V-E weight search, where both the weights
    /// (baked into `other`) and the inputs (via `formats`) are reduced.
    ///
    /// The reference targets remain those of the evaluator's original
    /// full-precision network.
    pub fn accuracy_of_network_with_formats(
        &self,
        other: &Network,
        formats: &HashMap<NodeId, FixedPointFormat>,
    ) -> f64 {
        self.fraction_correct_with(
            || {
                (
                    ExecArena::for_network_tier(other, self.tier),
                    QuantizeTap::new(formats.clone()),
                )
            },
            |(arena, tap), _i, img| other.classify_tapped_arena(img, tap, arena),
        )
    }
}

/// Resolves a `threads` knob (`0` = machine parallelism) to a concrete
/// worker count.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_data::DatasetSpec;
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};

    fn setup() -> (Network, Dataset) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 71);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 72, 48);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        (net, data)
    }

    #[test]
    fn fp_agreement_reference_is_perfect() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        assert_eq!(ev.fp_accuracy(), 1.0);
        assert_eq!(ev.len(), 48);
    }

    #[test]
    fn generator_labels_match_dataset_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::GeneratorLabels);
        let direct = data.accuracy_of(|img| net.classify(img));
        assert_eq!(ev.fp_accuracy(), direct);
        assert!(ev.fp_accuracy() > 0.25);
    }

    #[test]
    fn zero_noise_recovers_fp_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let layers = net.dot_product_layers();
        let deltas: HashMap<NodeId, f64> = layers.iter().map(|&l| (l, 0.0)).collect();
        assert_eq!(ev.accuracy_uniform_noise(&deltas, 1), 1.0);
        assert_eq!(ev.accuracy_gaussian_output(0.0, 1), 1.0);
    }

    #[test]
    fn huge_noise_destroys_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let layers = net.dot_product_layers();
        let deltas: HashMap<NodeId, f64> = layers.iter().map(|&l| (l, 1e4)).collect();
        let acc = ev.accuracy_uniform_noise(&deltas, 1);
        assert!(acc < 0.6, "accuracy {acc} should collapse under huge noise");
    }

    #[test]
    fn gaussian_noise_accuracy_is_monotone_in_sigma() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let a_small = ev.accuracy_gaussian_output(0.01, 3);
        let a_big = ev.accuracy_gaussian_output(100.0, 3);
        assert!(a_small > a_big, "{a_small} vs {a_big}");
    }

    #[test]
    fn generous_quantization_preserves_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let formats: HashMap<NodeId, FixedPointFormat> = net
            .dot_product_layers()
            .into_iter()
            .map(|l| (l, FixedPointFormat::new(12, 12)))
            .collect();
        let acc = ev.accuracy_quantized(&formats);
        assert!(acc > 0.95, "24-bit quantization broke accuracy: {acc}");
    }

    #[test]
    fn accuracy_of_network_identity() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        assert_eq!(ev.accuracy_of_network(&net), 1.0);
    }

    #[test]
    fn thread_count_never_changes_results() {
        // Per-image RNG streams are index-keyed, so every accuracy number
        // must be byte-identical at 1 and N worker threads.
        let (net, data) = setup();
        let ev1 = AccuracyEvaluator::with_threads(&net, &data, AccuracyMode::FpAgreement, 1);
        let ev4 = AccuracyEvaluator::with_threads(&net, &data, AccuracyMode::FpAgreement, 4);
        assert_eq!(ev1.fp_accuracy(), ev4.fp_accuracy());

        let layers = net.dot_product_layers();
        let deltas: HashMap<NodeId, f64> = layers.iter().map(|&l| (l, 0.05)).collect();
        assert_eq!(
            ev1.accuracy_uniform_noise(&deltas, 7).to_bits(),
            ev4.accuracy_uniform_noise(&deltas, 7).to_bits()
        );
        assert_eq!(
            ev1.accuracy_gaussian_output(0.3, 7).to_bits(),
            ev4.accuracy_gaussian_output(0.3, 7).to_bits()
        );
        let formats: HashMap<NodeId, FixedPointFormat> = layers
            .iter()
            .map(|&l| (l, FixedPointFormat::new(4, 4)))
            .collect();
        assert_eq!(
            ev1.accuracy_quantized(&formats).to_bits(),
            ev4.accuracy_quantized(&formats).to_bits()
        );
        assert_eq!(
            ev1.accuracy_quantized_stochastic(&formats, 9).to_bits(),
            ev4.accuracy_quantized_stochastic(&formats, 9).to_bits()
        );
    }
}
