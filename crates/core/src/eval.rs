//! Accuracy evaluation under noise injection and quantization.

use mupod_data::Dataset;
use mupod_nn::tap::{gaussian_output_noise, QuantizeTap, StochasticQuantizeTap, UniformNoiseTap};
use mupod_nn::{Network, NodeId};
use mupod_quant::{BitwidthAllocation, FixedPointFormat};
use mupod_stats::SeededRng;
use std::collections::HashMap;

/// What counts as the "correct" label when measuring accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyMode {
    /// The dataset's generator labels (ordinary top-1 accuracy).
    GeneratorLabels,
    /// Agreement with the full-precision model's own predictions —
    /// measures *relative* accuracy directly: the fp32 reference scores
    /// 100 % by construction, exactly the quantity "relative accuracy
    /// drop" compares against.
    FpAgreement,
}

/// Evaluates a network's accuracy on a dataset under various
/// perturbations.
///
/// The reference predictions for [`AccuracyMode::FpAgreement`] are
/// computed once at construction.
pub struct AccuracyEvaluator<'a> {
    net: &'a Network,
    dataset: &'a Dataset,
    mode: AccuracyMode,
    /// Per-image target label under the chosen mode.
    targets: Vec<usize>,
    /// Clean accuracy under the chosen mode.
    fp_accuracy: f64,
}

impl std::fmt::Debug for AccuracyEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccuracyEvaluator")
            .field("mode", &self.mode)
            .field("samples", &self.dataset.len())
            .field("fp_accuracy", &self.fp_accuracy)
            .finish()
    }
}

impl<'a> AccuracyEvaluator<'a> {
    /// Builds an evaluator; runs one clean pass per image to establish
    /// the reference.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn new(net: &'a Network, dataset: &'a Dataset, mode: AccuracyMode) -> Self {
        assert!(!dataset.is_empty(), "evaluation dataset must not be empty");
        let fp_preds: Vec<usize> = dataset
            .images()
            .iter()
            .map(|img| net.classify(img))
            .collect();
        let (targets, fp_accuracy) = match mode {
            AccuracyMode::GeneratorLabels => {
                let correct = fp_preds
                    .iter()
                    .zip(dataset.labels())
                    .filter(|(p, l)| p == l)
                    .count();
                (
                    dataset.labels().to_vec(),
                    correct as f64 / dataset.len() as f64,
                )
            }
            AccuracyMode::FpAgreement => (fp_preds, 1.0),
        };
        Self {
            net,
            dataset,
            mode,
            targets,
            fp_accuracy,
        }
    }

    /// The label mode in use.
    pub fn mode(&self) -> AccuracyMode {
        self.mode
    }

    /// Clean (full-precision) accuracy under the chosen mode.
    pub fn fp_accuracy(&self) -> f64 {
        self.fp_accuracy
    }

    /// Number of evaluation samples.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Whether the evaluator holds no samples (never true — construction
    /// rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    fn fraction_correct<F: FnMut(usize, &mupod_tensor::Tensor) -> usize>(
        &self,
        mut predict: F,
    ) -> f64 {
        mupod_obs::counter_add("eval.images", self.dataset.len() as u64);
        let correct = self
            .dataset
            .images()
            .iter()
            .enumerate()
            .filter(|(i, img)| predict(*i, img) == self.targets[*i])
            .count();
        correct as f64 / self.dataset.len() as f64
    }

    /// Accuracy with uniform noise `U[-Δ_K, Δ_K]` injected into every
    /// listed layer simultaneously (Scheme 1's test, §V-C).
    ///
    /// Each image uses an independent fork of `seed`, so results do not
    /// depend on evaluation order.
    pub fn accuracy_uniform_noise(&self, deltas: &HashMap<NodeId, f64>, seed: u64) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct(|i, img| {
            let mut tap = UniformNoiseTap::new(deltas.clone(), root.fork(i as u64));
            self.net.classify_tapped(img, &mut tap)
        })
    }

    /// Accuracy with `N(0, σ²)` added to the logits only (Scheme 2's
    /// test, §V-C).
    pub fn accuracy_gaussian_output(&self, sigma: f64, seed: u64) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct(|i, img| {
            let acts = self.net.forward(img);
            let mut logits = self.net.output(&acts).clone();
            let mut rng = root.fork(i as u64);
            gaussian_output_noise(&mut logits, sigma, &mut rng);
            logits.argmax()
        })
    }

    /// Accuracy with each listed layer's input rounded to its format —
    /// the final validation under true fixed-point arithmetic.
    pub fn accuracy_quantized(&self, formats: &HashMap<NodeId, FixedPointFormat>) -> f64 {
        self.fraction_correct(|_, img| {
            let mut tap = QuantizeTap::new(formats.clone());
            self.net.classify_tapped(img, &mut tap)
        })
    }

    /// Accuracy with each listed layer's input rounded *stochastically*
    /// to its format — the unbiased-rounding ablation partner of
    /// [`AccuracyEvaluator::accuracy_quantized`].
    pub fn accuracy_quantized_stochastic(
        &self,
        formats: &HashMap<NodeId, FixedPointFormat>,
        seed: u64,
    ) -> f64 {
        let root = SeededRng::new(seed);
        self.fraction_correct(|i, img| {
            let mut tap = StochasticQuantizeTap::new(formats.clone(), root.fork(i as u64));
            self.net.classify_tapped(img, &mut tap)
        })
    }

    /// Accuracy of a [`BitwidthAllocation`] whose entries correspond to
    /// `layers` (same order).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn accuracy_of_allocation(
        &self,
        layers: &[NodeId],
        allocation: &BitwidthAllocation,
    ) -> f64 {
        assert_eq!(
            layers.len(),
            allocation.len(),
            "layers/allocation length mismatch"
        );
        let formats: HashMap<NodeId, FixedPointFormat> = layers
            .iter()
            .zip(allocation.layers())
            .map(|(&id, lf)| (id, lf.format))
            .collect();
        self.accuracy_quantized(&formats)
    }

    /// Accuracy of a different network (e.g. weight-quantized clone) on
    /// the same targets.
    ///
    /// # Panics
    ///
    /// Panics if the other network's input shape differs.
    pub fn accuracy_of_network(&self, other: &Network) -> f64 {
        self.fraction_correct(|_, img| other.classify(img))
    }

    /// Accuracy of a different network with per-layer input quantization
    /// applied — used by the §V-E weight search, where both the weights
    /// (baked into `other`) and the inputs (via `formats`) are reduced.
    ///
    /// The reference targets remain those of the evaluator's original
    /// full-precision network.
    pub fn accuracy_of_network_with_formats(
        &self,
        other: &Network,
        formats: &HashMap<NodeId, FixedPointFormat>,
    ) -> f64 {
        self.fraction_correct(|_, img| {
            let mut tap = QuantizeTap::new(formats.clone());
            other.classify_tapped(img, &mut tap)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_data::DatasetSpec;
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};

    fn setup() -> (Network, Dataset) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 71);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 72, 48);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        (net, data)
    }

    #[test]
    fn fp_agreement_reference_is_perfect() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        assert_eq!(ev.fp_accuracy(), 1.0);
        assert_eq!(ev.len(), 48);
    }

    #[test]
    fn generator_labels_match_dataset_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::GeneratorLabels);
        let direct = data.accuracy_of(|img| net.classify(img));
        assert_eq!(ev.fp_accuracy(), direct);
        assert!(ev.fp_accuracy() > 0.25);
    }

    #[test]
    fn zero_noise_recovers_fp_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let layers = net.dot_product_layers();
        let deltas: HashMap<NodeId, f64> = layers.iter().map(|&l| (l, 0.0)).collect();
        assert_eq!(ev.accuracy_uniform_noise(&deltas, 1), 1.0);
        assert_eq!(ev.accuracy_gaussian_output(0.0, 1), 1.0);
    }

    #[test]
    fn huge_noise_destroys_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let layers = net.dot_product_layers();
        let deltas: HashMap<NodeId, f64> = layers.iter().map(|&l| (l, 1e4)).collect();
        let acc = ev.accuracy_uniform_noise(&deltas, 1);
        assert!(acc < 0.6, "accuracy {acc} should collapse under huge noise");
    }

    #[test]
    fn gaussian_noise_accuracy_is_monotone_in_sigma() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let a_small = ev.accuracy_gaussian_output(0.01, 3);
        let a_big = ev.accuracy_gaussian_output(100.0, 3);
        assert!(a_small > a_big, "{a_small} vs {a_big}");
    }

    #[test]
    fn generous_quantization_preserves_accuracy() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let formats: HashMap<NodeId, FixedPointFormat> = net
            .dot_product_layers()
            .into_iter()
            .map(|l| (l, FixedPointFormat::new(12, 12)))
            .collect();
        let acc = ev.accuracy_quantized(&formats);
        assert!(acc > 0.95, "24-bit quantization broke accuracy: {acc}");
    }

    #[test]
    fn accuracy_of_network_identity() {
        let (net, data) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        assert_eq!(ev.accuracy_of_network(&net), 1.0);
    }
}
