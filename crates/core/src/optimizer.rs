//! The end-to-end precision optimizer: profile → search → allocate →
//! validate behind one builder-style API.

use crate::allocate::{allocate, AllocateConfig, AllocationOutcome, Objective};
use crate::eval::{AccuracyEvaluator, AccuracyMode};
use crate::profile::{Profile, ProfileConfig, ProfileError, Profiler};
use crate::search::{SearchOutcome, SearchScheme, SigmaSearch};
use mupod_data::Dataset;
use mupod_nn::{Network, NodeId};

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum OptimizeError {
    /// Profiling failed.
    Profile(ProfileError),
    /// No analyzable layers were selected.
    NoLayers,
    /// The final fixed-point validation violated the accuracy target;
    /// payload is `(measured, target)`.
    ValidationFailed(f64, f64),
    /// The pipeline was cancelled (SIGINT or a supervisor deadline) and
    /// drained between stages.
    Cancelled(mupod_runtime::CancelReason),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Profile(e) => write!(f, "profiling failed: {e}"),
            OptimizeError::NoLayers => write!(f, "no analyzable layers selected"),
            OptimizeError::ValidationFailed(got, want) => write!(
                f,
                "final validation accuracy {got:.4} below target {want:.4}"
            ),
            OptimizeError::Cancelled(reason) => {
                write!(f, "optimization cancelled ({reason})")
            }
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<ProfileError> for OptimizeError {
    fn from(e: ProfileError) -> Self {
        OptimizeError::Profile(e)
    }
}

/// Everything the pipeline produced for one objective.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The per-layer formats and the ξ decomposition behind them.
    pub allocation: mupod_quant::BitwidthAllocation,
    /// Optimized error shares.
    pub xi: Vec<f64>,
    /// The searched output budget `σ_{Y_Ł}`.
    pub sigma: SearchOutcome,
    /// The budget actually used for allocation — equal to
    /// `sigma.sigma` unless validation-driven refinement shrank it.
    pub sigma_allocated: f64,
    /// Full-precision reference accuracy.
    pub fp_accuracy: f64,
    /// Accuracy of the final allocation under true fixed-point rounding.
    pub validated_accuracy: f64,
    /// The profile used (reusable for further objectives).
    pub profile: Profile,
    /// The layers the allocation covers, in order.
    pub layers: Vec<NodeId>,
}

impl OptimizeResult {
    /// Renders the result as a self-contained markdown report: the
    /// searched budget, the ξ decomposition, the per-layer formats and
    /// the accuracy outcome.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## Precision allocation report");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "* output error budget σ_YŁ: {:.5} (searched in {} evaluations{})",
            self.sigma.sigma,
            self.sigma.evaluations,
            if self.sigma_allocated < self.sigma.sigma {
                format!(", refined to {:.5}", self.sigma_allocated)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "* accuracy: fp {:.4} -> quantized {}",
            self.fp_accuracy,
            if self.validated_accuracy.is_nan() {
                "(not validated)".to_string()
            } else {
                format!("{:.4}", self.validated_accuracy)
            }
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| layer | format | bits | ξ share | Δ granted |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for ((lf, bits), xi) in self
            .allocation
            .layers()
            .iter()
            .zip(self.allocation.bits())
            .zip(&self.xi)
        {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3} | {:.5} |",
                lf.layer, lf.format, bits, xi, lf.delta
            );
        }
        out
    }
}

/// Builder-style front door to the framework.
///
/// See the crate-level example. Defaults: profile all dot-product
/// layers, 1 % relative accuracy loss, Scheme 1 search, fp-agreement
/// accuracy (the "relative" accuracy the paper's targets refer to),
/// all images used for both profiling (capped) and evaluation.
pub struct PrecisionOptimizer<'a> {
    net: &'a Network,
    dataset: &'a Dataset,
    layers: Option<Vec<NodeId>>,
    relative_loss: f64,
    scheme: SearchScheme,
    mode: AccuracyMode,
    profile_config: ProfileConfig,
    profile_images: usize,
    allocate_config: AllocateConfig,
    reuse_profile: Option<Profile>,
    validate: bool,
    cancel: Option<mupod_runtime::CancelToken>,
}

impl std::fmt::Debug for PrecisionOptimizer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrecisionOptimizer")
            .field("relative_loss", &self.relative_loss)
            .field("scheme", &self.scheme)
            .field("mode", &self.mode)
            .field("profile_images", &self.profile_images)
            .finish()
    }
}

impl<'a> PrecisionOptimizer<'a> {
    /// Creates an optimizer over a network and evaluation dataset.
    pub fn new(net: &'a Network, dataset: &'a Dataset) -> Self {
        Self {
            net,
            dataset,
            layers: None,
            relative_loss: 0.01,
            scheme: SearchScheme::EqualScheme,
            mode: AccuracyMode::FpAgreement,
            profile_config: ProfileConfig::default(),
            profile_images: 50,
            allocate_config: AllocateConfig::default(),
            reuse_profile: None,
            validate: true,
            cancel: None,
        }
    }

    /// Restricts the analysis to specific layers (e.g.
    /// `ModelKind::analyzable_layers` to reproduce the Stripes
    /// ignore-FC convention).
    pub fn layers(mut self, layers: Vec<NodeId>) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Sets the relative top-1 accuracy loss budget (paper: 1 % or 5 %).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= loss < 1`.
    pub fn relative_accuracy_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.relative_loss = loss;
        self
    }

    /// Chooses the σ-search scheme (§V-C).
    pub fn scheme(mut self, scheme: SearchScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Chooses the accuracy-label mode.
    pub fn accuracy_mode(mut self, mode: AccuracyMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the profiling sweep configuration.
    pub fn profile_config(mut self, config: ProfileConfig) -> Self {
        self.profile_config = config;
        self
    }

    /// Caps how many dataset images the profiler uses (the paper found
    /// 50–200 sufficient).
    pub fn profile_images(mut self, n: usize) -> Self {
        self.profile_images = n;
        self
    }

    /// Overrides the allocation solve configuration.
    pub fn allocate_config(mut self, config: AllocateConfig) -> Self {
        self.allocate_config = config;
        self
    }

    /// Reuses a previously computed profile, skipping the expensive
    /// injection sweep ("changing the user constraints only requires
    /// re-running the last optimization step", §VI-A).
    pub fn with_profile(mut self, profile: Profile) -> Self {
        self.reuse_profile = Some(profile);
        self
    }

    /// Disables the final fixed-point validation pass (for speed in
    /// sweeps; the allocation is still returned).
    pub fn skip_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Installs a cooperative cancellation token, polled between
    /// pipeline stages (and inside the profiling sweep). A cancelled
    /// run drains and returns [`OptimizeError::Cancelled`].
    pub fn with_cancel(mut self, token: mupod_runtime::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    fn cancel_checkpoint(&self) -> Result<(), OptimizeError> {
        match &self.cancel {
            Some(token) => token
                .checkpoint()
                .map_err(|c| OptimizeError::Cancelled(c.reason)),
            None => Ok(()),
        }
    }

    /// Runs the pipeline for one objective.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::Profile`] / [`OptimizeError::NoLayers`]
    /// on setup failures and [`OptimizeError::ValidationFailed`] if the
    /// final rounding validation misses the accuracy target.
    pub fn run(&self, objective: Objective) -> Result<OptimizeResult, OptimizeError> {
        let layers = match &self.layers {
            Some(l) => l.clone(),
            None => self.net.dot_product_layers(),
        };
        if layers.is_empty() {
            return Err(OptimizeError::NoLayers);
        }
        let _run_span = mupod_obs::span("optimize.run");

        // 1. Profile (or reuse).
        self.cancel_checkpoint()?;
        let mut profile = {
            let _span = mupod_obs::span("optimize.profile");
            match &self.reuse_profile {
                Some(p) => p.clone(),
                None => {
                    let n = self.profile_images.min(self.dataset.len()).max(1);
                    let images = &self.dataset.images()[..n];
                    let mut profiler =
                        Profiler::new(self.net, images).with_config(self.profile_config);
                    if let Some(token) = &self.cancel {
                        profiler = profiler.with_cancel(token.clone());
                    }
                    profiler.profile(&layers)?
                }
            }
        };
        // Re-measure the dynamic ranges over the FULL dataset (cheap —
        // one clean pass per image): integer bitwidths derived from the
        // profiling subset alone can saturate on unseen images, which
        // produces errors far larger than the modelled Δ (§II-A measures
        // max|X_K| with a forward pass over the data).
        profile.update_ranges(mupod_nn::inventory::LayerInventory::measure(
            self.net,
            self.dataset.images().iter().cloned(),
        ));

        // 2. Binary search for σ_{Y_Ł}.
        self.cancel_checkpoint()?;
        let _search_span = mupod_obs::span("optimize.search");
        let evaluator = AccuracyEvaluator::with_threads_tier(
            self.net,
            self.dataset,
            self.mode,
            self.profile_config.threads,
            self.profile_config.kernel_tier,
        );
        let fp_accuracy = evaluator.fp_accuracy();
        let target = fp_accuracy * (1.0 - self.relative_loss);
        let search = SigmaSearch {
            scheme: self.scheme,
            ..Default::default()
        };
        let sigma = search.search(&profile, &evaluator, target);
        drop(_search_span);

        // 3 + 4. Allocate for the objective, validate under true
        // rounding, and refine: real rounding error on deep, narrow
        // networks can run slightly hotter than the modelled white
        // noise (rounding is signal-correlated), so a failed validation
        // shrinks the budget and re-runs the cheap last stage — the
        // same "re-running the last optimization step" the paper
        // highlights as inexpensive (§VI-A). A degenerate σ = 0 search
        // result is clamped to a tiny budget (maximum-precision
        // formats).
        let slack = 0.02 + 2.0 / evaluator.len() as f64;
        let mut sigma_for_alloc = sigma.sigma.max(1e-6);
        let mut last: Option<(AllocationOutcome, f64)> = None;
        for attempt in 0..4 {
            self.cancel_checkpoint()?;
            let outcome = {
                let _span = mupod_obs::span("optimize.allocate");
                allocate(&profile, sigma_for_alloc, &objective, &self.allocate_config)
            };
            if !self.validate {
                return Ok(OptimizeResult {
                    allocation: outcome.allocation,
                    xi: outcome.xi,
                    sigma,
                    sigma_allocated: sigma_for_alloc,
                    fp_accuracy,
                    validated_accuracy: f64::NAN,
                    profile,
                    layers,
                });
            }
            let acc = {
                let _span = mupod_obs::span("optimize.validate");
                evaluator.accuracy_of_allocation(&layers, &outcome.allocation)
            };
            if acc + 1e-9 >= target - slack {
                return Ok(OptimizeResult {
                    allocation: outcome.allocation,
                    xi: outcome.xi,
                    sigma,
                    sigma_allocated: sigma_for_alloc,
                    fp_accuracy,
                    validated_accuracy: acc,
                    profile,
                    layers,
                });
            }
            last = Some((outcome, acc));
            if attempt < 3 {
                sigma_for_alloc *= 0.6;
            }
        }
        let acc = last.map_or(f64::NAN, |(_, acc)| acc);
        Err(OptimizeError::ValidationFailed(acc, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_data::DatasetSpec;
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};

    fn setup() -> (Network, Dataset) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 151);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 152, 40);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        (net, data)
    }

    fn quick_config() -> ProfileConfig {
        ProfileConfig {
            n_deltas: 10,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_meets_accuracy_target() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let result = PrecisionOptimizer::new(&net, &data)
            .layers(layers)
            .relative_accuracy_loss(0.05)
            .profile_config(quick_config())
            .profile_images(8)
            .run(Objective::Bandwidth)
            .unwrap();
        assert_eq!(result.allocation.len(), 5);
        let target = result.fp_accuracy * 0.95;
        let slack = 0.02 + 2.0 / 40.0;
        assert!(
            result.validated_accuracy >= target - slack,
            "validated {} vs target {target}",
            result.validated_accuracy
        );
        // Bits land in a plausible fixed-point range.
        for &b in &result.allocation.bits() {
            assert!((1..=26).contains(&b), "bits {b}");
        }
    }

    #[test]
    fn different_objectives_yield_different_allocations() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let base = PrecisionOptimizer::new(&net, &data)
            .layers(layers.clone())
            .relative_accuracy_loss(0.05)
            .profile_config(quick_config())
            .profile_images(8)
            .skip_validation();
        let bw = base.run(Objective::Bandwidth).unwrap();
        // Reuse the profile for the second objective (the §VI-A
        // workflow) — and check the xi differ.
        let mac = PrecisionOptimizer::new(&net, &data)
            .layers(layers)
            .relative_accuracy_loss(0.05)
            .with_profile(bw.profile.clone())
            .skip_validation()
            .run(Objective::MacEnergy)
            .unwrap();
        // Cross-objective dominance: each allocation must be at least as
        // good as the other's on its own criterion. (On tiny 5-layer
        // networks the discreteness guard can collapse both to the same
        // equal-ξ split, so exact difference is not guaranteed — Table
        // III at experiment scale shows the objectives diverging.)
        let rho_bw = Objective::Bandwidth.rho(&bw.profile);
        let rho_mac = Objective::MacEnergy.rho(&bw.profile);
        // Dominance holds exactly for the continuous ξ optimum; the final
        // allocation rounds each layer to integer bits, which can shift
        // either side by one bit in one layer. Allow exactly that much.
        let bit_slack = |rho: &[f64]| rho.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            bw.allocation.total_weighted_bits(&rho_bw)
                <= mac.allocation.total_weighted_bits(&rho_bw) + bit_slack(&rho_bw)
        );
        assert!(
            mac.allocation.total_weighted_bits(&rho_mac)
                <= bw.allocation.total_weighted_bits(&rho_mac) + bit_slack(&rho_mac)
        );
    }

    #[test]
    fn optimized_beats_equal_scheme_on_objective() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let result = PrecisionOptimizer::new(&net, &data)
            .layers(layers)
            .relative_accuracy_loss(0.05)
            .profile_config(quick_config())
            .profile_images(8)
            .skip_validation()
            .run(Objective::Bandwidth)
            .unwrap();
        let equal = crate::allocate::allocate_equal(&result.profile, result.sigma.sigma);
        let rho = Objective::Bandwidth.rho(&result.profile);
        let opt_cost = result.allocation.total_weighted_bits(&rho);
        let equal_cost = equal.allocation.total_weighted_bits(&rho);
        assert!(
            opt_cost <= equal_cost,
            "optimized {opt_cost} > equal {equal_cost}"
        );
    }

    #[test]
    fn markdown_report_lists_layers_and_budget() {
        let (net, data) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let result = PrecisionOptimizer::new(&net, &data)
            .layers(layers)
            .relative_accuracy_loss(0.05)
            .profile_config(quick_config())
            .profile_images(8)
            .run(Objective::Bandwidth)
            .unwrap();
        let md = result.to_markdown();
        assert!(md.contains("σ_YŁ"));
        assert!(md.contains("conv1"));
        assert!(md.contains("conv5"));
        assert_eq!(md.matches('|').count() % 6, 0, "table rows well-formed");
    }

    #[test]
    fn empty_layer_list_rejected() {
        let (net, data) = setup();
        let err = PrecisionOptimizer::new(&net, &data)
            .layers(vec![])
            .run(Objective::Bandwidth)
            .unwrap_err();
        assert!(matches!(err, OptimizeError::NoLayers));
    }
}
