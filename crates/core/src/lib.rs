//! MUPOD: analytical multi-objective precision optimization of deep
//! neural networks — the primary contribution of the DATE 2019 paper.
//!
//! Given a trained network, a labelled dataset and a relative accuracy
//! budget, the framework assigns a fixed-point format to every
//! dot-product layer's input in four analytical steps (no per-candidate
//! retraining or exhaustive search):
//!
//! 1. **Profile** ([`Profiler`]): for each layer `K`, inject uniform
//!    noise of ~20 magnitudes, measure the induced output error
//!    `σ_{Y_{K→Ł}}`, and fit `Δ_{X_K} = λ_K σ_{Y_{K→Ł}} + θ_K` (Eq. 5).
//! 2. **Search** ([`SigmaSearch`]): binary-search the largest output
//!    error `σ_{Y_Ł}` whose induced accuracy still meets the user's
//!    budget (§V-C, Scheme 1 `equal_scheme` or Scheme 2
//!    `gaussian_approx`).
//! 3. **Allocate** ([`allocate`]): split `σ²_{Y_Ł}` across layers by
//!    minimizing the hardware objective `Σ ρ_K(−log2 Δ_{X_K}(ξ))` over
//!    the simplex (Eq. 8), then convert each granted `Δ_{X_K}` into an
//!    `I.F` format (§II-A).
//! 4. **Validate** ([`AccuracyEvaluator::accuracy_quantized`]): check
//!    the final allocation under true fixed-point rounding.
//!
//! [`PrecisionOptimizer`] wires the steps together behind one call.
//!
//! # Example
//!
//! ```no_run
//! use mupod_core::{Objective, PrecisionOptimizer};
//! use mupod_data::{Dataset, DatasetSpec};
//! use mupod_models::{ModelKind, ModelScale};
//!
//! let scale = ModelScale::tiny();
//! let mut net = ModelKind::AlexNet.build(&scale, 42);
//! let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
//! let data = Dataset::generate(&spec, 7, 64);
//! mupod_models::calibrate::calibrate_head(&mut net, &data, 0.1).unwrap();
//!
//! let layers = ModelKind::AlexNet.analyzable_layers(&net);
//! let result = PrecisionOptimizer::new(&net, &data)
//!     .layers(layers)
//!     .relative_accuracy_loss(0.01)
//!     .run(Objective::Bandwidth)
//!     .unwrap();
//! println!("bits: {:?}", result.allocation.bits());
//! ```

mod allocate;
mod error;
mod eval;
mod optimizer;
mod profile;
mod profile_io;
mod search;
mod weight_profile;
mod weights;

pub use allocate::{allocate, allocate_equal, AllocateConfig, AllocationOutcome, Objective};
pub use error::CoreError;
pub use eval::{AccuracyEvaluator, AccuracyMode};
pub use optimizer::{OptimizeError, OptimizeResult, PrecisionOptimizer};
pub use profile::{
    FallbackReason, GuardConfig, LayerProfile, Profile, ProfileConfig, ProfileError, Profiler,
    ProgressFn,
};
pub use profile_io::{JournalError, JournalSummary, ProfileIoError};
pub use search::{SearchOutcome, SearchScheme, SigmaSearch};
pub use weight_profile::profile_weights;
pub use weights::search_weight_bits;
