//! CSV persistence for [`Profile`]s.
//!
//! Profiling is the expensive stage (§VI-A: minutes per network); the
//! paper notes that "changing the user constraints only requires
//! re-running the last optimization step". Persisting the profile makes
//! that workflow concrete: profile once, then re-optimize under as many
//! constraints as desired without touching the network again.

use crate::profile::{LayerProfile, Profile};
use mupod_nn::NodeId;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from profile persistence.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid profile CSV; payload is line number and
    /// message.
    Parse(usize, String),
}

impl std::fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileIoError::Io(e) => write!(f, "profile io error: {e}"),
            ProfileIoError::Parse(line, msg) => {
                write!(f, "profile parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ProfileIoError {}

impl From<std::io::Error> for ProfileIoError {
    fn from(e: std::io::Error) -> Self {
        ProfileIoError::Io(e)
    }
}

const HEADER: &str = "node,name,lambda,theta,r_squared,max_relative_error,max_abs,input_elems,macs";

impl Profile {
    /// Writes the profile as CSV (header + one row per layer). The raw
    /// sweep points are not persisted — they are diagnostics, not inputs
    /// to the optimization.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_csv<W: Write>(&self, mut w: W) -> Result<(), ProfileIoError> {
        writeln!(w, "{HEADER}")?;
        for l in self.layers() {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{}",
                l.node.index(),
                l.name,
                l.lambda,
                l.theta,
                l.r_squared,
                l.max_relative_error,
                l.max_abs,
                l.input_elems,
                l.macs
            )?;
        }
        Ok(())
    }

    /// Reads a profile previously written by [`Profile::save_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileIoError::Parse`] on malformed rows (wrong column
    /// count, unparseable numbers, missing header) and
    /// [`ProfileIoError::Io`] on reader failures. Layer names containing
    /// commas are rejected at save time by construction (builder names
    /// never contain commas) and will fail parsing here.
    pub fn load_csv<R: Read>(r: R) -> Result<Profile, ProfileIoError> {
        let reader = BufReader::new(r);
        let mut lines = reader.lines().enumerate();
        match lines.next() {
            Some((_, Ok(h))) if h.trim() == HEADER => {}
            Some((_, Ok(h))) => {
                return Err(ProfileIoError::Parse(1, format!("bad header `{h}`")))
            }
            Some((_, Err(e))) => return Err(e.into()),
            None => return Err(ProfileIoError::Parse(1, "empty file".into())),
        }
        let mut layers = Vec::new();
        for (i, line) in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 9 {
                return Err(ProfileIoError::Parse(
                    i + 1,
                    format!("expected 9 fields, got {}", fields.len()),
                ));
            }
            let parse_f = |s: &str, what: &str| {
                s.parse::<f64>().map_err(|_| {
                    ProfileIoError::Parse(i + 1, format!("bad {what} `{s}`"))
                })
            };
            let parse_u = |s: &str, what: &str| {
                s.parse::<u64>().map_err(|_| {
                    ProfileIoError::Parse(i + 1, format!("bad {what} `{s}`"))
                })
            };
            layers.push(LayerProfile {
                node: NodeId::from_index_for_tests(
                    parse_u(fields[0], "node id")? as usize
                ),
                name: fields[1].to_string(),
                lambda: parse_f(fields[2], "lambda")?,
                theta: parse_f(fields[3], "theta")?,
                r_squared: parse_f(fields[4], "r_squared")?,
                max_relative_error: parse_f(fields[5], "max_relative_error")?,
                max_abs: parse_f(fields[6], "max_abs")?,
                input_elems: parse_u(fields[7], "input_elems")?,
                macs: parse_u(fields[8], "macs")?,
                sweep: vec![],
            });
        }
        Ok(Profile::from_layers(layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        Profile::from_layers(vec![
            LayerProfile {
                node: NodeId::from_index_for_tests(1),
                name: "conv1".into(),
                lambda: 0.52,
                theta: 0.013,
                r_squared: 0.999,
                max_relative_error: 0.03,
                max_abs: 161.0,
                input_elems: 154_600,
                macs: 105_000_000,
                sweep: vec![(0.1, 0.06)],
            },
            LayerProfile {
                node: NodeId::from_index_for_tests(4),
                name: "conv2".into(),
                lambda: 1.7,
                theta: -0.002,
                r_squared: 0.995,
                max_relative_error: 0.08,
                max_abs: 139.0,
                input_elems: 70_000,
                macs: 225_000_000,
                sweep: vec![],
            },
        ])
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.save_csv(&mut buf).unwrap();
        let q = Profile::load_csv(buf.as_slice()).unwrap();
        assert_eq!(q.len(), 2);
        for (a, b) in p.layers().iter().zip(q.layers()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.name, b.name);
            assert_eq!(a.lambda, b.lambda);
            assert_eq!(a.theta, b.theta);
            assert_eq!(a.max_abs, b.max_abs);
            assert_eq!(a.input_elems, b.input_elems);
            assert_eq!(a.macs, b.macs);
        }
        // Sweep points are intentionally not persisted.
        assert!(q.layers()[0].sweep.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        let err = Profile::load_csv("nope\n1,a,1,1,1,1,1,1,1\n".as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(1, _) => {}
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_short_row() {
        let text = format!("{HEADER}\n1,conv1,0.5\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(2, msg) => assert!(msg.contains("9 fields")),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_bad_number() {
        let text = format!("{HEADER}\n1,conv1,abc,0,1,0,1,1,1\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(2, msg) => assert!(msg.contains("lambda")),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.save_csv(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let q = Profile::load_csv(buf.as_slice()).unwrap();
        assert_eq!(q.len(), 2);
    }
}
