//! Persistence for [`Profile`]s: CSV export and the crash-safe sweep
//! journal.
//!
//! Profiling is the expensive stage (§VI-A: minutes per network); the
//! paper notes that "changing the user constraints only requires
//! re-running the last optimization step". Two mechanisms make that
//! workflow concrete:
//!
//! * **CSV** ([`Profile::save_csv`] / [`Profile::load_csv`]): profile
//!   once, then re-optimize under as many constraints as desired without
//!   touching the network again.
//! * **Journal** ([`Profiler::profile_journaled`]): each layer's profile
//!   is appended to a checksummed journal the moment it completes, so a
//!   run killed mid-sweep resumes from the journal and re-profiles only
//!   the missing layers. Per-layer RNG streams are keyed by the layer's
//!   position in the request (not by execution order), so a resumed run
//!   is bit-identical to an uninterrupted one.
//!
//! # Journal format
//!
//! Line-oriented text, one record per completed layer:
//!
//! ```text
//! mupod-journal v1 config=<16-hex fingerprint>
//! <16-hex FNV-1a checksum> <index> <node>,<name>,<lambda>,...,<fallback>,<sweep>
//! ```
//!
//! The fingerprint hashes every profiling input that affects the result
//! (config knobs, layer list, image count); a journal written under a
//! different configuration is rejected with
//! [`JournalError::ConfigMismatch`] rather than silently mixed in. Each
//! record line carries an FNV-1a 64 checksum of everything after it; a
//! complete line that fails its checksum is [`JournalError::Corrupt`]. A
//! *final* line with no trailing newline is the expected artifact of a
//! killed run — it is dropped and its layer re-profiled. `f64` values are
//! printed with Rust's shortest-roundtrip formatting, so reloaded sweeps
//! are bit-identical.

use crate::profile::{FallbackReason, LayerProfile, Profile, ProfileError, Profiler};
use mupod_nn::NodeId;
use mupod_stats::regression::FitError;
use mupod_stats::SeededRng;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from profile persistence.
#[derive(Debug)]
pub enum ProfileIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid profile CSV; payload is line number and
    /// message.
    Parse(usize, String),
}

impl std::fmt::Display for ProfileIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileIoError::Io(e) => write!(f, "profile io error: {e}"),
            ProfileIoError::Parse(line, msg) => {
                write!(f, "profile parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for ProfileIoError {}

impl From<std::io::Error> for ProfileIoError {
    fn from(e: std::io::Error) -> Self {
        ProfileIoError::Io(e)
    }
}

const HEADER: &str =
    "node,name,lambda,theta,r_squared,max_relative_error,max_abs,input_elems,macs,fallback";
const HEADER_V1: &str =
    "node,name,lambda,theta,r_squared,max_relative_error,max_abs,input_elems,macs";

/// Serializes a fallback flag as a single CSV-safe token.
fn fallback_to_token(fb: Option<FallbackReason>) -> String {
    match fb {
        None => "-".into(),
        Some(FallbackReason::NegativeSlope) => "neg_slope".into(),
        Some(FallbackReason::LowRSquared(r2)) => format!("low_r2:{r2}"),
        Some(FallbackReason::TooFewPoints(n)) => format!("few_points:{n}"),
        Some(FallbackReason::FitFailed(e)) => {
            let code = match e {
                FitError::NotEnoughData => "not_enough_data",
                FitError::DegenerateX => "degenerate_x",
                FitError::NonFiniteInput => "non_finite",
            };
            format!("fit_failed:{code}")
        }
    }
}

/// Parses a token written by [`fallback_to_token`].
fn fallback_from_token(s: &str) -> Result<Option<FallbackReason>, String> {
    if s == "-" {
        return Ok(None);
    }
    if s == "neg_slope" {
        return Ok(Some(FallbackReason::NegativeSlope));
    }
    if let Some(rest) = s.strip_prefix("low_r2:") {
        let r2 = rest
            .parse::<f64>()
            .map_err(|_| format!("bad low_r2 payload `{rest}`"))?;
        return Ok(Some(FallbackReason::LowRSquared(r2)));
    }
    if let Some(rest) = s.strip_prefix("few_points:") {
        let n = rest
            .parse::<usize>()
            .map_err(|_| format!("bad few_points payload `{rest}`"))?;
        return Ok(Some(FallbackReason::TooFewPoints(n)));
    }
    if let Some(rest) = s.strip_prefix("fit_failed:") {
        let e = match rest {
            "not_enough_data" => FitError::NotEnoughData,
            "degenerate_x" => FitError::DegenerateX,
            "non_finite" => FitError::NonFiniteInput,
            other => return Err(format!("unknown fit failure `{other}`")),
        };
        return Ok(Some(FallbackReason::FitFailed(e)));
    }
    Err(format!("unknown fallback token `{s}`"))
}

impl Profile {
    /// Writes the profile as CSV (header + one row per layer). The raw
    /// sweep points are not persisted — they are diagnostics, not inputs
    /// to the optimization (the journal, by contrast, keeps them).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_csv<W: Write>(&self, mut w: W) -> Result<(), ProfileIoError> {
        writeln!(w, "{HEADER}")?;
        for l in self.layers() {
            writeln!(
                w,
                "{},{},{},{},{},{},{},{},{},{}",
                l.node.index(),
                l.name,
                l.lambda,
                l.theta,
                l.r_squared,
                l.max_relative_error,
                l.max_abs,
                l.input_elems,
                l.macs,
                fallback_to_token(l.fallback),
            )?;
        }
        Ok(())
    }

    /// Reads a profile previously written by [`Profile::save_csv`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileIoError::Parse`] on malformed rows (wrong column
    /// count, unparseable numbers, missing header, pre-fallback schema)
    /// and [`ProfileIoError::Io`] on reader failures. Layer names
    /// containing commas are rejected at save time by construction
    /// (builder names never contain commas) and will fail parsing here.
    pub fn load_csv<R: Read>(r: R) -> Result<Profile, ProfileIoError> {
        let reader = BufReader::new(r);
        let mut lines = reader.lines().enumerate();
        match lines.next() {
            Some((_, Ok(h))) if h.trim() == HEADER => {}
            Some((_, Ok(h))) if h.trim() == HEADER_V1 => {
                return Err(ProfileIoError::Parse(
                    1,
                    "old profile schema (no fallback column); re-profile to regenerate".into(),
                ))
            }
            Some((_, Ok(h))) => return Err(ProfileIoError::Parse(1, format!("bad header `{h}`"))),
            Some((_, Err(e))) => return Err(e.into()),
            None => return Err(ProfileIoError::Parse(1, "empty file".into())),
        }
        let mut layers = Vec::new();
        for (i, line) in lines {
            let line = line?;
            // `#` lines: comments and the sealed-artifact integrity
            // footer (`#mupod-artifact v1 ...`) appended by the atomic
            // writer.
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            layers.push(
                parse_layer_fields(&line, &[]).map_err(|msg| ProfileIoError::Parse(i + 1, msg))?,
            );
        }
        Ok(Profile::from_layers(layers))
    }
}

/// Parses the 10 CSV fields shared by the CSV format and journal records
/// into a [`LayerProfile`] carrying `sweep`.
fn parse_layer_fields(line: &str, sweep: &[(f64, f64)]) -> Result<LayerProfile, String> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() != 10 {
        return Err(format!("expected 10 fields, got {}", fields.len()));
    }
    let parse_f = |s: &str, what: &str| s.parse::<f64>().map_err(|_| format!("bad {what} `{s}`"));
    let parse_u = |s: &str, what: &str| s.parse::<u64>().map_err(|_| format!("bad {what} `{s}`"));
    Ok(LayerProfile {
        node: NodeId::from_index_for_tests(parse_u(fields[0], "node id")? as usize),
        name: fields[1].to_string(),
        lambda: parse_f(fields[2], "lambda")?,
        theta: parse_f(fields[3], "theta")?,
        r_squared: parse_f(fields[4], "r_squared")?,
        max_relative_error: parse_f(fields[5], "max_relative_error")?,
        max_abs: parse_f(fields[6], "max_abs")?,
        input_elems: parse_u(fields[7], "input_elems")?,
        macs: parse_u(fields[8], "macs")?,
        fallback: fallback_from_token(fields[9])?,
        sweep: sweep.to_vec(),
    })
}

// ---------------------------------------------------------------------
// Sweep journal
// ---------------------------------------------------------------------

/// Errors from reading or validating a profiling journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists but does not start with the journal magic.
    BadHeader(String),
    /// The journal was written by an incompatible format version.
    UnsupportedVersion(String),
    /// The journal was written under different profiling inputs (config,
    /// layer list or image count); resuming from it would mix
    /// incompatible measurements.
    ConfigMismatch {
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint found in the journal.
        found: String,
    },
    /// A complete record line failed validation (bad checksum, malformed
    /// fields, impossible index). Payload is the 1-based line number and
    /// a description. Note: an *incomplete final* line (no trailing
    /// newline) is not corruption — it is the expected artifact of a
    /// killed run, and is dropped silently.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// What failed.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::BadHeader(h) => {
                write!(f, "not a profiling journal (header `{h}`)")
            }
            JournalError::UnsupportedVersion(v) => {
                write!(f, "unsupported journal version `{v}`")
            }
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "journal belongs to a different profiling run \
                 (config fingerprint {found}, this run is {expected}); \
                 delete it or match the original configuration"
            ),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

const JOURNAL_MAGIC: &str = "mupod-journal";
const JOURNAL_VERSION: &str = "v1";

/// FNV-1a 64-bit — the same hash the sealed-artifact footer uses, so
/// journal records and final artifacts share one integrity primitive.
use mupod_runtime::artifact::fnv1a64;

/// Fingerprint of every profiling input that affects the journal's
/// contents. Thread count and replay mode are excluded: results are
/// bit-identical across both.
fn journal_fingerprint(
    config: &crate::profile::ProfileConfig,
    layers: &[NodeId],
    n_images: usize,
) -> String {
    let layer_ids: Vec<usize> = layers.iter().map(|l| l.index()).collect();
    let canon = format!(
        "n_deltas={};delta_max_fraction={};delta_step_octaves={};repeats={};seed={};\
         min_r_squared={};min_points={};strict={};validate={};layers={:?};images={}",
        config.n_deltas,
        config.delta_max_fraction,
        config.delta_step_octaves,
        config.repeats,
        config.seed,
        config.guard.min_r_squared,
        config.guard.min_points,
        config.guard.strict,
        config.guard.validate_activations,
        layer_ids,
        n_images,
    );
    format!("{:016x}", fnv1a64(canon.as_bytes()))
}

fn serialize_sweep(sweep: &[(f64, f64)]) -> String {
    if sweep.is_empty() {
        return "-".into();
    }
    sweep
        .iter()
        .map(|(s, d)| format!("{s}:{d}"))
        .collect::<Vec<_>>()
        .join(";")
}

fn parse_sweep(s: &str) -> Result<Vec<(f64, f64)>, String> {
    if s == "-" {
        return Ok(vec![]);
    }
    s.split(';')
        .map(|pair| {
            let (a, b) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad sweep pair `{pair}`"))?;
            let sig = a
                .parse::<f64>()
                .map_err(|_| format!("bad sweep sigma `{a}`"))?;
            let del = b
                .parse::<f64>()
                .map_err(|_| format!("bad sweep delta `{b}`"))?;
            Ok((sig, del))
        })
        .collect()
}

/// The payload of one journal record (the part covered by the checksum).
fn record_payload(index: usize, l: &LayerProfile) -> String {
    format!(
        "{} {},{},{},{},{},{},{},{},{},{},{}",
        index,
        l.node.index(),
        l.name,
        l.lambda,
        l.theta,
        l.r_squared,
        l.max_relative_error,
        l.max_abs,
        l.input_elems,
        l.macs,
        fallback_to_token(l.fallback),
        serialize_sweep(&l.sweep),
    )
}

fn journal_header(fingerprint: &str) -> String {
    format!("{JOURNAL_MAGIC} {JOURNAL_VERSION} config={fingerprint}")
}

/// Parses a journal's text, validating header, fingerprint and record
/// checksums. Returns the completed layers keyed by request index. An
/// unterminated final line is dropped (crash artifact), reported via the
/// second tuple element.
fn parse_journal(
    text: &str,
    expected_fp: &str,
    n_layers: usize,
) -> Result<(BTreeMap<usize, LayerProfile>, bool), JournalError> {
    // Only lines terminated by '\n' are trusted; anything after the last
    // newline is an interrupted append.
    let (complete, dropped_partial) = match text.rfind('\n') {
        Some(pos) => (&text[..=pos], pos + 1 < text.len()),
        None => ("", !text.is_empty()),
    };
    let mut lines = complete.lines().enumerate();
    match lines.next() {
        None => {
            // Empty (or partial-header-only) file: treat as a fresh
            // journal — nothing completed yet.
            return Ok((BTreeMap::new(), dropped_partial));
        }
        Some((_, h)) => {
            let mut parts = h.split_whitespace();
            match parts.next() {
                Some(JOURNAL_MAGIC) => {}
                _ => return Err(JournalError::BadHeader(h.to_string())),
            }
            match parts.next() {
                Some(JOURNAL_VERSION) => {}
                Some(v) => return Err(JournalError::UnsupportedVersion(v.to_string())),
                None => return Err(JournalError::BadHeader(h.to_string())),
            }
            match parts.next().and_then(|p| p.strip_prefix("config=")) {
                Some(fp) if fp == expected_fp => {}
                Some(fp) => {
                    return Err(JournalError::ConfigMismatch {
                        expected: expected_fp.to_string(),
                        found: fp.to_string(),
                    })
                }
                None => return Err(JournalError::BadHeader(h.to_string())),
            }
        }
    }
    let mut done = BTreeMap::new();
    for (i, line) in lines {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let corrupt = |reason: String| JournalError::Corrupt {
            line: lineno,
            reason,
        };
        let (sum_hex, payload) = line
            .split_once(' ')
            .ok_or_else(|| corrupt("missing checksum separator".into()))?;
        let stored = u64::from_str_radix(sum_hex, 16)
            .map_err(|_| corrupt(format!("bad checksum `{sum_hex}`")))?;
        let actual = fnv1a64(payload.as_bytes());
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch (stored {stored:016x}, computed {actual:016x})"
            )));
        }
        let (idx_str, rest) = payload
            .split_once(' ')
            .ok_or_else(|| corrupt("missing record index".into()))?;
        let index = idx_str
            .parse::<usize>()
            .map_err(|_| corrupt(format!("bad record index `{idx_str}`")))?;
        if index >= n_layers {
            return Err(corrupt(format!(
                "record index {index} out of range (run has {n_layers} layers)"
            )));
        }
        let (row, sweep_str) = rest
            .rsplit_once(',')
            .ok_or_else(|| corrupt("missing sweep field".into()))?;
        let sweep = parse_sweep(sweep_str).map_err(corrupt)?;
        let layer = parse_layer_fields(row, &sweep).map_err(corrupt)?;
        if done.insert(index, layer).is_some() {
            return Err(corrupt(format!("duplicate record for layer {index}")));
        }
    }
    Ok((done, dropped_partial))
}

/// Outcome metadata of a journaled profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalSummary {
    /// Layers restored from the journal (skipped this run).
    pub resumed: usize,
    /// Layers profiled (and appended) this run.
    pub computed: usize,
    /// Whether an unterminated trailing record was dropped (evidence of
    /// an interrupted previous run).
    pub dropped_partial_record: bool,
}

impl<'a> Profiler<'a> {
    /// Profiles `layers` with a crash-safe journal at `path`.
    ///
    /// Every completed layer is appended (and flushed) to the journal
    /// before the next begins; if the process dies mid-sweep, re-running
    /// with the same configuration validates the journal, restores the
    /// completed layers and profiles only the rest. Restored and
    /// recomputed layers are bit-identical to an uninterrupted run
    /// because each layer's RNG streams are keyed by its request-order
    /// position.
    ///
    /// # Errors
    ///
    /// [`ProfileError`]s as in [`Profiler::profile`], and
    /// [`JournalError`] (via [`crate::CoreError`]) when the journal is
    /// corrupt, schema-incompatible or belongs to a different
    /// configuration. Corrupt journals are never silently discarded —
    /// delete the file explicitly to start over.
    pub fn profile_journaled(
        &self,
        layers: &[NodeId],
        path: &Path,
    ) -> Result<(Profile, JournalSummary), crate::CoreError> {
        if self.images.is_empty() {
            return Err(ProfileError::NoImages.into());
        }
        if layers.is_empty() {
            return Err(ProfileError::NoLayers.into());
        }
        let _sweep_span = mupod_obs::span("profile.sweep");
        let fp = journal_fingerprint(&self.config, layers, self.images.len());

        let (mut done, dropped_partial) = if path.exists() {
            let _span = mupod_obs::span("journal.load");
            let text = std::fs::read_to_string(path).map_err(JournalError::Io)?;
            parse_journal(&text, &fp, layers.len())?
        } else {
            (BTreeMap::new(), false)
        };
        let resumed = done.len();
        if resumed > 0 {
            mupod_obs::counter_add("journal.layers_resumed", resumed as u64);
            if let Some(last) = done.values().next_back() {
                self.report_progress(resumed, layers.len(), &last.name);
            }
        }

        let remaining: Vec<(usize, NodeId)> = layers
            .iter()
            .enumerate()
            .filter(|(li, _)| !done.contains_key(li))
            .map(|(li, &l)| (li, l))
            .collect();

        // Rewrite the file when starting fresh or when a partial trailing
        // record must be dropped; otherwise append. The rewrite replays
        // the already-valid records verbatim and goes through the atomic
        // writer so a crash mid-rewrite can never lose the old journal —
        // the per-record checksums (not a whole-file footer) remain the
        // integrity mechanism because the file is append-mostly.
        let mut file = if resumed == 0 || dropped_partial {
            let mut contents = journal_header(&fp);
            contents.push('\n');
            for (li, l) in &done {
                let payload = record_payload(*li, l);
                contents.push_str(&format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes())));
            }
            mupod_runtime::artifact::write_atomic_unsealed(path, contents.as_bytes())
                .map_err(|e| JournalError::Io(e.into_io()))?;
            std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(JournalError::Io)?
        } else {
            std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(JournalError::Io)?
        };

        let computed = remaining.len();
        if !remaining.is_empty() {
            let (clean, inventory) = self.sweep_inputs()?;
            let rng = SeededRng::new(self.config.seed);
            // Sequential commit order keeps the journal deterministic;
            // computation itself still parallelizes below.
            let threads = if self.config.threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                self.config.threads
            };
            let threads = threads.min(remaining.len());
            let computed_profiles: Vec<(usize, LayerProfile)> = if threads <= 1 {
                let mut arena = mupod_nn::ExecArena::for_network(self.net);
                let mut out = Vec::with_capacity(remaining.len());
                for &(li, layer) in &remaining {
                    let p = self.profile_one(li, layer, &clean, &inventory, &rng, &mut arena)?;
                    append_record(&mut file, li, &p)?;
                    self.report_progress(resumed + out.len() + 1, layers.len(), &p.name);
                    out.push((li, p));
                }
                out
            } else {
                self.profile_parallel_journaled(
                    &remaining,
                    threads,
                    &clean,
                    &inventory,
                    &rng,
                    &mut file,
                    resumed,
                    layers.len(),
                )?
            };
            for (li, p) in computed_profiles {
                done.insert(li, p);
            }
        }

        let mut out = Vec::with_capacity(layers.len());
        for li in 0..layers.len() {
            out.push(done.remove(&li).ok_or(ProfileError::WorkerPanicked)?);
        }
        Ok((
            Profile::from_layers(out),
            JournalSummary {
                resumed,
                computed,
                dropped_partial_record: dropped_partial,
            },
        ))
    }

    /// Parallel per-layer profiling with *ordered commit*: workers claim
    /// jobs off an atomic cursor, results stream back over a channel, and
    /// the journal is appended strictly in request order so its contents
    /// stay deterministic (and resumable prefixes stay meaningful).
    /// `resumed`/`total` feed the progress callback, which fires in
    /// commit order.
    #[allow(clippy::too_many_arguments)]
    fn profile_parallel_journaled(
        &self,
        jobs: &[(usize, NodeId)],
        threads: usize,
        clean: &[mupod_nn::Activations],
        inventory: &mupod_nn::inventory::LayerInventory,
        rng: &SeededRng,
        file: &mut std::fs::File,
        resumed: usize,
        total: usize,
    ) -> Result<Vec<(usize, LayerProfile)>, crate::CoreError> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let next_job = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<LayerProfile, ProfileError>)>();
        std::thread::scope(
            |scope| -> Result<Vec<(usize, LayerProfile)>, crate::CoreError> {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let next_job = &next_job;
                    scope.spawn(move || {
                        let mut arena = mupod_nn::ExecArena::for_network(self.net);
                        loop {
                            let pos = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some(&(li, layer)) = jobs.get(pos) else {
                                break;
                            };
                            let res =
                                self.profile_one(li, layer, clean, inventory, rng, &mut arena);
                            // A send failure means the committer bailed on
                            // an earlier error; just stop working.
                            if tx.send((pos, res)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);

                let mut buffer: BTreeMap<usize, LayerProfile> = BTreeMap::new();
                let mut committed = Vec::with_capacity(jobs.len());
                let mut next_commit = 0usize;
                for (pos, res) in rx {
                    buffer.insert(pos, res?);
                    while let Some(p) = buffer.remove(&next_commit) {
                        let li = jobs[next_commit].0;
                        append_record(file, li, &p)?;
                        self.report_progress(resumed + committed.len() + 1, total, &p.name);
                        committed.push((li, p));
                        next_commit += 1;
                    }
                }
                if committed.len() != jobs.len() {
                    return Err(ProfileError::WorkerPanicked.into());
                }
                Ok(committed)
            },
        )
    }
}

/// Appends one checksummed record and flushes it to the OS, so a kill
/// after this point can lose at most the line being written (which the
/// reader then drops as a partial record).
fn append_record(
    file: &mut std::fs::File,
    index: usize,
    l: &LayerProfile,
) -> Result<(), JournalError> {
    let payload = record_payload(index, l);
    let line = format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()));
    file.write_all(line.as_bytes())?;
    file.flush()?;
    mupod_obs::counter_add("journal.records_appended", 1);
    mupod_obs::counter_add("journal.bytes_written", line.len() as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> Profile {
        Profile::from_layers(vec![
            LayerProfile {
                node: NodeId::from_index_for_tests(1),
                name: "conv1".into(),
                lambda: 0.52,
                theta: 0.013,
                r_squared: 0.999,
                max_relative_error: 0.03,
                max_abs: 161.0,
                input_elems: 154_600,
                macs: 105_000_000,
                sweep: vec![(0.1, 0.06)],
                fallback: None,
            },
            LayerProfile {
                node: NodeId::from_index_for_tests(4),
                name: "conv2".into(),
                lambda: 1.7,
                theta: -0.002,
                r_squared: 0.995,
                max_relative_error: 0.08,
                max_abs: 139.0,
                input_elems: 70_000,
                macs: 225_000_000,
                sweep: vec![],
                fallback: Some(FallbackReason::LowRSquared(0.41)),
            },
        ])
    }

    #[test]
    fn roundtrip_preserves_fields() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.save_csv(&mut buf).unwrap();
        let q = Profile::load_csv(buf.as_slice()).unwrap();
        assert_eq!(q.len(), 2);
        for (a, b) in p.layers().iter().zip(q.layers()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.name, b.name);
            assert_eq!(a.lambda, b.lambda);
            assert_eq!(a.theta, b.theta);
            assert_eq!(a.max_abs, b.max_abs);
            assert_eq!(a.input_elems, b.input_elems);
            assert_eq!(a.macs, b.macs);
            assert_eq!(a.fallback, b.fallback);
        }
        // Sweep points are intentionally not persisted in CSV.
        assert!(q.layers()[0].sweep.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        let err = Profile::load_csv("nope\n1,a,1,1,1,1,1,1,1,-\n".as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(1, _) => {}
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_old_schema_with_guidance() {
        let text = format!("{HEADER_V1}\n1,conv1,0.5,0,1,0,1,1,1\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(1, msg) => assert!(msg.contains("re-profile"), "{msg}"),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_short_row() {
        let text = format!("{HEADER}\n1,conv1,0.5\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(2, msg) => assert!(msg.contains("10 fields")),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_bad_number() {
        let text = format!("{HEADER}\n1,conv1,abc,0,1,0,1,1,1,-\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(2, msg) => assert!(msg.contains("lambda")),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rejects_unknown_fallback_token() {
        let text = format!("{HEADER}\n1,conv1,0.5,0,1,0,1,1,1,??\n");
        let err = Profile::load_csv(text.as_bytes()).unwrap_err();
        match err {
            ProfileIoError::Parse(2, msg) => assert!(msg.contains("fallback"), "{msg}"),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let p = sample_profile();
        let mut buf = Vec::new();
        p.save_csv(&mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let q = Profile::load_csv(buf.as_slice()).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fallback_tokens_roundtrip() {
        for fb in [
            None,
            Some(FallbackReason::NegativeSlope),
            Some(FallbackReason::LowRSquared(0.123_456_789_012_345)),
            Some(FallbackReason::TooFewPoints(2)),
            Some(FallbackReason::FitFailed(FitError::DegenerateX)),
            Some(FallbackReason::FitFailed(FitError::NonFiniteInput)),
        ] {
            let token = fallback_to_token(fb);
            assert_eq!(fallback_from_token(&token).unwrap(), fb, "token `{token}`");
        }
    }

    #[test]
    fn sweep_serialization_is_bit_exact() {
        let sweep = vec![
            (0.1, 0.333_333_333_333_333_3),
            (f64::MIN_POSITIVE, 1.0e300),
            (1.0 / 3.0, 2.0_f64.powi(-40)),
        ];
        let s = serialize_sweep(&sweep);
        assert_eq!(parse_sweep(&s).unwrap(), sweep);
        assert_eq!(parse_sweep("-").unwrap(), vec![]);
    }

    #[test]
    fn journal_record_roundtrip() {
        let p = sample_profile();
        let l = &p.layers()[0];
        let payload = record_payload(3, l);
        let line = format!("{:016x} {payload}\n", fnv1a64(payload.as_bytes()));
        let text = format!("{}\n{line}", journal_header("00000000deadbeef"));
        let (done, partial) = parse_journal(&text, "00000000deadbeef", 5).unwrap();
        assert!(!partial);
        assert_eq!(done.len(), 1);
        let got = &done[&3];
        assert_eq!(got.lambda, l.lambda);
        assert_eq!(got.sweep, l.sweep);
        assert_eq!(got.name, l.name);
    }

    #[test]
    fn journal_rejects_flipped_byte() {
        let p = sample_profile();
        let payload = record_payload(0, &p.layers()[0]);
        let mut line = format!("{:016x} {payload}", fnv1a64(payload.as_bytes()));
        // Flip a digit inside lambda.
        let flip_at = line.find("0.52").unwrap() + 2;
        line.replace_range(flip_at..flip_at + 1, "7");
        let text = format!("{}\n{line}\n", journal_header("ab"));
        match parse_journal(&text, "ab", 5).unwrap_err() {
            JournalError::Corrupt { line: 2, reason } => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn journal_drops_unterminated_tail() {
        let p = sample_profile();
        let pay0 = record_payload(0, &p.layers()[0]);
        let pay1 = record_payload(1, &p.layers()[1]);
        let text = format!(
            "{}\n{:016x} {pay0}\n{:016x} {}",
            journal_header("ff"),
            fnv1a64(pay0.as_bytes()),
            fnv1a64(pay1.as_bytes()),
            // Truncated mid-payload, no trailing newline: a killed append.
            &pay1[..pay1.len() / 2],
        );
        let (done, partial) = parse_journal(&text, "ff", 5).unwrap();
        assert!(partial);
        assert_eq!(done.len(), 1);
        assert!(done.contains_key(&0));
    }

    #[test]
    fn journal_rejects_wrong_fingerprint_version_and_magic() {
        let hdr_ok = journal_header("aa");
        match parse_journal(&format!("{hdr_ok}\n"), "bb", 1).unwrap_err() {
            JournalError::ConfigMismatch { expected, found } => {
                assert_eq!(expected, "bb");
                assert_eq!(found, "aa");
            }
            e => panic!("unexpected error {e:?}"),
        }
        match parse_journal("mupod-journal v9 config=aa\n", "aa", 1).unwrap_err() {
            JournalError::UnsupportedVersion(v) => assert_eq!(v, "v9"),
            e => panic!("unexpected error {e:?}"),
        }
        match parse_journal("something else\n", "aa", 1).unwrap_err() {
            JournalError::BadHeader(_) => {}
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn journal_rejects_out_of_range_and_duplicate_index() {
        let p = sample_profile();
        let pay = record_payload(7, &p.layers()[0]);
        let text = format!(
            "{}\n{:016x} {pay}\n",
            journal_header("cc"),
            fnv1a64(pay.as_bytes())
        );
        match parse_journal(&text, "cc", 3).unwrap_err() {
            JournalError::Corrupt { reason, .. } => {
                assert!(reason.contains("out of range"), "{reason}")
            }
            e => panic!("unexpected error {e:?}"),
        }
        let pay = record_payload(0, &p.layers()[0]);
        let line = format!("{:016x} {pay}\n", fnv1a64(pay.as_bytes()));
        let text = format!("{}\n{line}{line}", journal_header("cc"));
        match parse_journal(&text, "cc", 3).unwrap_err() {
            JournalError::Corrupt { reason, .. } => {
                assert!(reason.contains("duplicate"), "{reason}")
            }
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn empty_journal_file_is_a_fresh_start() {
        let (done, partial) = parse_journal("", "aa", 3).unwrap();
        assert!(done.is_empty());
        assert!(!partial);
    }

    #[test]
    fn fingerprint_tracks_profiling_inputs() {
        use crate::profile::ProfileConfig;
        let layers = [
            NodeId::from_index_for_tests(1),
            NodeId::from_index_for_tests(4),
        ];
        let base = ProfileConfig::default();
        let fp = journal_fingerprint(&base, &layers, 10);
        assert_eq!(fp, journal_fingerprint(&base, &layers, 10));
        assert_ne!(
            fp,
            journal_fingerprint(&ProfileConfig { seed: 1, ..base }, &layers, 10)
        );
        assert_ne!(fp, journal_fingerprint(&base, &layers[..1], 10));
        assert_ne!(fp, journal_fingerprint(&base, &layers, 11));
        // Thread count must NOT change the fingerprint: results are
        // bit-identical for any thread count.
        assert_eq!(
            fp,
            journal_fingerprint(&ProfileConfig { threads: 7, ..base }, &layers, 10)
        );
    }
}
