//! Multi-objective bitwidth allocation (§V-D, Eq. 8).
//!
//! Given the profiled `(λ_K, θ_K)` lines and the searched output budget
//! `σ_{Y_Ł}`, choose the error shares `ξ` minimizing
//!
//! `F(ξ) = Σ_K ρ_K · (−log2 Δ_{X_K}(ξ))`,  `Σ ξ_K = 1`, `ξ ≥ lb`,
//!
//! with `Δ_{X_K}(ξ) = λ_K σ_{Y_Ł} √ξ_K + θ_K` (Eq. 7). `ρ_K` encodes
//! the hardware objective: `#Input` per layer for bandwidth, `#MAC` per
//! layer for MAC energy — or any custom weighting ("it is conceivable
//! that designers can formulate different optimization criteria", §VI-A).
//!
//! The solve runs both projected-gradient and exponentiated-gradient
//! descent and keeps the better optimum — the cross-check standing in
//! for Octave's `sqp` (DESIGN.md §4).

use crate::profile::Profile;
use mupod_optim::{ExponentiatedGradient, FnObjective, ProjectedGradient, SimplexObjective};
use mupod_quant::{BitwidthAllocation, LayerFormat};

/// The hardware criterion that weights each layer in Eq. 8.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Minimize total input-read traffic: `ρ_K = #Input_K` (Table II's
    /// `Opt_for_#Input`).
    Bandwidth,
    /// Minimize total MAC energy: `ρ_K = #MAC_K` (Table II's
    /// `Opt_for_#MAC`).
    MacEnergy,
    /// Treat every layer equally: `ρ_K = 1`.
    Unweighted,
    /// Caller-supplied per-layer weights.
    Custom(Vec<f64>),
}

impl Objective {
    /// Resolves the `ρ` vector against a profile.
    ///
    /// # Panics
    ///
    /// Panics if a custom weight vector has the wrong length or
    /// non-positive total weight.
    pub fn rho(&self, profile: &Profile) -> Vec<f64> {
        let rho = match self {
            Objective::Bandwidth => profile
                .layers()
                .iter()
                .map(|l| l.input_elems as f64)
                .collect(),
            Objective::MacEnergy => profile.layers().iter().map(|l| l.macs as f64).collect(),
            Objective::Unweighted => vec![1.0; profile.len()],
            Objective::Custom(w) => {
                assert_eq!(w.len(), profile.len(), "custom rho length mismatch");
                w.clone()
            }
        };
        assert!(
            rho.iter().sum::<f64>() > 0.0,
            "objective weights must have positive total"
        );
        rho
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Bandwidth => "bandwidth",
            Objective::MacEnergy => "mac-energy",
            Objective::Unweighted => "unweighted",
            Objective::Custom(_) => "custom",
        }
    }
}

/// Tuning knobs for the allocation solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocateConfig {
    /// Lower bound on each `ξ_K` (the paper explores `[0.1/Ł, 0.8]`;
    /// a strictly positive floor keeps every `Δ_K` finite).
    pub xi_lower_bound: f64,
    /// Also run the exponentiated-gradient solver and keep the better
    /// optimum (cross-validation; costs a second solve).
    pub cross_check: bool,
}

impl Default for AllocateConfig {
    fn default() -> Self {
        Self {
            xi_lower_bound: 1e-4,
            cross_check: true,
        }
    }
}

/// The allocation produced by [`allocate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationOutcome {
    /// Per-layer fixed-point formats.
    pub allocation: BitwidthAllocation,
    /// The optimized error shares `ξ` (sums to 1).
    pub xi: Vec<f64>,
    /// Objective value `F(ξ)` at the optimum.
    pub objective_value: f64,
    /// The granted per-layer `Δ_{X_K}`.
    pub deltas: Vec<f64>,
}

/// Builds the Eq. 8 objective for a profile, budget and weights.
fn eq8_objective<'a>(
    profile: &'a Profile,
    sigma: f64,
    rho: &'a [f64],
) -> impl SimplexObjective + 'a {
    let n = profile.len();
    FnObjective::new(n, move |xi: &[f64]| {
        profile
            .layers()
            .iter()
            .zip(rho)
            .zip(xi)
            .map(|((lp, &r), &x)| -r * lp.delta_for(sigma, x).log2())
            .sum()
    })
}

/// Solves Eq. 8 and converts the granted `Δ`s into per-layer formats.
///
/// # Panics
///
/// Panics if the profile is empty, `sigma` is not positive finite, or
/// the objective weights are invalid.
pub fn allocate(
    profile: &Profile,
    sigma: f64,
    objective: &Objective,
    config: &AllocateConfig,
) -> AllocationOutcome {
    assert!(!profile.is_empty(), "profile must not be empty");
    assert!(
        sigma.is_finite() && sigma > 0.0,
        "sigma must be positive finite, got {sigma}"
    );
    let rho = objective.rho(profile);
    let obj = eq8_objective(profile, sigma, &rho);

    let pgd = ProjectedGradient {
        lower_bound: config.xi_lower_bound,
        ..Default::default()
    };
    let mut best = pgd.minimize(&obj);
    if config.cross_check {
        let eg = ExponentiatedGradient {
            lower_bound: config.xi_lower_bound,
            ..Default::default()
        };
        let alt = eg.minimize(&obj);
        if alt.value < best.value {
            best = alt;
        }
    }

    let realize = |xi: &[f64]| -> (Vec<f64>, BitwidthAllocation) {
        let deltas: Vec<f64> = profile
            .layers()
            .iter()
            .zip(xi)
            .map(|(lp, &x)| lp.delta_for(sigma, x))
            .collect();
        let allocation: BitwidthAllocation = profile
            .layers()
            .iter()
            .zip(&deltas)
            .map(|(lp, &d)| LayerFormat::from_delta(lp.name.clone(), d, lp.max_abs))
            .collect();
        (deltas, allocation)
    };

    let (deltas, allocation) = realize(&best.xi);

    // Discreteness guard: Eq. 8 optimizes a continuous proxy, but the
    // realized cost rounds each fraction bitwidth up with a ceiling. On
    // shallow networks the rounded continuous optimum can lose to the
    // plain equal split, which is also feasible (Σξ = 1) — keep whichever
    // realizes cheaper on the actual objective.
    let equal_xi = vec![1.0 / profile.len() as f64; profile.len()];
    let (equal_deltas, equal_allocation) = realize(&equal_xi);
    let cost = allocation.total_weighted_bits(&rho);
    let equal_cost = equal_allocation.total_weighted_bits(&rho);
    if equal_cost < cost {
        let obj = eq8_objective(profile, sigma, &rho);
        let value = obj.value(&equal_xi);
        return AllocationOutcome {
            allocation: equal_allocation,
            xi: equal_xi,
            objective_value: value,
            deltas: equal_deltas,
        };
    }

    AllocationOutcome {
        allocation,
        xi: best.xi,
        objective_value: best.value,
        deltas,
    }
}

/// The paper's `equal_scheme` baseline: `ξ_K = 1/Ł` for every layer.
///
/// # Panics
///
/// Panics if the profile is empty or `sigma` is not positive finite.
pub fn allocate_equal(profile: &Profile, sigma: f64) -> AllocationOutcome {
    assert!(!profile.is_empty(), "profile must not be empty");
    assert!(
        sigma.is_finite() && sigma > 0.0,
        "sigma must be positive finite, got {sigma}"
    );
    let l = profile.len() as f64;
    let xi = vec![1.0 / l; profile.len()];
    let deltas: Vec<f64> = profile
        .layers()
        .iter()
        .map(|lp| lp.delta_for(sigma, 1.0 / l))
        .collect();
    let allocation: BitwidthAllocation = profile
        .layers()
        .iter()
        .zip(&deltas)
        .map(|(lp, &d)| LayerFormat::from_delta(lp.name.clone(), d, lp.max_abs))
        .collect();
    let rho = vec![1.0; profile.len()];
    let value = eq8_objective(profile, sigma, &rho).value(&xi);
    AllocationOutcome {
        allocation,
        xi,
        objective_value: value,
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{LayerProfile, Profile};
    use mupod_nn::NodeId;

    /// Hand-built profile: two layers with very different objective
    /// weights and identical error sensitivity.
    fn synthetic_profile(rho_heavy_first: bool) -> Profile {
        let mk = |i: usize, inputs: u64, macs: u64| LayerProfile {
            node: NodeId::from_index_for_tests(i),
            name: format!("l{i}"),
            lambda: 0.5,
            theta: 0.01,
            r_squared: 1.0,
            max_relative_error: 0.0,
            max_abs: 100.0,
            input_elems: inputs,
            macs,
            sweep: vec![],
            fallback: None,
        };
        let (a, b) = if rho_heavy_first {
            (mk(1, 1000, 1000), mk(2, 10, 10))
        } else {
            (mk(1, 10, 10), mk(2, 1000, 1000))
        };
        Profile::from_layers(vec![a, b])
    }

    #[test]
    fn heavy_layer_gets_larger_error_share() {
        // The optimizer trades bits away from the expensive layer by
        // granting it a larger ξ (larger Δ, fewer bits).
        let profile = synthetic_profile(true);
        let out = allocate(
            &profile,
            0.5,
            &Objective::Bandwidth,
            &AllocateConfig::default(),
        );
        assert!(
            out.xi[0] > out.xi[1],
            "heavy layer should get more error share: {:?}",
            out.xi
        );
        let bits = out.allocation.bits();
        assert!(
            bits[0] <= bits[1],
            "heavy layer should get no more bits: {bits:?}"
        );
    }

    #[test]
    fn objective_symmetry() {
        let p1 = synthetic_profile(true);
        let p2 = synthetic_profile(false);
        let o1 = allocate(&p1, 0.5, &Objective::Bandwidth, &AllocateConfig::default());
        let o2 = allocate(&p2, 0.5, &Objective::Bandwidth, &AllocateConfig::default());
        assert!((o1.xi[0] - o2.xi[1]).abs() < 1e-3);
    }

    #[test]
    fn xi_sums_to_one() {
        let profile = synthetic_profile(true);
        for objective in [
            Objective::Bandwidth,
            Objective::MacEnergy,
            Objective::Unweighted,
        ] {
            let out = allocate(&profile, 0.3, &objective, &AllocateConfig::default());
            let sum: f64 = out.xi.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6,
                "{}: ξ sums to {sum}",
                objective.name()
            );
        }
    }

    #[test]
    fn equal_scheme_is_uniform() {
        let profile = synthetic_profile(true);
        let out = allocate_equal(&profile, 0.4);
        assert!((out.xi[0] - 0.5).abs() < 1e-12);
        assert!((out.xi[1] - 0.5).abs() < 1e-12);
        assert_eq!(out.deltas.len(), 2);
        // Identical sensitivities -> identical deltas.
        assert!((out.deltas[0] - out.deltas[1]).abs() < 1e-12);
    }

    #[test]
    fn optimized_beats_equal_scheme_on_its_objective() {
        let profile = synthetic_profile(true);
        let sigma = 0.5;
        let opt = allocate(
            &profile,
            sigma,
            &Objective::Bandwidth,
            &AllocateConfig::default(),
        );
        let equal = allocate_equal(&profile, sigma);
        let rho = Objective::Bandwidth.rho(&profile);
        let cost_opt = opt.allocation.total_weighted_bits(&rho);
        let cost_equal = equal.allocation.total_weighted_bits(&rho);
        assert!(
            cost_opt <= cost_equal,
            "optimized {cost_opt} should not exceed equal-scheme {cost_equal}"
        );
    }

    #[test]
    fn larger_sigma_means_fewer_bits() {
        let profile = synthetic_profile(true);
        let small = allocate(
            &profile,
            0.05,
            &Objective::Unweighted,
            &AllocateConfig::default(),
        );
        let large = allocate(
            &profile,
            5.0,
            &Objective::Unweighted,
            &AllocateConfig::default(),
        );
        let eff_small = small.allocation.effective_bitwidth(&[1.0, 1.0]);
        let eff_large = large.allocation.effective_bitwidth(&[1.0, 1.0]);
        assert!(
            eff_large < eff_small,
            "σ=5 gave {eff_large} bits, σ=0.05 gave {eff_small}"
        );
    }

    #[test]
    fn custom_rho_validated() {
        let profile = synthetic_profile(true);
        let ok = Objective::Custom(vec![1.0, 2.0]);
        assert_eq!(ok.rho(&profile), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "custom rho length mismatch")]
    fn custom_rho_wrong_length_panics() {
        let profile = synthetic_profile(true);
        Objective::Custom(vec![1.0]).rho(&profile);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        let profile = synthetic_profile(true);
        allocate(
            &profile,
            -1.0,
            &Objective::Unweighted,
            &AllocateConfig::default(),
        );
    }
}
