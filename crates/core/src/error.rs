//! The workspace-level error hierarchy.
//!
//! Every failure mode of the profile → search → allocate → validate
//! pipeline is a typed error; [`CoreError`] is the top of the hierarchy,
//! unifying the per-stage enums so callers (the CLI, integration
//! harnesses) can hold one error type while still matching on the
//! specific failure. The design rule throughout: **panics are reserved
//! for programmer errors** (shape mismatches, out-of-range ids built by
//! hand); everything reachable from bad *data* — poisoned tensors,
//! degenerate fits, corrupt journals, failed validation — is a `Result`.

use crate::optimizer::OptimizeError;
use crate::profile::ProfileError;
use crate::profile_io::{JournalError, ProfileIoError};
use mupod_nn::ExecError;
use mupod_stats::regression::FitError;

/// Any failure of the MUPOD pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Error-injection profiling failed (empty inputs, numerical fault,
    /// strict-mode degenerate fit, …).
    Profile(ProfileError),
    /// The end-to-end optimization failed (profiling, no layers, or the
    /// final quantized validation missed the accuracy target).
    Optimize(OptimizeError),
    /// Profile CSV persistence failed.
    ProfileIo(ProfileIoError),
    /// The profiling journal was unreadable, corrupt or incompatible.
    Journal(JournalError),
    /// A regression over sweep points failed.
    Fit(FitError),
    /// A forward pass produced (or was given) non-finite values.
    Exec(ExecError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Profile(e) => write!(f, "{e}"),
            CoreError::Optimize(e) => write!(f, "{e}"),
            CoreError::ProfileIo(e) => write!(f, "{e}"),
            CoreError::Journal(e) => write!(f, "{e}"),
            CoreError::Fit(e) => write!(f, "{e}"),
            CoreError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Profile(e) => Some(e),
            CoreError::Optimize(e) => Some(e),
            CoreError::ProfileIo(e) => Some(e),
            CoreError::Journal(e) => Some(e),
            CoreError::Fit(e) => Some(e),
            CoreError::Exec(e) => Some(e),
        }
    }
}

impl From<ProfileError> for CoreError {
    fn from(e: ProfileError) -> Self {
        CoreError::Profile(e)
    }
}

impl From<OptimizeError> for CoreError {
    fn from(e: OptimizeError) -> Self {
        CoreError::Optimize(e)
    }
}

impl From<ProfileIoError> for CoreError {
    fn from(e: ProfileIoError) -> Self {
        CoreError::ProfileIo(e)
    }
}

impl From<JournalError> for CoreError {
    fn from(e: JournalError) -> Self {
        CoreError::Journal(e)
    }
}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        CoreError::Fit(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display_chain() {
        let e: CoreError = ProfileError::NoImages.into();
        assert!(e.to_string().contains("image"));
        let e: CoreError = FitError::DegenerateX.into();
        assert!(e.to_string().contains("identical"));
        let e: CoreError = JournalError::UnsupportedVersion("v9".into()).into();
        assert!(e.to_string().contains("v9"));
        // source() exposes the wrapped error for downcasting callers.
        let e: CoreError = ProfileError::NoLayers.into();
        let src = std::error::Error::source(&e).unwrap();
        assert!(src.downcast_ref::<ProfileError>().is_some());
    }
}
