//! The error-injection profiler: measuring `λ_K` and `θ_K` (§V-A).
//!
//! For each analyzable layer `K`, the profiler sweeps ~20 uniform-noise
//! magnitudes `Δ`, replays the network suffix from `K` for every image,
//! measures the standard deviation of the induced logits error
//! `σ_{Y_{K→Ł}}`, and fits the per-layer line of Eq. 5,
//! `Δ_{X_K} = λ_K · σ_{Y_{K→Ł}} + θ_K`.
//!
//! Clean activations are cached once per image; only the affected suffix
//! re-executes per `(layer, Δ)` pair — the optimization that makes
//! 156-layer profiling take minutes, not days.

use mupod_nn::inventory::LayerInventory;
use mupod_nn::tap::UniformNoiseTap;
use mupod_nn::{ExecArena, ExecError, KernelTier, Network, NodeId, ValidateConfig};
use mupod_stats::regression::FitError;
use mupod_stats::{LinearFit, RunningStats, SeededRng};
use mupod_tensor::Tensor;

/// Configuration of the profiling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Number of `Δ` magnitudes per layer (the paper found 20
    /// sufficient).
    pub n_deltas: usize,
    /// Largest injected `Δ` as a fraction of the layer's `max|X_K|`.
    pub delta_max_fraction: f64,
    /// Geometric decay between consecutive `Δ` values (octaves).
    pub delta_step_octaves: f64,
    /// Independent noise draws per image per `Δ` (raises the sample
    /// count of the σ estimate when the output layer is small).
    pub repeats: usize,
    /// RNG seed for the injected noise.
    pub seed: u64,
    /// Replay the full network instead of the affected suffix
    /// (ablation/benchmark knob — results are identical).
    pub full_replay: bool,
    /// Worker threads for per-layer parallelism. `0` means "use the
    /// machine's available parallelism". Results are bit-identical for
    /// any thread count: each layer's noise streams are keyed by its
    /// position, not by execution order.
    pub threads: usize,
    /// Kernel tier the sweep's forward passes run on. The default,
    /// [`KernelTier::Exact`], keeps every profile artifact bit-exact
    /// and byte-reproducible; `Fast` trades that for the SIMD/FMA
    /// microkernels (profile CSVs are then *not* byte-comparable
    /// against exact-tier runs).
    pub kernel_tier: KernelTier,
    /// Numerical guardrails applied during the sweep.
    pub guard: GuardConfig,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            n_deltas: 20,
            delta_max_fraction: 1.0 / 64.0,
            delta_step_octaves: 0.3,
            repeats: 2,
            seed: 0x9E37,
            full_replay: false,
            threads: 0,
            kernel_tier: KernelTier::default(),
            guard: GuardConfig::default(),
        }
    }
}

/// Numerical guardrails for the profiling sweep.
///
/// Two independent protections:
///
/// * **Finiteness sweeps** (`validate_activations`): every forward pass
///   is checked at each layer boundary; a NaN/Inf is a hard typed error
///   ([`ProfileError::NumericalFault`]) — a poisoned activation can never
///   be "degraded around", because every statistic downstream of it is
///   garbage.
/// * **Fit rejection**: a layer whose Eq. 5 regression is degenerate —
///   negative `λ_K`, R² below `min_r_squared`, or fewer than
///   `min_points` usable sweep points — is either replaced by a flagged
///   conservative fallback (default) or, with `strict`, reported as a
///   typed error. Degenerate fits are recoverable: the fallback simply
///   grants that layer no quantization-noise budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Sweep every activation boundary for NaN/Inf (cheap; default on).
    pub validate_activations: bool,
    /// Minimum acceptable R² of a layer's Eq. 5 fit.
    pub min_r_squared: f64,
    /// Minimum usable `(σ, Δ)` sweep points (σ finite and positive).
    pub min_points: usize,
    /// Treat a degenerate fit as a hard error instead of falling back.
    pub strict: bool,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            validate_activations: true,
            min_r_squared: 0.5,
            min_points: 3,
            strict: false,
        }
    }
}

/// Why a layer's Eq. 5 fit was rejected and replaced by the conservative
/// fallback (or reported as an error under [`GuardConfig::strict`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FallbackReason {
    /// Fitted `λ_K ≤ 0`: the output error did not grow with the injected
    /// noise, so the line cannot be inverted into a noise budget.
    NegativeSlope,
    /// R² below [`GuardConfig::min_r_squared`]; payload is the fitted R².
    LowRSquared(f64),
    /// Fewer than [`GuardConfig::min_points`] usable sweep points;
    /// payload is the usable count.
    TooFewPoints(usize),
    /// The regression itself failed.
    FitFailed(FitError),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::NegativeSlope => {
                write!(
                    f,
                    "fitted slope λ ≤ 0 (output error did not grow with noise)"
                )
            }
            FallbackReason::LowRSquared(r2) => {
                write!(f, "fit quality too low (R² = {r2:.4})")
            }
            FallbackReason::TooFewPoints(n) => {
                write!(f, "only {n} usable sweep points")
            }
            FallbackReason::FitFailed(e) => write!(f, "regression failed: {e}"),
        }
    }
}

/// Per-layer profiling result: the Eq. 5 line plus inventory facts.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Node id of the layer.
    pub node: NodeId,
    /// Layer name.
    pub name: String,
    /// Slope `λ_K` of Eq. 5.
    pub lambda: f64,
    /// Intercept `θ_K` of Eq. 5.
    pub theta: f64,
    /// R² of the per-layer regression.
    pub r_squared: f64,
    /// Maximum relative error predicting `Δ` from `σ` on the sweep
    /// points (the paper's "< 5 % mostly, < 10 % worst case" metric).
    pub max_relative_error: f64,
    /// Observed `max|X_K|` (drives the integer bitwidth).
    pub max_abs: f64,
    /// `#Input` elements per inference.
    pub input_elems: u64,
    /// `#MAC` operations per inference.
    pub macs: u64,
    /// The raw sweep points `(σ_{Y_{K→Ł}}, Δ_{X_K})` behind the fit.
    pub sweep: Vec<(f64, f64)>,
    /// `Some(reason)` when the Eq. 5 fit was rejected and this profile is
    /// the conservative fallback (`λ = θ = 0`, so [`LayerProfile::delta_for`]
    /// grants only the f32 floor — i.e. maximum precision for this layer).
    pub fallback: Option<FallbackReason>,
}

impl LayerProfile {
    /// Eq. 7: the `Δ_{X_K}` granted by output budget `σ_{Y_Ł}` and share
    /// `ξ_K`, clamped to a positive floor.
    ///
    /// The floor is the layer's f32-meaningful precision limit
    /// (`max|X_K| · 2⁻²⁰`): a fitted `θ_K ≤ 0` would otherwise demand a
    /// grid finer than the arithmetic that will run the network, i.e.
    /// formats no hardware target of this method would instantiate.
    pub fn delta_for(&self, sigma_out: f64, xi: f64) -> f64 {
        let floor = (self.max_abs * (-20.0f64).exp2()).max(1e-12);
        (self.lambda * sigma_out * xi.max(0.0).sqrt() + self.theta).max(floor)
    }
}

/// Errors from profiling.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// No images were provided.
    NoImages,
    /// No layers were requested.
    NoLayers,
    /// A layer's Eq. 5 fit was degenerate and [`GuardConfig::strict`]
    /// forbade the fallback.
    DegenerateLayer(String, FallbackReason),
    /// A NaN/Inf was detected during a profiling forward pass. Unlike a
    /// degenerate fit this is never degradable: every statistic computed
    /// from the poisoned pass would be silently wrong.
    NumericalFault(ExecError),
    /// A requested layer is not a dot-product layer (nothing to profile).
    NotAnalyzable(NodeId),
    /// A profiling worker thread panicked.
    WorkerPanicked,
    /// The sweep was cancelled (SIGINT or a supervisor deadline) and
    /// drained at a safe point. Journaled runs keep every completed
    /// layer on disk; resuming re-profiles only the rest.
    Cancelled(mupod_runtime::CancelReason),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NoImages => write!(f, "profiling needs at least one image"),
            ProfileError::NoLayers => write!(f, "profiling needs at least one layer"),
            ProfileError::DegenerateLayer(name, reason) => {
                write!(f, "degenerate Eq. 5 fit for layer `{name}`: {reason}")
            }
            ProfileError::NumericalFault(e) => {
                write!(f, "numerical fault during profiling: {e}")
            }
            ProfileError::NotAnalyzable(node) => {
                write!(f, "node {node} is not a dot-product layer")
            }
            ProfileError::WorkerPanicked => write!(f, "a profiling worker panicked"),
            ProfileError::Cancelled(reason) => {
                write!(f, "profiling sweep cancelled ({reason})")
            }
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::NumericalFault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for ProfileError {
    fn from(e: ExecError) -> Self {
        ProfileError::NumericalFault(e)
    }
}

/// Fits one layer's sweep under the guardrails, producing either the
/// Eq. 5 coefficients or the flagged conservative fallback.
///
/// Shared by the input and weight profilers so degenerate-fit policy is
/// identical in both.
pub(crate) fn fit_sweep_guarded(
    name: &str,
    sigmas: &[f64],
    deltas: &[f64],
    guard: &GuardConfig,
) -> Result<SweepFit, ProfileError> {
    let usable: Vec<(f64, f64)> = sigmas
        .iter()
        .zip(deltas)
        .filter(|(&s, &d)| s.is_finite() && s > 0.0 && d.is_finite() && d > 0.0)
        .map(|(&s, &d)| (s, d))
        .collect();
    let degenerate = |reason: FallbackReason| {
        if guard.strict {
            Err(ProfileError::DegenerateLayer(name.to_string(), reason))
        } else {
            Ok(SweepFit::fallback(reason))
        }
    };
    if usable.len() < guard.min_points.max(2) {
        return degenerate(FallbackReason::TooFewPoints(usable.len()));
    }
    let xs: Vec<f64> = usable.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = usable.iter().map(|p| p.1).collect();
    // Relative (1/Δ²-weighted) least squares: the sweep spans two decades
    // of Δ, and the paper's quality metric is *relative* prediction
    // error (§IV).
    let weights: Vec<f64> = ys.iter().map(|d| 1.0 / (d * d)).collect();
    let fit = match LinearFit::fit_weighted(&xs, &ys, &weights) {
        Ok(fit) => fit,
        Err(e) => return degenerate(FallbackReason::FitFailed(e)),
    };
    if fit.slope <= 0.0 {
        return degenerate(FallbackReason::NegativeSlope);
    }
    if fit.r_squared < guard.min_r_squared {
        return degenerate(FallbackReason::LowRSquared(fit.r_squared));
    }
    Ok(SweepFit {
        lambda: fit.slope,
        theta: fit.intercept,
        r_squared: fit.r_squared,
        max_relative_error: fit.max_relative_error(&xs, &ys),
        fallback: None,
    })
}

/// Outcome of [`fit_sweep_guarded`]: Eq. 5 coefficients or a fallback.
#[derive(Debug)]
pub(crate) struct SweepFit {
    pub lambda: f64,
    pub theta: f64,
    pub r_squared: f64,
    pub max_relative_error: f64,
    pub fallback: Option<FallbackReason>,
}

impl SweepFit {
    fn fallback(reason: FallbackReason) -> Self {
        Self {
            lambda: 0.0,
            theta: 0.0,
            r_squared: 0.0,
            max_relative_error: 0.0,
            fallback: Some(reason),
        }
    }
}

/// A complete network profile: every layer's Eq. 5 coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    layers: Vec<LayerProfile>,
}

impl Profile {
    pub(crate) fn from_layers(layers: Vec<LayerProfile>) -> Self {
        Self { layers }
    }

    /// Per-layer profiles in the order the layers were given.
    pub fn layers(&self) -> &[LayerProfile] {
        &self.layers
    }

    /// Number of profiled layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The node ids in profile order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.layers.iter().map(|l| l.node).collect()
    }

    /// Layers whose Eq. 5 fit was rejected, with the rejection reason.
    ///
    /// These carry the conservative fallback (`λ = θ = 0` → maximum
    /// precision); surfaced so reports can flag them instead of letting
    /// a silently over-provisioned layer masquerade as a measured one.
    pub fn fallback_layers(&self) -> Vec<(&str, FallbackReason)> {
        self.layers
            .iter()
            .filter_map(|l| l.fallback.map(|r| (l.name.as_str(), r)))
            .collect()
    }

    /// Worst regression R² across layers.
    pub fn min_r_squared(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.r_squared)
            .fold(f64::INFINITY, f64::min)
    }

    /// Worst relative prediction error across layers.
    pub fn max_relative_error(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.max_relative_error)
            .fold(0.0, f64::max)
    }

    /// Widens each layer's recorded `max|X_K|` with ranges measured on a
    /// (typically larger) image set; never shrinks an existing range.
    pub fn update_ranges(&mut self, inventory: mupod_nn::inventory::LayerInventory) {
        for l in &mut self.layers {
            if let Some(info) = inventory.find(l.node) {
                if info.max_abs > l.max_abs {
                    l.max_abs = info.max_abs;
                }
            }
        }
    }

    /// Returns a copy with every intercept `θ_K` forced to zero — the
    /// Lin et al. special case the paper generalizes (ablation EXP-ABL1).
    pub fn with_zero_theta(&self) -> Profile {
        let mut p = self.clone();
        for l in &mut p.layers {
            l.theta = 0.0;
        }
        p
    }
}

/// The error-injection profiler.
///
/// See the module docs; construct with a network and the images to
/// profile over (the paper found 50–200 images give stable regressions).
pub struct Profiler<'a> {
    pub(crate) net: &'a Network,
    pub(crate) images: &'a [Tensor],
    pub(crate) config: ProfileConfig,
    pub(crate) progress: Option<ProgressFn<'a>>,
    pub(crate) cancel: Option<mupod_runtime::CancelToken>,
}

/// Progress callback: `(layers_done, layers_total, last_layer_name)`.
///
/// Called after each layer completes, from whichever thread finished it —
/// hence `Send + Sync`. Journal resumes count restored layers as done.
pub type ProgressFn<'a> = Box<dyn Fn(usize, usize, &str) + Send + Sync + 'a>;

impl std::fmt::Debug for Profiler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("images", &self.images.len())
            .field("config", &self.config)
            .finish()
    }
}

impl<'a> Profiler<'a> {
    /// Creates a profiler with default configuration.
    pub fn new(net: &'a Network, images: &'a [Tensor]) -> Self {
        Self {
            net,
            images,
            config: ProfileConfig::default(),
            progress: None,
            cancel: None,
        }
    }

    /// Overrides the sweep configuration.
    pub fn with_config(mut self, config: ProfileConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a progress callback (see [`ProgressFn`]).
    pub fn with_progress<F>(mut self, f: F) -> Self
    where
        F: Fn(usize, usize, &str) + Send + Sync + 'a,
    {
        self.progress = Some(Box::new(f));
        self
    }

    /// Installs a cooperative cancellation token. The sweep polls it
    /// between layers and between `Δ` magnitudes; on cancellation it
    /// drains and returns [`ProfileError::Cancelled`]. The token is not
    /// part of the journal fingerprint — an interrupted journaled run
    /// resumes bit-identically.
    pub fn with_cancel(mut self, token: mupod_runtime::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Reports `done` of `total` layers finished, `name` most recently.
    pub(crate) fn report_progress(&self, done: usize, total: usize, name: &str) {
        if let Some(cb) = &self.progress {
            cb(done, total, name);
        }
    }

    /// Polls the cancellation token (no-op without one).
    pub(crate) fn cancel_checkpoint(&self) -> Result<(), ProfileError> {
        match &self.cancel {
            Some(token) => token
                .checkpoint()
                .map_err(|c| ProfileError::Cancelled(c.reason)),
            None => Ok(()),
        }
    }

    /// Profiles the given layers.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if no images/layers are supplied, a
    /// requested layer is not analyzable, a NaN/Inf surfaces during a
    /// pass, or (under [`GuardConfig::strict`]) a layer's regression is
    /// degenerate.
    pub fn profile(&self, layers: &[NodeId]) -> Result<Profile, ProfileError> {
        if self.images.is_empty() {
            return Err(ProfileError::NoImages);
        }
        if layers.is_empty() {
            return Err(ProfileError::NoLayers);
        }
        let _sweep_span = mupod_obs::span("profile.sweep");
        // Clean passes, cached once — validated up front so a poisoned
        // image or weight set fails fast, before the sweep begins.
        let (clean, inventory) = self.sweep_inputs()?;
        let rng = SeededRng::new(self.config.seed);

        let done = std::sync::atomic::AtomicUsize::new(0);
        let total = layers.len();
        let finish = |li: usize, layer: NodeId, arena: &mut ExecArena| {
            let r = self.profile_one(li, layer, &clean, &inventory, &rng, arena);
            if let Ok(p) = &r {
                let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                self.report_progress(d, total, &p.name);
            }
            r
        };

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.config.threads
        };
        let threads = threads.min(layers.len());

        if threads <= 1 {
            let mut arena = ExecArena::for_network_tier(self.net, self.config.kernel_tier);
            let mut out = Vec::with_capacity(layers.len());
            for (li, &layer) in layers.iter().enumerate() {
                out.push(finish(li, layer, &mut arena)?);
            }
            return Ok(Profile::from_layers(out));
        }

        // Layer-parallel profiling: workers claim (index, layer) jobs off
        // a shared atomic cursor; results are reassembled in layer order.
        // Determinism holds because each layer's RNG stream depends only
        // on its index. Each worker owns one reusable execution arena.
        let next_job = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<Result<(usize, LayerProfile), ProfileError>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let next_job = &next_job;
                    let finish = &finish;
                    handles.push(scope.spawn(move || {
                        let mut arena =
                            ExecArena::for_network_tier(self.net, self.config.kernel_tier);
                        let mut local = Vec::new();
                        loop {
                            let li = next_job.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&layer) = layers.get(li) else {
                                break;
                            };
                            local.push(finish(li, layer, &mut arena).map(|p| (li, p)));
                        }
                        local
                    }));
                }
                let mut collected = Vec::new();
                for h in handles {
                    match h.join() {
                        Ok(local) => collected.extend(local),
                        Err(_) => collected.push(Err(ProfileError::WorkerPanicked)),
                    }
                }
                collected
            });
        let mut slots: Vec<Option<LayerProfile>> = vec![None; layers.len()];
        for r in results {
            let (li, profile) = r?;
            slots[li] = Some(profile);
        }
        let mut out = Vec::with_capacity(layers.len());
        for s in slots {
            // A missing slot means a worker died between claiming the job
            // and reporting it; surface that as the panic it was.
            out.push(s.ok_or(ProfileError::WorkerPanicked)?);
        }
        Ok(Profile::from_layers(out))
    }

    /// Computes the clean (validated, if configured) activation cache and
    /// the layer inventory — the shared setup of every profiling entry
    /// point, including the journaled one.
    pub(crate) fn sweep_inputs(
        &self,
    ) -> Result<(Vec<mupod_nn::Activations>, LayerInventory), ProfileError> {
        let _span = mupod_obs::span("profile.clean_pass");
        let clean: Vec<_> = if self.config.guard.validate_activations {
            self.images
                .iter()
                .map(|img| self.net.forward_checked(img))
                .collect::<Result<_, _>>()?
        } else {
            self.images
                .iter()
                .map(|img| self.net.forward(img))
                .collect()
        };
        let inventory = LayerInventory::measure(self.net, self.images.iter().cloned());
        Ok((clean, inventory))
    }

    /// Profiles a single layer at its position `li` in the request order
    /// (the position keys the layer's RNG streams, so a layer profiled in
    /// isolation — e.g. during a journal resume — is bit-identical to the
    /// same layer profiled in a full run).
    pub(crate) fn profile_one(
        &self,
        li: usize,
        layer: NodeId,
        clean: &[mupod_nn::Activations],
        inventory: &LayerInventory,
        rng: &SeededRng,
        arena: &mut ExecArena,
    ) -> Result<LayerProfile, ProfileError> {
        self.cancel_checkpoint()?;
        let info = inventory
            .find(layer)
            .ok_or(ProfileError::NotAnalyzable(layer))?;
        let _span = mupod_obs::span_fields("profile.layer", &[("layer", &info.name)]);
        let profile = self.profile_layer(layer, clean, info.max_abs, rng, li, arena)?;
        mupod_obs::counter_add("profile.layers_profiled", 1);
        mupod_obs::counter_add("profile.deltas_injected", self.config.n_deltas as u64);
        mupod_obs::histogram_record("profile.r_squared", profile.r_squared);
        if profile.fallback.is_some() {
            mupod_obs::counter_add("profile.fallbacks", 1);
        }
        Ok(LayerProfile {
            node: layer,
            name: info.name.clone(),
            max_abs: info.max_abs,
            input_elems: info.input_elems,
            macs: info.macs,
            ..profile
        })
    }

    fn profile_layer(
        &self,
        layer: NodeId,
        clean: &[mupod_nn::Activations],
        max_abs: f64,
        rng: &SeededRng,
        layer_index: usize,
        arena: &mut ExecArena,
    ) -> Result<LayerProfile, ProfileError> {
        let cfg = &self.config;
        let validate = cfg.guard.validate_activations;
        let scale = if max_abs > 0.0 { max_abs } else { 1.0 };
        let mut sigmas = Vec::with_capacity(cfg.n_deltas);
        let mut deltas = Vec::with_capacity(cfg.n_deltas);
        for j in 0..cfg.n_deltas {
            // Drain point: a cancelled sweep abandons the layer between
            // Δ magnitudes, never mid-statistic.
            self.cancel_checkpoint()?;
            let delta =
                scale * cfg.delta_max_fraction * (-(j as f64) * cfg.delta_step_octaves).exp2();
            let mut stats = RunningStats::new();
            for (i, (img, base)) in self.images.iter().zip(clean).enumerate() {
                for rep in 0..cfg.repeats.max(1) {
                    let stream = ((layer_index as u64) << 44)
                        ^ ((j as u64) << 28)
                        ^ ((rep as u64) << 14)
                        ^ i as u64;
                    let mut tap = UniformNoiseTap::single(layer, delta, rng.fork(stream));
                    // All four paths run on the per-worker arena: zero
                    // heap allocation per replay, bit-identical numerics
                    // (asserted by the mupod-nn arena test suite).
                    let noisy: &Tensor = match (cfg.full_replay, validate) {
                        (true, true) => {
                            let acts = self.net.forward_tapped_checked_arena(
                                img,
                                &mut tap,
                                ValidateConfig::default(),
                                arena,
                            )?;
                            self.net.output(acts)
                        }
                        (true, false) => {
                            let acts = self.net.forward_tapped_arena(img, &mut tap, arena);
                            self.net.output(acts)
                        }
                        (false, true) => self.net.forward_suffix_checked_arena(
                            base,
                            layer,
                            &mut tap,
                            ValidateConfig::default(),
                            arena,
                        )?,
                        (false, false) => {
                            self.net.forward_suffix_arena(base, layer, &mut tap, arena)
                        }
                    };
                    let ref_out = self.net.output(base);
                    for (a, b) in noisy.data().iter().zip(ref_out.data()) {
                        stats.push((a - b) as f64);
                    }
                }
            }
            sigmas.push(stats.population_std());
            deltas.push(delta);
        }
        let name = self.net.node(layer).name.clone();
        let fit = {
            let _span = mupod_obs::span("profile.fit");
            fit_sweep_guarded(&name, &sigmas, &deltas, &cfg.guard)?
        };
        Ok(LayerProfile {
            node: layer,
            name,
            lambda: fit.lambda,
            theta: fit.theta,
            r_squared: fit.r_squared,
            max_relative_error: fit.max_relative_error,
            max_abs,
            input_elems: 0,
            macs: 0,
            sweep: sigmas.into_iter().zip(deltas).collect(),
            fallback: fit.fallback,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_data::{Dataset, DatasetSpec};
    use mupod_models::{ModelKind, ModelScale};

    fn setup() -> (Network, Vec<Tensor>) {
        let scale = ModelScale::tiny();
        let net = ModelKind::AlexNet.build(&scale, 91);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 92, 12);
        (net, data.images().to_vec())
    }

    #[test]
    fn pre_cancelled_token_drains_before_first_layer() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let token = mupod_runtime::CancelToken::new();
        token.cancel(mupod_runtime::CancelReason::Interrupt);
        let err = Profiler::new(&net, &images)
            .with_cancel(token)
            .profile(&layers)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ProfileError::Cancelled(mupod_runtime::CancelReason::Interrupt)
            ),
            "expected Cancelled, got {err:?}"
        );
    }

    #[test]
    fn cancel_mid_sweep_drains_between_layers() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let token = mupod_runtime::CancelToken::new();
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let profiler = Profiler::new(&net, &images)
            .with_config(ProfileConfig {
                threads: 1, // sequential: deterministic drain point
                ..Default::default()
            })
            .with_cancel(token.clone())
            .with_progress({
                let token = token.clone();
                let seen = seen.clone();
                move |done, _total, _name| {
                    seen.store(done, std::sync::atomic::Ordering::SeqCst);
                    if done == 1 {
                        token.cancel(mupod_runtime::CancelReason::Timeout);
                    }
                }
            });
        let err = profiler.profile(&layers).unwrap_err();
        assert!(matches!(
            err,
            ProfileError::Cancelled(mupod_runtime::CancelReason::Timeout)
        ));
        let done = seen.load(std::sync::atomic::Ordering::SeqCst);
        assert!(
            done < layers.len(),
            "sweep should drain early, but completed all {done} layers"
        );
    }

    #[test]
    fn profile_produces_linear_fits() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let profiler = Profiler::new(&net, &images).with_config(ProfileConfig {
            n_deltas: 12,
            ..Default::default()
        });
        let profile = profiler.profile(&layers).unwrap();
        assert_eq!(profile.len(), 5);
        for l in profile.layers() {
            assert!(l.lambda > 0.0, "{}: λ = {}", l.name, l.lambda);
            // Test scale caveat: with 12 images × 8 logits the σ
            // estimates carry ~5-10 % sampling noise; the paper's 500
            // images × 1000 logits achieve R² ≈ 1. The Fig. 2 experiment
            // asserts the tighter bound at experiment scale.
            assert!(
                l.r_squared > 0.95,
                "{}: R² = {} — Eq. 5 linearity violated",
                l.name,
                l.r_squared
            );
            assert!(l.max_abs > 0.0);
            assert!(l.input_elems > 0);
            assert!(l.macs > 0);
            assert_eq!(l.sweep.len(), 12);
        }
    }

    #[test]
    fn eq5_prediction_error_within_paper_bounds() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let profile = Profiler::new(&net, &images)
            .with_config(ProfileConfig {
                repeats: 6,
                ..Default::default()
            })
            .profile(&layers)
            .unwrap();
        // Paper §IV: mostly < 5 %, worst case ~10 % — at 500 images ×
        // 1000 logits per point. At this test's 12 × 8 × 6 samples the
        // per-point σ noise alone is several percent; assert a bound
        // that still catches broken linearity. The Fig. 2 experiment
        // checks the paper-scale claim.
        assert!(
            profile.max_relative_error() < 0.25,
            "worst relative error {}",
            profile.max_relative_error()
        );
    }

    #[test]
    fn suffix_and_full_replay_agree() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let cfg = ProfileConfig {
            n_deltas: 6,
            ..Default::default()
        };
        let p_suffix = Profiler::new(&net, &images[..4])
            .with_config(cfg)
            .profile(&layers[..2])
            .unwrap();
        let p_full = Profiler::new(&net, &images[..4])
            .with_config(ProfileConfig {
                full_replay: true,
                ..cfg
            })
            .profile(&layers[..2])
            .unwrap();
        for (a, b) in p_suffix.layers().iter().zip(p_full.layers()) {
            assert!(
                (a.lambda - b.lambda).abs() / a.lambda < 1e-3,
                "{} vs {}",
                a.lambda,
                b.lambda
            );
        }
    }

    #[test]
    fn delta_for_implements_eq7() {
        let lp = LayerProfile {
            node: NodeId::from_index_for_tests(1),
            name: "x".into(),
            lambda: 2.0,
            theta: 0.1,
            r_squared: 1.0,
            max_relative_error: 0.0,
            max_abs: 1.0,
            input_elems: 1,
            macs: 1,
            sweep: vec![],
            fallback: None,
        };
        // Δ = λ σ √ξ + θ = 2·0.5·√0.25 + 0.1 = 0.6.
        assert!((lp.delta_for(0.5, 0.25) - 0.6).abs() < 1e-12);
        // Clamped at a positive floor.
        let neg = LayerProfile { theta: -5.0, ..lp };
        assert!(neg.delta_for(0.1, 0.1) > 0.0);
    }

    #[test]
    fn zero_theta_ablation() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let profile = Profiler::new(&net, &images[..4])
            .with_config(ProfileConfig {
                n_deltas: 6,
                ..Default::default()
            })
            .profile(&layers[..2])
            .unwrap();
        let zeroed = profile.with_zero_theta();
        assert!(zeroed.layers().iter().all(|l| l.theta == 0.0));
        assert_eq!(zeroed.layers()[0].lambda, profile.layers()[0].lambda);
    }

    #[test]
    fn parallel_profiling_is_deterministic() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let cfg = ProfileConfig {
            n_deltas: 6,
            ..Default::default()
        };
        let single = Profiler::new(&net, &images[..4])
            .with_config(ProfileConfig { threads: 1, ..cfg })
            .profile(&layers)
            .unwrap();
        let multi = Profiler::new(&net, &images[..4])
            .with_config(ProfileConfig { threads: 3, ..cfg })
            .profile(&layers)
            .unwrap();
        for (a, b) in single.layers().iter().zip(multi.layers()) {
            assert_eq!(a.lambda, b.lambda, "{}: thread count changed λ", a.name);
            assert_eq!(a.theta, b.theta);
            assert_eq!(a.sweep, b.sweep);
        }
    }

    #[test]
    fn errors_on_empty_inputs() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        assert_eq!(
            Profiler::new(&net, &[]).profile(&layers).unwrap_err(),
            ProfileError::NoImages
        );
        assert_eq!(
            Profiler::new(&net, &images).profile(&[]).unwrap_err(),
            ProfileError::NoLayers
        );
    }

    #[test]
    fn healthy_profiles_carry_no_fallback() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let profile = Profiler::new(&net, &images[..4])
            .with_config(ProfileConfig {
                n_deltas: 6,
                ..Default::default()
            })
            .profile(&layers[..2])
            .unwrap();
        assert!(profile.fallback_layers().is_empty());
        assert!(profile.layers().iter().all(|l| l.fallback.is_none()));
    }

    #[test]
    fn guarded_fit_rejects_flat_response() {
        // A layer whose output never responds to noise: all σ zero.
        let sigmas = vec![0.0; 6];
        let deltas: Vec<f64> = (1..=6).map(|i| i as f64 * 0.01).collect();
        let guard = GuardConfig::default();
        let fit = fit_sweep_guarded("dead", &sigmas, &deltas, &guard).unwrap();
        assert!(matches!(
            fit.fallback,
            Some(FallbackReason::TooFewPoints(0))
        ));
        assert_eq!(fit.lambda, 0.0);
        assert_eq!(fit.theta, 0.0);
    }

    #[test]
    fn guarded_fit_rejects_negative_slope() {
        // σ falls while Δ rises: a nonsense (inverted) response.
        let sigmas = vec![0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
        let deltas = vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06];
        let fit = fit_sweep_guarded("inv", &sigmas, &deltas, &GuardConfig::default()).unwrap();
        assert!(matches!(fit.fallback, Some(FallbackReason::NegativeSlope)));
    }

    #[test]
    fn guarded_fit_drops_non_finite_points() {
        // Two poisoned σ among six: fit proceeds on the remaining four.
        let sigmas = vec![0.1, f64::NAN, 0.3, f64::INFINITY, 0.5, 0.6];
        let deltas = vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06];
        let fit = fit_sweep_guarded("holey", &sigmas, &deltas, &GuardConfig::default()).unwrap();
        assert!(fit.fallback.is_none(), "four clean points should fit");
        assert!(fit.lambda > 0.0);
    }

    #[test]
    fn strict_guard_turns_fallback_into_error() {
        let sigmas = vec![0.0; 6];
        let deltas: Vec<f64> = (1..=6).map(|i| i as f64 * 0.01).collect();
        let guard = GuardConfig {
            strict: true,
            ..Default::default()
        };
        match fit_sweep_guarded("dead", &sigmas, &deltas, &guard).unwrap_err() {
            ProfileError::DegenerateLayer(name, FallbackReason::TooFewPoints(0)) => {
                assert_eq!(name, "dead");
            }
            e => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn fallback_profile_grants_only_the_floor() {
        let lp = LayerProfile {
            node: NodeId::from_index_for_tests(1),
            name: "fb".into(),
            lambda: 0.0,
            theta: 0.0,
            r_squared: 0.0,
            max_relative_error: 0.0,
            max_abs: 8.0,
            input_elems: 1,
            macs: 1,
            sweep: vec![],
            fallback: Some(FallbackReason::NegativeSlope),
        };
        let floor = 8.0 * (-20.0f64).exp2();
        // Whatever budget arrives, the fallback grants only the f32
        // floor — i.e. this layer gets maximum precision.
        assert_eq!(lp.delta_for(10.0, 1.0), floor);
        assert_eq!(lp.delta_for(0.0, 0.0), floor);
    }

    #[test]
    fn profiling_rejects_non_finite_image() {
        let (net, images) = setup();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let mut poisoned = images[..2].to_vec();
        poisoned[1].data_mut()[0] = f32::NAN;
        let err = Profiler::new(&net, &poisoned)
            .profile(&layers[..1])
            .unwrap_err();
        assert!(matches!(err, ProfileError::NumericalFault(_)), "{err:?}");
    }

    #[test]
    fn profiling_rejects_non_analyzable_node() {
        let (net, images) = setup();
        // Node 0 is the input placeholder, never a dot-product layer.
        let err = Profiler::new(&net, &images[..2])
            .profile(&[NodeId::from_index_for_tests(0)])
            .unwrap_err();
        assert!(matches!(err, ProfileError::NotAnalyzable(_)), "{err:?}");
    }
}
