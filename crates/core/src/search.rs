//! Binary search for the output error budget `σ_{Y_Ł}` (§V-C).
//!
//! `σ_{Y_Ł}` increases monotonically as accuracy decreases, so the paper
//! runs a real-valued binary search (after doubling an initial guess
//! until it violates the constraint), stopping when the bracket is
//! narrower than 0.01. A candidate `σ` is tested with one of two
//! schemes:
//!
//! * **Scheme 1** (`equal_scheme`): decompose `σ` into per-layer deltas
//!   with `ξ_K = 1/Ł` via Eq. 7, inject uniform noise into every layer,
//!   measure accuracy.
//! * **Scheme 2** (`gaussian_approx`): inject `N(0, σ²)` at the logits
//!   only — valid because the aggregate output error is very nearly
//!   normal (Fig. 3, right).

use crate::eval::AccuracyEvaluator;
use crate::profile::Profile;
use mupod_nn::NodeId;
use std::collections::HashMap;

/// Which §V-C test decides whether a candidate `σ_{Y_Ł}` is acceptable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchScheme {
    /// Scheme 1: equal-share uniform injection into every layer.
    EqualScheme,
    /// Scheme 2: Gaussian noise at the output only (much cheaper — one
    /// clean pass per image regardless of depth).
    GaussianApprox,
}

/// Result of the σ search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The largest `σ_{Y_Ł}` found to satisfy the accuracy constraint.
    pub sigma: f64,
    /// Accuracy measured at [`SearchOutcome::sigma`].
    pub accuracy_at_sigma: f64,
    /// The accuracy threshold that was enforced.
    pub target_accuracy: f64,
    /// Number of accuracy evaluations spent.
    pub evaluations: usize,
}

/// Binary search driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaSearch {
    /// Acceptance test scheme.
    pub scheme: SearchScheme,
    /// Initial upper-bound guess (the paper starts at 1.0).
    pub initial_guess: f64,
    /// Relative bracket width at which the search stops: bisection ends
    /// when `hi − lo ≤ tolerance · hi`. The paper stops at an absolute
    /// width of 0.01, which presumes ImageNet-scale logits (σ* ≈ 0.32);
    /// a relative criterion serves any logit scale.
    pub tolerance: f64,
    /// Seed for the injected noise.
    pub seed: u64,
    /// Cap on doubling steps while hunting for a violating upper bound.
    pub max_doublings: usize,
    /// Acceptance slack in *images*: a candidate σ passes if accuracy is
    /// within `slack_images / n` of the target. On small evaluation sets
    /// a single hair-margin image flips under any noise at all, which
    /// would otherwise drive the search to σ = 0; the paper's ≥ 12 500
    /// evaluation images make this fraction invisible.
    pub slack_images: f64,
}

impl Default for SigmaSearch {
    fn default() -> Self {
        Self {
            scheme: SearchScheme::EqualScheme,
            initial_guess: 1.0,
            tolerance: 0.01,
            seed: 0x51C4,
            max_doublings: 24,
            slack_images: 1.0,
        }
    }
}

impl SigmaSearch {
    /// Measures accuracy at a candidate `σ` under the configured scheme.
    pub fn accuracy_at(
        &self,
        sigma: f64,
        profile: &Profile,
        evaluator: &AccuracyEvaluator<'_>,
    ) -> f64 {
        match self.scheme {
            SearchScheme::EqualScheme => {
                let l = profile.len() as f64;
                let deltas: HashMap<NodeId, f64> = profile
                    .layers()
                    .iter()
                    .map(|lp| (lp.node, lp.delta_for(sigma, 1.0 / l)))
                    .collect();
                evaluator.accuracy_uniform_noise(&deltas, self.seed)
            }
            SearchScheme::GaussianApprox => evaluator.accuracy_gaussian_output(sigma, self.seed),
        }
    }

    /// Finds the largest `σ_{Y_Ł}` whose accuracy stays at or above
    /// `target_accuracy`.
    ///
    /// Follows the paper's procedure: start from
    /// [`SigmaSearch::initial_guess`]; if it already violates, bisect in
    /// `[0, guess]`; otherwise double until violation, then bisect. The
    /// returned `sigma` is the *satisfying* end of the final bracket.
    ///
    /// # Panics
    ///
    /// Panics if `target_accuracy` is not in `(0, 1]` or the profile is
    /// empty.
    pub fn search(
        &self,
        profile: &Profile,
        evaluator: &AccuracyEvaluator<'_>,
        target_accuracy: f64,
    ) -> SearchOutcome {
        assert!(
            target_accuracy > 0.0 && target_accuracy <= 1.0,
            "target accuracy must be in (0, 1]"
        );
        assert!(!profile.is_empty(), "profile must not be empty");
        let _span = mupod_obs::span("search.sigma");
        let mut evaluations = 0usize;
        let mut eval_at = |sigma: f64| {
            evaluations += 1;
            let _span = mupod_obs::span("search.evaluate");
            mupod_obs::counter_add("search.evaluations", 1);
            self.accuracy_at(sigma, profile, evaluator)
        };
        let threshold = target_accuracy - self.slack_images / evaluator.len() as f64;

        // Establish a violated upper bound and a satisfying lower bound.
        let mut hi = self.initial_guess;
        let mut lo = 0.0;
        let mut acc_lo = evaluator.fp_accuracy();
        let mut acc_hi = eval_at(hi);
        let mut doublings = 0;
        while acc_hi >= threshold && doublings < self.max_doublings {
            lo = hi;
            acc_lo = acc_hi;
            hi *= 2.0;
            acc_hi = eval_at(hi);
            doublings += 1;
        }
        if acc_hi >= threshold {
            // Even the largest probed σ satisfies — return it.
            return SearchOutcome {
                sigma: hi,
                accuracy_at_sigma: acc_hi,
                target_accuracy,
                evaluations,
            };
        }

        // Bisect until the bracket closes (relative width).
        while hi - lo > self.tolerance * hi {
            let mid = 0.5 * (lo + hi);
            let acc_mid = eval_at(mid);
            if acc_mid >= threshold {
                lo = mid;
                acc_lo = acc_mid;
            } else {
                hi = mid;
            }
        }
        SearchOutcome {
            sigma: lo,
            accuracy_at_sigma: acc_lo,
            target_accuracy,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AccuracyMode;
    use crate::profile::Profiler;
    use mupod_data::{Dataset, DatasetSpec};
    use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
    use mupod_nn::Network;

    fn setup() -> (Network, Dataset, Profile) {
        let scale = ModelScale::tiny();
        let mut net = ModelKind::AlexNet.build(&scale, 111);
        let spec = DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw);
        let data = Dataset::generate(&spec, 112, 40);
        calibrate_head(&mut net, &data, 0.1).unwrap();
        let layers = ModelKind::AlexNet.analyzable_layers(&net);
        let profile = Profiler::new(&net, &data.images()[..8])
            .with_config(crate::profile::ProfileConfig {
                n_deltas: 10,
                ..Default::default()
            })
            .profile(&layers)
            .unwrap();
        (net, data, profile)
    }

    #[test]
    fn search_finds_satisfying_sigma_scheme2() {
        let (net, data, profile) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let target = 0.95;
        let search = SigmaSearch {
            scheme: SearchScheme::GaussianApprox,
            ..Default::default()
        };
        let out = search.search(&profile, &ev, target);
        let slack = search.slack_images / ev.len() as f64;
        assert!(out.accuracy_at_sigma >= target - slack);
        assert!(out.sigma > 0.0);
        assert!(out.evaluations > 2);
        // Just past the bracket the accuracy drops below target.
        let beyond = search.accuracy_at(out.sigma * 4.0, &profile, &ev);
        assert!(
            beyond < target + 0.05,
            "σ·4 accuracy {beyond} suspiciously high"
        );
    }

    #[test]
    fn search_finds_satisfying_sigma_scheme1() {
        let (net, data, profile) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let target = 0.9;
        let search = SigmaSearch::default();
        let out = search.search(&profile, &ev, target);
        let slack = search.slack_images / ev.len() as f64;
        assert!(out.accuracy_at_sigma >= target - slack, "{out:?}");
        assert!(out.sigma > 0.0);
    }

    #[test]
    fn schemes_agree_on_order_of_magnitude() {
        // The paper supports both schemes as interchangeable estimators;
        // their σ results should be within a small factor.
        let (net, data, profile) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let target = 0.9;
        let s1 = SigmaSearch::default().search(&profile, &ev, target);
        let s2 = SigmaSearch {
            scheme: SearchScheme::GaussianApprox,
            ..Default::default()
        }
        .search(&profile, &ev, target);
        let ratio = s1.sigma / s2.sigma;
        assert!(
            (0.2..5.0).contains(&ratio),
            "scheme σ mismatch: {} vs {}",
            s1.sigma,
            s2.sigma
        );
    }

    #[test]
    fn tighter_target_gives_smaller_sigma() {
        let (net, data, profile) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        let search = SigmaSearch {
            scheme: SearchScheme::GaussianApprox,
            ..Default::default()
        };
        let loose = search.search(&profile, &ev, 0.85);
        let tight = search.search(&profile, &ev, 0.99);
        assert!(
            tight.sigma <= loose.sigma,
            "tight {} > loose {}",
            tight.sigma,
            loose.sigma
        );
    }

    #[test]
    #[should_panic(expected = "target accuracy")]
    fn rejects_invalid_target() {
        let (net, data, profile) = setup();
        let ev = AccuracyEvaluator::new(&net, &data, AccuracyMode::FpAgreement);
        SigmaSearch::default().search(&profile, &ev, 1.5);
    }
}
