//! Fault-tolerant batched inference serving over plain std TCP.
//!
//! The north star is a service that survives real request streams, so
//! this crate's headline is robustness, not just throughput:
//!
//! * **Batched execution** — workers gather up to `max_batch` requests
//!   and run them through [`mupod_nn::BatchArena`]'s fused forward,
//!   which is *bit-identical* to serving each request alone
//!   (property-tested in `mupod-nn`): batching is invisible to clients.
//! * **Admission control** — one bounded queue ([`BoundedQueue`]) is
//!   the only buffer; a full queue fast-rejects with a typed
//!   `ServerBusy`, so memory stays bounded no matter the offered load.
//! * **Deadlines** — every request carries one (or inherits the server
//!   default); expired requests are answered `DeadlineExceeded` and
//!   never executed.
//! * **Panic isolation** — a worker panic is confined to its batch
//!   (`WorkerCrashed` answers), the arena is rebuilt, and the worker
//!   restarts under a counter-backed budget with deterministic backoff;
//!   exhausting the budget drains the server with a typed error.
//! * **Graceful drain** — SIGINT (via
//!   [`CancelToken`](mupod_runtime::CancelToken)) stops the accept
//!   loop, finishes in-flight batches, answers queued-but-unstarted
//!   requests `Draining`, and returns a [`ServeReport`] so metrics can
//!   be flushed atomically. A load-shedding ladder (shrink batch →
//!   reject low-priority → drain) degrades service loudly before that.
//!
//! * **Live telemetry** — `--metrics-addr` binds a second listener
//!   ([`admin`](crate::http_get)) answering `/metrics` (Prometheus text
//!   exposition with rolling-window p50/p99), `/health` (degradation
//!   state as JSON) and `/flight` (the flight-recorder ring). Requests
//!   may carry a trace ID the server echoes and stamps on every
//!   lifecycle event, so one ID links a client timeout to the
//!   server-side post-mortem. `DESIGN.md` §13 has the details.
//!
//! Status codes on the wire come from the shared
//! [`StatusCode`](mupod_runtime::StatusCode) table; the frame format
//! lives in [`frame`]. `DESIGN.md` §12 describes the architecture.

mod admin;
mod client;
pub mod frame;
mod queue;
pub mod router;
mod server;
mod telemetry;
mod worker;

pub use admin::http_get;
pub use client::{run_load, ClientError, Connection, LoadReport, ReloadReply, Reply};
pub use frame::{FrameError, Priority, ReqKind, ShardState};
pub use queue::{BoundedQueue, Pop, PushError};
pub use router::{
    reload_shard, route, BreakerState, ReloadError, RouteConfig, RouteError, RouteReport,
    ROUTE_HEALTH_SCHEMA,
};
pub use server::{
    percentiles_us, run, run_reloadable, Bound, Reloader, ServeConfig, ServeError, ServeReport,
};
pub use telemetry::HEALTH_SCHEMA;

#[cfg(test)]
pub(crate) mod test_util {
    use mupod_nn::{Network, NetworkBuilder};
    use mupod_tensor::{conv::Conv2dParams, Tensor};

    /// A deterministic 1×6×6 → 3-class model for in-process tests.
    pub(crate) fn tiny_net() -> Network {
        let mut b = NetworkBuilder::new(&[1, 6, 6]);
        let input = b.input();
        let w: Vec<f32> = (0..27).map(|i| ((i % 5) as f32 - 2.0) * 0.21).collect();
        let conv = b.conv2d(
            "c",
            input,
            Conv2dParams::new(1, 3, 3, 1, 1),
            Tensor::from_vec(&[3, 1, 3, 3], w),
            vec![0.05, -0.02, 0.01],
        );
        let relu = b.relu("r", conv);
        let gap = b.global_avg_pool("g", relu);
        b.build(gap).expect("tiny net builds")
    }

    /// A valid input image for [`tiny_net`], varying with `seed`.
    pub(crate) fn image(seed: u32) -> Vec<f32> {
        (0..36)
            .map(|i| ((i as u32 * 7 + seed * 13) % 11) as f32 * 0.1 - 0.5)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mupod_runtime::{CancelReason, CancelToken, StatusCode};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Starts a server on an ephemeral port; returns its bound
    /// addresses and the join handle yielding the final report.
    fn start_bound(
        cfg: ServeConfig,
        token: CancelToken,
    ) -> (
        Bound,
        std::thread::JoinHandle<Result<ServeReport, ServeError>>,
    ) {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let net = test_util::tiny_net();
            run(&net, &cfg, &token, move |bound| {
                tx.send(bound).expect("ready receiver alive")
            })
        });
        let bound = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("server binds");
        (bound, handle)
    }

    /// [`start_bound`] for tests that only need the frame port.
    fn start(
        cfg: ServeConfig,
        token: CancelToken,
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<ServeReport, ServeError>>,
    ) {
        let (bound, handle) = start_bound(cfg, token);
        (bound.addr, handle)
    }

    fn connect(addr: std::net::SocketAddr) -> Connection {
        Connection::connect(addr, Duration::from_secs(10)).expect("loopback connect")
    }

    #[test]
    fn serves_classifications_and_drains_on_cancel() {
        let token = CancelToken::new();
        let (addr, handle) = start(ServeConfig::default(), token.clone());
        let mut conn = connect(addr);
        let net = test_util::tiny_net();
        for seed in 0..5 {
            let img = test_util::image(seed);
            let reply = conn.classify(&img, 0, Priority::High).expect("reply");
            assert_eq!(reply.status, StatusCode::Ok);
            // Served result matches a local forward bit-for-bit.
            let want = net.classify(&mupod_tensor::Tensor::from_vec(&[1, 6, 6], img));
            assert_eq!(reply.class, Some(want as u32));
        }
        token.cancel(CancelReason::Interrupt);
        let report = handle.join().expect("server thread").expect("clean drain");
        assert_eq!(report.requests_ok, 5);
        assert_eq!(report.worker_crashes, 0);
        assert!(report.p50_latency_us > 0);
    }

    #[test]
    fn cancellation_drains_queued_requests_without_executing_them() {
        // One slow worker, serial batches: the first request occupies the
        // worker while the rest sit queued; cancelling then must answer
        // the queued ones `Draining` — executed batches stays at 1.
        let token = CancelToken::new();
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_depth: 16,
            slow_batch: Some(Duration::from_millis(400)),
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        };
        let (addr, handle) = start(cfg, token.clone());
        let clients: Vec<_> = (0..4)
            .map(|seed| {
                std::thread::spawn(move || {
                    let mut conn = connect(addr);
                    conn.classify(&test_util::image(seed), 0, Priority::High)
                        .expect("reply")
                        .status
                })
            })
            .collect();
        // Let every request land in the queue, then pull the plug while
        // the first batch is still executing.
        std::thread::sleep(Duration::from_millis(150));
        token.cancel(CancelReason::Interrupt);
        let statuses: Vec<StatusCode> = clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect();
        let report = handle.join().expect("server thread").expect("clean drain");
        assert_eq!(report.batches, 1, "queued requests must not execute");
        assert_eq!(report.requests_ok, 1);
        assert_eq!(report.rejected_draining, 3);
        assert_eq!(statuses.iter().filter(|s| **s == StatusCode::Ok).count(), 1);
        assert_eq!(
            statuses
                .iter()
                .filter(|s| **s == StatusCode::Draining)
                .count(),
            3
        );
    }

    #[test]
    fn full_queue_fast_rejects_server_busy() {
        // Worker busy for 800ms, queue depth 1: the third request must
        // bounce with ServerBusy long before the worker frees up.
        let token = CancelToken::new();
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 1,
            queue_depth: 1,
            slow_batch: Some(Duration::from_millis(800)),
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        };
        let (addr, handle) = start(cfg, token.clone());
        let spawn_classify = |seed: u32| {
            std::thread::spawn(move || {
                let mut conn = connect(addr);
                conn.classify(&test_util::image(seed), 0, Priority::High)
                    .expect("reply")
            })
        };
        let a = spawn_classify(0);
        std::thread::sleep(Duration::from_millis(200)); // a is executing
        let b = spawn_classify(1);
        std::thread::sleep(Duration::from_millis(200)); // b is queued
        let start_c = Instant::now();
        let mut conn = connect(addr);
        let c = conn
            .classify(&test_util::image(2), 0, Priority::High)
            .expect("reply");
        let c_latency = start_c.elapsed();
        assert_eq!(c.status, StatusCode::ServerBusy);
        assert!(
            c_latency < Duration::from_millis(350),
            "busy rejection took {c_latency:?}; admission control must not queue-wait"
        );
        assert_eq!(a.join().expect("client a").status, StatusCode::Ok);
        assert_eq!(b.join().expect("client b").status, StatusCode::Ok);
        token.cancel(CancelReason::Interrupt);
        let report = handle.join().expect("server thread").expect("clean drain");
        assert_eq!(report.rejected_busy, 1);
        assert_eq!(report.requests_ok, 2);
    }

    #[test]
    fn exhausted_restart_budget_is_a_typed_terminal_error() {
        let token = CancelToken::new();
        let cfg = ServeConfig {
            workers: 1,
            chaos: true,
            restart_budget: 0,
            ..ServeConfig::default()
        };
        let (addr, handle) = start(cfg, token.clone());
        let mut conn = connect(addr);
        let reply = conn.chaos_panic().expect("reply");
        assert_eq!(reply.status, StatusCode::WorkerCrashed);
        let err = handle
            .join()
            .expect("server thread")
            .expect_err("budget of 0 cannot survive a crash");
        assert!(matches!(
            err,
            ServeError::RestartBudgetExhausted {
                crashes: 1,
                budget: 0,
                ..
            }
        ));
        // The drain's report rides along on the error path.
        if let ServeError::RestartBudgetExhausted { report, .. } = err {
            assert_eq!(report.worker_crashes, 1);
        }
    }

    #[test]
    fn trace_id_is_echoed_and_untraced_requests_stay_untraced() {
        let token = CancelToken::new();
        let (addr, handle) = start(ServeConfig::default(), token.clone());
        let mut conn = connect(addr);
        let img = test_util::image(0);
        let traced = conn
            .classify_traced(&img, 0, Priority::High, 0xBEEF_CAFE)
            .expect("reply");
        assert_eq!(traced.status, StatusCode::Ok);
        assert_eq!(traced.trace_id, Some(0xBEEF_CAFE));
        let plain = conn.classify(&img, 0, Priority::High).expect("reply");
        assert_eq!(plain.status, StatusCode::Ok);
        assert_eq!(plain.trace_id, None);
        token.cancel(CancelReason::Interrupt);
        handle.join().expect("server thread").expect("clean drain");
    }

    #[test]
    fn metrics_and_health_scrape_a_live_server() {
        let token = CancelToken::new();
        let cfg = ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServeConfig::default()
        };
        let (bound, handle) = start_bound(cfg, token.clone());
        let metrics_addr = bound.metrics_addr.expect("metrics listener bound");
        let mut conn = connect(bound.addr);
        for seed in 0..3 {
            let reply = conn
                .classify(&test_util::image(seed), 0, Priority::High)
                .expect("reply");
            assert_eq!(reply.status, StatusCode::Ok);
        }
        let timeout = Duration::from_secs(5);
        let (code, body) = http_get(metrics_addr, "/metrics", timeout).expect("scrape");
        assert_eq!(code, 200);
        let text = String::from_utf8(body).expect("utf-8 exposition");
        mupod_obs::expo::validate(&text).expect("valid exposition");
        assert!(text.contains("mupod_requests_ok_total 3\n"), "{text}");
        assert!(text.contains("mupod_request_latency_us_count 3\n"));
        assert!(text.contains("mupod_request_latency_window_us{quantile=\"0.5\"}"));
        assert!(text.contains("mupod_request_latency_window_us{quantile=\"0.99\"}"));
        assert!(text.contains("mupod_restart_budget_remaining 8\n"));

        let (code, body) = http_get(metrics_addr, "/health", timeout).expect("health");
        assert_eq!(code, 200);
        let doc = mupod_obs::json::parse(&String::from_utf8(body).expect("utf-8 health"))
            .expect("health is JSON");
        let obj = doc.as_object().expect("health object");
        assert_eq!(obj["schema"].as_str(), Some(HEALTH_SCHEMA));
        assert_eq!(obj["state"].as_str(), Some("ok"));
        assert_eq!(obj["worker_crashes"].as_f64(), Some(0.0));

        let (code, _) = http_get(metrics_addr, "/nope", timeout).expect("404 route");
        assert_eq!(code, 404);

        token.cancel(CancelReason::Interrupt);
        handle.join().expect("server thread").expect("clean drain");
    }

    #[test]
    fn flight_recorder_carries_a_request_lifecycle() {
        let token = CancelToken::new();
        let cfg = ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServeConfig::default()
        };
        let (bound, handle) = start_bound(cfg, token.clone());
        let metrics_addr = bound.metrics_addr.expect("metrics listener bound");
        let mut conn = connect(bound.addr);
        let reply = conn
            .classify_traced(&test_util::image(0), 0, Priority::High, 77)
            .expect("reply");
        assert_eq!(reply.status, StatusCode::Ok);
        let (code, body) =
            http_get(metrics_addr, "/flight", Duration::from_secs(5)).expect("flight");
        assert_eq!(code, 200);
        let doc = mupod_obs::json::parse(&String::from_utf8(body).expect("utf-8 flight"))
            .expect("flight is JSON");
        let obj = doc.as_object().expect("flight object");
        assert_eq!(obj["schema"].as_str(), Some(mupod_obs::FLIGHT_SCHEMA));
        let stages: Vec<String> = obj["events"]
            .as_array()
            .expect("events array")
            .iter()
            .filter_map(|e| {
                let ev = e.as_object()?;
                (ev["trace_id"].as_f64() == Some(77.0))
                    .then(|| ev["stage"].as_str().map(str::to_string))
                    .flatten()
            })
            .collect();
        assert_eq!(stages, ["admit", "dequeue", "exec", "reply"]);
        token.cancel(CancelReason::Interrupt);
        handle.join().expect("server thread").expect("clean drain");
    }

    #[test]
    fn worker_panic_recovers_within_budget() {
        let token = CancelToken::new();
        let cfg = ServeConfig {
            workers: 1,
            chaos: true,
            restart_budget: 4,
            ..ServeConfig::default()
        };
        let (addr, handle) = start(cfg, token.clone());
        let mut conn = connect(addr);
        let crash = conn.chaos_panic().expect("reply");
        assert_eq!(crash.status, StatusCode::WorkerCrashed);
        // The restarted worker serves normally afterwards.
        let ok = conn
            .classify(&test_util::image(1), 0, Priority::High)
            .expect("reply");
        assert_eq!(ok.status, StatusCode::Ok);
        token.cancel(CancelReason::Interrupt);
        let report = handle.join().expect("server thread").expect("clean drain");
        assert_eq!(report.worker_crashes, 1);
        assert_eq!(report.requests_ok, 1);
    }
}
