//! A bounded, two-priority MPMC queue with explicit close semantics.
//!
//! This is the server's *only* buffer, and it is the admission-control
//! point: [`BoundedQueue::try_push`] never blocks and never grows the
//! queue past its capacity — a full queue is an immediate
//! [`PushError::Full`], which the connection handler converts to a
//! typed `ServerBusy` response. Memory is therefore bounded by
//! `capacity × request size` no matter how fast clients push.
//!
//! The close protocol makes draining race-free: [`BoundedQueue::close`]
//! flips a flag and wakes every waiter. A push after close fails with
//! [`PushError::Closed`] (the handler answers `Draining` itself), while
//! [`BoundedQueue::pop_timeout`] keeps returning queued items until the
//! queue is empty and only then reports [`Pop::Closed`] — so no
//! accepted request is ever silently dropped: every item is either
//! executed or explicitly answered `Draining` by the worker that
//! drained it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::frame::Priority;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; reject the request now (`ServerBusy`).
    Full,
    /// The queue is closed for drain; answer `Draining`.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// Outcome of a timed pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Empty,
    /// The queue is closed **and** empty; the worker can exit.
    Closed,
}

struct Inner<T> {
    high: VecDeque<T>,
    low: VecDeque<T>,
    closed: bool,
}

impl<T> Inner<T> {
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }

    fn take(&mut self) -> Option<T> {
        self.high.pop_front().or_else(|| self.low.pop_front())
    }
}

/// The bounded two-priority queue (see module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items total across
    /// both priority bands.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity queue admits nothing");
        Self {
            inner: Mutex::new(Inner {
                high: VecDeque::new(),
                low: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panicking worker cannot leave the queue unusable: the data
        // under the lock is always consistent (no partial mutations), so
        // poison is safe to clear.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking admission. High priority items dequeue first.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; in both cases `item` is handed back so
    /// the caller can answer the client.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), (PushError, T)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        match priority {
            Priority::High => inner.high.push_back(item),
            Priority::Low => inner.low.push_back(item),
        }
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue with a bounded wait (see [`Pop`]).
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.take() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::Empty;
            }
            let (guard, _timed_out) = self
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Non-blocking dequeue (used to top up a batch).
    pub fn try_pop(&self) -> Option<T> {
        self.lock().take()
    }

    /// Closes the queue for drain and wakes every waiter. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued across both bands.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_fast_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1, Priority::High).unwrap();
        q.try_push(2, Priority::Low).unwrap();
        let (err, item) = q.try_push(3, Priority::High).unwrap_err();
        assert_eq!(err, PushError::Full);
        assert_eq!(item, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn high_priority_dequeues_first() {
        let q = BoundedQueue::new(4);
        q.try_push("low", Priority::Low).unwrap();
        q.try_push("high", Priority::High).unwrap();
        assert_eq!(q.try_pop(), Some("high"));
        assert_eq!(q.try_pop(), Some("low"));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_rejects_pushes_but_drains_items() {
        let q = BoundedQueue::new(4);
        q.try_push(1, Priority::High).unwrap();
        q.try_push(2, Priority::High).unwrap();
        q.close();
        let (err, _) = q.try_push(3, Priority::High).unwrap_err();
        assert_eq!(err, PushError::Closed);
        // Queued items survive the close...
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(2)
        ));
        // ...and only then the drain signal surfaces.
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Closed
        ));
    }

    #[test]
    fn pop_timeout_returns_empty_on_open_queue() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Pop::Empty
        ));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let popped = h.join().expect("popper thread joins");
        assert!(matches!(popped, Pop::Closed));
    }

    /// The close-then-drain contract under real contention: pushers,
    /// poppers, and a closer race, and afterwards every item that a
    /// push accepted was popped exactly once (never dropped, never
    /// duplicated), while every rejected item was handed back to its
    /// pusher — i.e. no job can be both answered `Draining` and
    /// executed, and shutdown loses nothing that was admitted.
    #[test]
    // Under miri's ~100x interpretation slowdown this stress test
    // measures the interpreter, not the queue; the smaller unit tests
    // above cover the same contract for the UB sweep.
    #[cfg_attr(miri, ignore)]
    fn concurrent_close_then_drain_loses_and_duplicates_nothing() {
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;

        const PUSHERS: u64 = 4;
        const POPPERS: usize = 3;
        const PER_PUSHER: u64 = 500;

        for round in 0..8u64 {
            let q: BoundedQueue<u64> = BoundedQueue::new(16);
            let accepted: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
            let rejected: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
            let popped: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
            let done_pushing = AtomicBool::new(false);
            std::thread::scope(|s| {
                for p in 0..PUSHERS {
                    let (q, accepted, rejected) = (&q, &accepted, &rejected);
                    s.spawn(move || {
                        for i in 0..PER_PUSHER {
                            let item = p * PER_PUSHER + i;
                            let pri = if item.is_multiple_of(3) {
                                Priority::Low
                            } else {
                                Priority::High
                            };
                            match q.try_push(item, pri) {
                                Ok(()) => {
                                    accepted.lock().unwrap().insert(item);
                                }
                                Err((_, returned)) => {
                                    // Full or Closed: the item must come
                                    // back so the caller can answer the
                                    // client itself.
                                    assert_eq!(returned, item);
                                    rejected.lock().unwrap().insert(item);
                                }
                            }
                        }
                    });
                }
                for _ in 0..POPPERS {
                    let (q, popped, done_pushing) = (&q, &popped, &done_pushing);
                    s.spawn(move || loop {
                        match q.pop_timeout(Duration::from_millis(1)) {
                            Pop::Item(v) => {
                                assert!(popped.lock().unwrap().insert(v), "item {v} popped twice");
                            }
                            Pop::Closed => break,
                            Pop::Empty => {
                                // Pre-close an empty pop is routine; the
                                // popper only exits on Closed, which
                                // close() guarantees to eventually
                                // surface.
                                if done_pushing.load(Ordering::SeqCst) && q.is_empty() {
                                    // Give close() a chance to land.
                                    std::thread::yield_now();
                                }
                            }
                        }
                    });
                }
                // Close somewhere inside the push storm — the round
                // number staggers how much work precedes the drain.
                std::thread::sleep(Duration::from_micros(200 * round));
                q.close();
                done_pushing.store(true, Ordering::SeqCst);
            });
            let accepted = accepted.into_inner().unwrap();
            let rejected = rejected.into_inner().unwrap();
            let popped = popped.into_inner().unwrap();
            assert_eq!(
                accepted.len() + rejected.len(),
                (PUSHERS * PER_PUSHER) as usize,
                "every push either succeeded or handed its item back"
            );
            assert!(
                accepted.is_disjoint(&rejected),
                "an item cannot be both accepted and rejected"
            );
            assert_eq!(
                popped, accepted,
                "drain must surface exactly the accepted items: \
                 nothing dropped, nothing invented"
            );
        }
    }

    #[test]
    fn push_wakes_blocked_poppers() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(9, Priority::High).unwrap();
        match h.join().expect("popper thread joins") {
            Pop::Item(v) => assert_eq!(v, 9),
            other => panic!("expected an item, got {other:?}"),
        }
    }
}
