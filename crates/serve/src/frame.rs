//! The `mupod-serve` wire protocol: fixed 16-byte headers, validated
//! *before* any payload allocation.
//!
//! Both directions use a little-endian binary frame with a 4-byte magic
//! so a stray connection (HTTP probe, port scanner) is rejected from
//! the first bytes, never buffered. Request:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"mupq"
//!      4     1  version (1)
//!      5     1  kind     1 = classify, 2 = chaos-panic (test only),
//!                        3 = health-ping, 4 = reload
//!      6     1  priority 0 = high, 1 = low
//!      7     1  flags    bit 0 = trace-ID extension present
//!      8     4  deadline_ms (u32 LE; 0 = server default)
//!     12     4  payload_len (u32 LE, bytes)
//! ```
//!
//! When [`FLAG_TRACE_ID`] is set, an 8-byte LE trace ID follows the
//! header immediately, **before** the payload and excluded from
//! `payload_len`. The server echoes the ID back in the response frame
//! (response flags live at byte 6; byte 7 stays reserved) and stamps
//! it on every flight-recorder event the request produces, so one ID
//! links a client-side timeout to the server-side lifecycle. Trace ID
//! 0 is reserved to mean "untraced" — senders wanting tracing should
//! pick a nonzero ID. Unknown flag bits are a hard [`FrameError`]:
//! old servers reject rather than silently mis-frame.
//!
//! The classify payload is the image as raw `f32` LE words; its length
//! must equal the served model's input element count exactly — anything
//! else is a [`FrameError`] answered with
//! [`StatusCode::BadRequest`](mupod_runtime::StatusCode::BadRequest).
//! Response frames mirror the layout with magic `b"mups"` and a status
//! byte from the shared [`StatusCode`](mupod_runtime::StatusCode)
//! table; an OK payload is the class index as one `u32` LE, an error
//! payload is a UTF-8 diagnostic.
//!
//! Two control ops ride the same frame, added for the routing front:
//!
//! * **health-ping** (kind 3, empty payload) is answered inline by the
//!   connection handler — it never enters the queue — with an OK frame
//!   whose 1-byte payload is a [`ShardState`]. The router uses it for
//!   active health checking and as the half-open breaker probe.
//! * **reload** (kind 4, 8-byte LE seed payload) asks the shard to
//!   rebuild and recalibrate its network from the seed and swap it in
//!   atomically; the OK payload is the new 8-byte LE model epoch.
//!   Queued and in-flight requests keep executing on whichever network
//!   they dequeued with, so a reload never drops a connection.

use mupod_runtime::StatusCode;

/// Request-frame magic.
pub const REQ_MAGIC: [u8; 4] = *b"mupq";
/// Response-frame magic.
pub const RESP_MAGIC: [u8; 4] = *b"mups";
/// Only protocol version in existence.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed header size, both directions.
pub const HEADER_LEN: usize = 16;
/// Absolute payload ceiling — no model served here comes close, and it
/// bounds what a malicious `payload_len` can make the server allocate.
pub const MAX_PAYLOAD_BYTES: usize = 16 << 20;
/// Flag bit: an 8-byte LE trace ID follows the header.
pub const FLAG_TRACE_ID: u8 = 0b0000_0001;
/// Size of the trace-ID extension when present.
pub const TRACE_ID_LEN: usize = 8;
/// All flag bits this version understands.
const KNOWN_FLAGS: u8 = FLAG_TRACE_ID;

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Run the image through the model, answer the arg-max class.
    Classify,
    /// Panic the worker that picks this up (fault injection; only
    /// honored when the server runs with `--chaos`).
    ChaosPanic,
    /// Liveness probe answered inline by the connection handler with a
    /// [`ShardState`] byte; never queued, never touches a worker.
    HealthPing,
    /// Rebuild the served network from the 8-byte LE seed in the
    /// payload and hot-swap it (drain-and-swap; see module docs).
    Reload,
}

/// What a shard reports about itself in a health-ping reply payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving normally.
    Ok,
    /// Serving, but the load-shedding ladder is above level 0.
    Degraded,
    /// A model reload is in progress; serving continues on the old
    /// network, but a router may prefer other shards.
    Reloading,
    /// Draining; the shard will reject new work.
    Draining,
}

impl ShardState {
    /// The state as its wire byte.
    pub fn wire(self) -> u8 {
        match self {
            ShardState::Ok => 0,
            ShardState::Degraded => 1,
            ShardState::Reloading => 2,
            ShardState::Draining => 3,
        }
    }

    /// Looks a wire byte back up; `None` for unknown bytes.
    pub fn from_wire(byte: u8) -> Option<ShardState> {
        match byte {
            0 => Some(ShardState::Ok),
            1 => Some(ShardState::Degraded),
            2 => Some(ShardState::Reloading),
            3 => Some(ShardState::Draining),
            _ => None,
        }
    }

    /// Whether a router should send classify traffic here.
    pub fn routable(self) -> bool {
        matches!(
            self,
            ShardState::Ok | ShardState::Degraded | ShardState::Reloading
        )
    }
}

/// Admission priority; the load-shedding ladder rejects `Low` first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Normal traffic.
    High,
    /// Best-effort traffic, shed under pressure.
    Low,
}

/// A parsed, validated request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    /// Requested operation.
    pub kind: ReqKind,
    /// Admission priority.
    pub priority: Priority,
    /// Per-request deadline in milliseconds; 0 means server default.
    pub deadline_ms: u32,
    /// Payload size in bytes (already bounds-checked).
    pub payload_len: usize,
    /// Whether an 8-byte trace ID follows the header.
    pub has_trace_id: bool,
}

/// A parsed response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Outcome from the shared status table.
    pub status: StatusCode,
    /// Payload size in bytes (already bounds-checked).
    pub payload_len: usize,
    /// Whether an 8-byte trace ID follows the header.
    pub has_trace_id: bool,
}

/// Why a frame was rejected. Every variant maps to
/// [`StatusCode::BadRequest`] on the wire; the message payload carries
/// the `Display` text so clients see *which* check failed.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not the expected magic.
    BadMagic {
        /// The bytes actually received.
        got: [u8; 4],
    },
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown request-kind byte.
    BadKind(u8),
    /// Unknown priority byte.
    BadPriority(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Flag bits this protocol version does not understand.
    BadFlags(u8),
    /// `payload_len` exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The payload length does not match what the served model needs.
    WrongPayloadLen {
        /// Declared payload length in bytes.
        got: usize,
        /// Required payload length in bytes.
        want: usize,
    },
    /// The peer closed or stalled mid-frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown request kind {k}"),
            FrameError::BadPriority(p) => write!(f, "unknown priority {p}"),
            FrameError::BadStatus(s) => write!(f, "unknown response status {s}"),
            FrameError::BadFlags(b) => write!(f, "unknown frame flags {b:#04x}"),
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "payload of {len} bytes exceeds the {MAX_PAYLOAD_BYTES}-byte cap"
                )
            }
            FrameError::WrongPayloadLen { got, want } => {
                write!(f, "payload is {got} bytes, model needs exactly {want}")
            }
            FrameError::Truncated => write!(f, "frame truncated mid-read"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a classify/chaos request frame.
pub fn encode_request(
    kind: ReqKind,
    priority: Priority,
    deadline_ms: u32,
    image: &[f32],
) -> Vec<u8> {
    encode_request_traced(kind, priority, deadline_ms, None, image)
}

/// Encodes a request frame, optionally carrying a trace ID the server
/// will echo back. `Some(0)` is treated as untraced.
pub fn encode_request_traced(
    kind: ReqKind,
    priority: Priority,
    deadline_ms: u32,
    trace_id: Option<u64>,
    image: &[f32],
) -> Vec<u8> {
    let mut payload = Vec::with_capacity(image.len() * 4);
    for v in image {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    encode_request_raw(kind, priority, deadline_ms, trace_id, &payload)
}

/// Encodes a request frame around an arbitrary raw payload. The
/// classify encoders build their `f32` payload and delegate here; the
/// control ops ([`encode_ping`], [`encode_reload`]) use it directly.
pub fn encode_request_raw(
    kind: ReqKind,
    priority: Priority,
    deadline_ms: u32,
    trace_id: Option<u64>,
    payload: &[u8],
) -> Vec<u8> {
    let trace_id = trace_id.filter(|&id| id != 0);
    let ext = if trace_id.is_some() { TRACE_ID_LEN } else { 0 };
    let mut buf = Vec::with_capacity(HEADER_LEN + ext + payload.len());
    buf.extend_from_slice(&REQ_MAGIC);
    buf.push(PROTOCOL_VERSION);
    buf.push(match kind {
        ReqKind::Classify => 1,
        ReqKind::ChaosPanic => 2,
        ReqKind::HealthPing => 3,
        ReqKind::Reload => 4,
    });
    buf.push(match priority {
        Priority::High => 0,
        Priority::Low => 1,
    });
    buf.push(if trace_id.is_some() { FLAG_TRACE_ID } else { 0 });
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    if let Some(id) = trace_id {
        buf.extend_from_slice(&id.to_le_bytes());
    }
    buf.extend_from_slice(payload);
    buf
}

/// Encodes a health-ping request (empty payload, server-default
/// deadline; answered inline, so the deadline is moot anyway).
pub fn encode_ping() -> Vec<u8> {
    encode_request_raw(ReqKind::HealthPing, Priority::High, 0, None, &[])
}

/// Encodes a reload request carrying the new calibration seed.
pub fn encode_reload(seed: u64, deadline_ms: u32) -> Vec<u8> {
    encode_request_raw(
        ReqKind::Reload,
        Priority::High,
        deadline_ms,
        None,
        &seed.to_le_bytes(),
    )
}

/// Decodes a reload request's seed payload; `None` unless it is
/// exactly eight bytes.
pub fn decode_reload_seed(payload: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Parses and validates a request header.
///
/// # Errors
///
/// Any field outside the protocol table returns the matching
/// [`FrameError`]; the oversize check runs **before** the caller
/// allocates a payload buffer.
pub fn parse_request_header(buf: &[u8; HEADER_LEN]) -> Result<RequestHeader, FrameError> {
    if buf[..4] != REQ_MAGIC {
        return Err(FrameError::BadMagic {
            got: [buf[0], buf[1], buf[2], buf[3]],
        });
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(buf[4]));
    }
    let kind = match buf[5] {
        1 => ReqKind::Classify,
        2 => ReqKind::ChaosPanic,
        3 => ReqKind::HealthPing,
        4 => ReqKind::Reload,
        k => return Err(FrameError::BadKind(k)),
    };
    let priority = match buf[6] {
        0 => Priority::High,
        1 => Priority::Low,
        p => return Err(FrameError::BadPriority(p)),
    };
    let flags = buf[7];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    let deadline_ms = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let payload_len = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversized { len: payload_len });
    }
    Ok(RequestHeader {
        kind,
        priority,
        deadline_ms,
        payload_len,
        has_trace_id: flags & FLAG_TRACE_ID != 0,
    })
}

/// Decodes a classify payload into `f32` image data.
///
/// # Panics
///
/// Panics if `payload` is not a multiple of four bytes; the header
/// validation guarantees it is.
pub fn decode_image(payload: &[u8]) -> Vec<f32> {
    assert_eq!(payload.len() % 4, 0, "image payload must be whole f32s");
    payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Encodes a response frame with an arbitrary payload.
pub fn encode_response(status: StatusCode, payload: &[u8]) -> Vec<u8> {
    encode_response_traced(status, None, payload)
}

/// Encodes a response frame, echoing a trace ID when `Some` and
/// nonzero (response flags live at byte 6; byte 7 stays reserved).
pub fn encode_response_traced(
    status: StatusCode,
    trace_id: Option<u64>,
    payload: &[u8],
) -> Vec<u8> {
    let trace_id = trace_id.filter(|&id| id != 0);
    let ext = if trace_id.is_some() { TRACE_ID_LEN } else { 0 };
    let mut buf = Vec::with_capacity(HEADER_LEN + ext + payload.len());
    buf.extend_from_slice(&RESP_MAGIC);
    buf.push(PROTOCOL_VERSION);
    buf.push(status.wire());
    buf.push(if trace_id.is_some() { FLAG_TRACE_ID } else { 0 });
    buf.push(0);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0]);
    if let Some(id) = trace_id {
        buf.extend_from_slice(&id.to_le_bytes());
    }
    buf.extend_from_slice(payload);
    buf
}

/// Encodes the OK response carrying a class index.
pub fn encode_class_response(class: u32) -> Vec<u8> {
    encode_response(StatusCode::Ok, &class.to_le_bytes())
}

/// Parses and validates a response header.
///
/// # Errors
///
/// Returns the matching [`FrameError`] on any malformed field.
pub fn parse_response_header(buf: &[u8; HEADER_LEN]) -> Result<ResponseHeader, FrameError> {
    if buf[..4] != RESP_MAGIC {
        return Err(FrameError::BadMagic {
            got: [buf[0], buf[1], buf[2], buf[3]],
        });
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(buf[4]));
    }
    let status = StatusCode::from_wire(buf[5]).ok_or(FrameError::BadStatus(buf[5]))?;
    let flags = buf[6];
    if flags & !KNOWN_FLAGS != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    let payload_len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(FrameError::Oversized { len: payload_len });
    }
    Ok(ResponseHeader {
        status,
        payload_len,
        has_trace_id: flags & FLAG_TRACE_ID != 0,
    })
}

/// Decodes the 8-byte LE trace-ID extension.
pub fn decode_trace_id(ext: &[u8; TRACE_ID_LEN]) -> u64 {
    u64::from_le_bytes(*ext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header_of(frame: &[u8]) -> [u8; HEADER_LEN] {
        frame[..HEADER_LEN].try_into().expect("frame has a header")
    }

    #[test]
    fn request_round_trips() {
        let image = [0.5f32, -1.25, 3.0];
        let frame = encode_request(ReqKind::Classify, Priority::Low, 250, &image);
        let h = parse_request_header(&header_of(&frame)).unwrap();
        assert_eq!(h.kind, ReqKind::Classify);
        assert_eq!(h.priority, Priority::Low);
        assert_eq!(h.deadline_ms, 250);
        assert_eq!(h.payload_len, 12);
        assert_eq!(decode_image(&frame[HEADER_LEN..]), image);
    }

    #[test]
    fn response_round_trips() {
        let frame = encode_class_response(7);
        let h = parse_response_header(&header_of(&frame)).unwrap();
        assert_eq!(h.status, StatusCode::Ok);
        assert_eq!(h.payload_len, 4);
        assert_eq!(&frame[HEADER_LEN..], 7u32.to_le_bytes());

        let err = encode_response(StatusCode::ServerBusy, b"queue full");
        let h = parse_response_header(&header_of(&err)).unwrap();
        assert_eq!(h.status, StatusCode::ServerBusy);
        assert_eq!(&err[HEADER_LEN..], b"queue full");
    }

    #[test]
    fn corrupted_headers_are_typed_errors() {
        let good = encode_request(ReqKind::Classify, Priority::High, 0, &[1.0]);
        let mut h = header_of(&good);
        h[0] = b'H'; // an HTTP probe, say
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::BadMagic { .. })
        ));

        let mut h = header_of(&good);
        h[4] = 9;
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::BadVersion(9))
        ));

        let mut h = header_of(&good);
        h[5] = 77;
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::BadKind(77))
        ));

        let mut h = header_of(&good);
        h[6] = 3;
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::BadPriority(3))
        ));
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocation() {
        let good = encode_request(ReqKind::Classify, Priority::High, 0, &[1.0]);
        let mut h = header_of(&good);
        h[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_response_status_is_rejected() {
        let frame = encode_class_response(0);
        let mut h = header_of(&frame);
        h[5] = 99;
        assert!(matches!(
            parse_response_header(&h),
            Err(FrameError::BadStatus(99))
        ));
    }

    #[test]
    fn traced_request_round_trips() {
        let image = [1.0f32, 2.0];
        let frame =
            encode_request_traced(ReqKind::Classify, Priority::High, 100, Some(0xFACE), &image);
        let h = parse_request_header(&header_of(&frame)).unwrap();
        assert!(h.has_trace_id);
        assert_eq!(h.payload_len, 8, "trace ID is excluded from payload_len");
        let ext: [u8; TRACE_ID_LEN] = frame[HEADER_LEN..HEADER_LEN + TRACE_ID_LEN]
            .try_into()
            .unwrap();
        assert_eq!(decode_trace_id(&ext), 0xFACE);
        assert_eq!(decode_image(&frame[HEADER_LEN + TRACE_ID_LEN..]), image);
    }

    #[test]
    fn traced_response_round_trips() {
        let frame = encode_response_traced(StatusCode::Ok, Some(0xFACE), &7u32.to_le_bytes());
        let h = parse_response_header(&header_of(&frame)).unwrap();
        assert!(h.has_trace_id);
        assert_eq!(h.payload_len, 4);
        let ext: [u8; TRACE_ID_LEN] = frame[HEADER_LEN..HEADER_LEN + TRACE_ID_LEN]
            .try_into()
            .unwrap();
        assert_eq!(decode_trace_id(&ext), 0xFACE);
        assert_eq!(&frame[HEADER_LEN + TRACE_ID_LEN..], 7u32.to_le_bytes());
    }

    #[test]
    fn zero_or_absent_trace_id_means_untraced() {
        for frame in [
            encode_request_traced(ReqKind::Classify, Priority::High, 0, None, &[1.0]),
            encode_request_traced(ReqKind::Classify, Priority::High, 0, Some(0), &[1.0]),
            encode_request(ReqKind::Classify, Priority::High, 0, &[1.0]),
        ] {
            let h = parse_request_header(&header_of(&frame)).unwrap();
            assert!(!h.has_trace_id);
            assert_eq!(frame.len(), HEADER_LEN + 4);
        }
        let resp = encode_response_traced(StatusCode::Ok, Some(0), &[]);
        assert!(
            !parse_response_header(&header_of(&resp))
                .unwrap()
                .has_trace_id
        );
        assert_eq!(resp.len(), HEADER_LEN);
    }

    #[test]
    fn control_ops_round_trip() {
        let ping = encode_ping();
        let h = parse_request_header(&header_of(&ping)).unwrap();
        assert_eq!(h.kind, ReqKind::HealthPing);
        assert_eq!(h.payload_len, 0);
        assert_eq!(ping.len(), HEADER_LEN);

        let reload = encode_reload(0xDEAD_BEEF_CAFE, 2_000);
        let h = parse_request_header(&header_of(&reload)).unwrap();
        assert_eq!(h.kind, ReqKind::Reload);
        assert_eq!(h.deadline_ms, 2_000);
        assert_eq!(h.payload_len, 8);
        assert_eq!(
            decode_reload_seed(&reload[HEADER_LEN..]),
            Some(0xDEAD_BEEF_CAFE)
        );
        assert_eq!(decode_reload_seed(&[1, 2, 3]), None);
    }

    #[test]
    fn unknown_op_bytes_are_rejected() {
        let good = encode_ping();
        for op in [0u8, 5, 6, 42, 255] {
            let mut h = header_of(&good);
            h[5] = op;
            assert!(
                matches!(parse_request_header(&h), Err(FrameError::BadKind(k)) if k == op),
                "op {op} must be rejected"
            );
        }
    }

    #[test]
    fn shard_state_wire_round_trips() {
        for state in [
            ShardState::Ok,
            ShardState::Degraded,
            ShardState::Reloading,
            ShardState::Draining,
        ] {
            assert_eq!(ShardState::from_wire(state.wire()), Some(state));
        }
        assert_eq!(ShardState::from_wire(4), None);
        assert!(ShardState::Ok.routable());
        assert!(ShardState::Reloading.routable());
        assert!(!ShardState::Draining.routable());
    }

    #[test]
    fn raw_request_encapsulation_is_byte_identical() {
        // A router that re-encodes a parsed request with
        // `encode_request_raw` must reproduce the original frame
        // byte-for-byte: deadline, flags, trace ID, and payload all
        // survive the hop.
        let image = [0.25f32, -7.5, 11.0];
        let original =
            encode_request_traced(ReqKind::Classify, Priority::Low, 777, Some(0xABCD), &image);
        let h = parse_request_header(&header_of(&original)).unwrap();
        let ext: [u8; TRACE_ID_LEN] = original[HEADER_LEN..HEADER_LEN + TRACE_ID_LEN]
            .try_into()
            .unwrap();
        let reencoded = encode_request_raw(
            h.kind,
            h.priority,
            h.deadline_ms,
            Some(decode_trace_id(&ext)),
            &original[HEADER_LEN + TRACE_ID_LEN..],
        );
        assert_eq!(reencoded, original);
    }

    #[test]
    fn unknown_flag_bits_are_rejected_both_directions() {
        let good = encode_request(ReqKind::Classify, Priority::High, 0, &[1.0]);
        let mut h = header_of(&good);
        h[7] = 0x82;
        assert!(matches!(
            parse_request_header(&h),
            Err(FrameError::BadFlags(0x82))
        ));

        let resp = encode_class_response(0);
        let mut h = header_of(&resp);
        h[6] = 0x04;
        assert!(matches!(
            parse_response_header(&h),
            Err(FrameError::BadFlags(0x04))
        ));
    }
}
