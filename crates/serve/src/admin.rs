//! The admin plane: a tiny HTTP/1.0 responder on a separate listener.
//!
//! Serving traffic speaks the binary frame protocol; observability
//! tooling speaks HTTP. Mixing them on one port would let a scrape
//! burn a frame-protocol handler (and vice versa), so `--metrics-addr`
//! binds a second listener that only ever answers three read-only
//! routes:
//!
//! | route      | payload                                           |
//! |------------|---------------------------------------------------|
//! | `/metrics` | Prometheus text exposition (see [`crate::telemetry`]) |
//! | `/health`  | `mupod-health v1` JSON; 503 while draining        |
//! | `/flight`  | the flight-recorder ring as `mupod-flight v1` JSON |
//!
//! The responder is deliberately minimal: requests are capped at 4 KiB
//! (request line and headers together), every read carries a
//! 2-second whole-request deadline, every response closes the
//! connection, and each connection is served on its own short-lived
//! thread so one slow-loris peer — connected but trickling or
//! withholding bytes — can delay only itself, never a concurrent
//! scrape. No request body is ever read, no method other than
//! `GET`/`HEAD` accepted.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::server::{ServeConfig, Shared, POLL};
use crate::telemetry;

/// Largest admin request we buffer before answering 400.
const MAX_REQUEST_BYTES: usize = 4096;
/// How long one admin connection may take to deliver its request.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// One route's answer: status code, content type, body.
pub(crate) type AdminResponse = (u16, &'static str, Vec<u8>);

/// Generic accept loop for an admin-style HTTP plane: accepts until
/// `stop` turns true, serving each connection on its own scoped
/// thread. `respond` maps a request path to an [`AdminResponse`]
/// (`None` → 404). The scope joins every handler before returning;
/// each is bounded by [`READ_TIMEOUT`], so the join is too. The
/// listener must already be nonblocking.
pub(crate) fn run_admin(
    listener: &TcpListener,
    stop: &(dyn Fn() -> bool + Sync),
    respond: &(dyn Fn(&str) -> Option<AdminResponse> + Sync),
) {
    std::thread::scope(|s| loop {
        if stop() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                mupod_obs::counter_add("serve.admin_requests", 1);
                s.spawn(move || handle_admin(stream, respond));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    });
}

/// Accept loop for the serving node's admin listener (`/metrics`,
/// `/health`, `/flight`); exits when the server drains.
pub(crate) fn admin_loop(listener: &TcpListener, cfg: &ServeConfig, shared: &Shared) {
    run_admin(listener, &|| shared.is_draining(), &|path| match path {
        "/metrics" => Some((
            200,
            "text/plain; version=0.0.4",
            telemetry::render_metrics(cfg, shared).into_bytes(),
        )),
        "/health" => {
            let (code, body) = telemetry::render_health(cfg, shared);
            Some((code, "application/json", body.into_bytes()))
        }
        "/flight" => Some((
            200,
            "application/json",
            shared.telemetry.flight.to_json().into_bytes(),
        )),
        _ => None,
    });
}

/// Serves one admin connection: parse the request line, route, answer,
/// close.
fn handle_admin(mut stream: TcpStream, respond: &(dyn Fn(&str) -> Option<AdminResponse> + Sync)) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
    let Some(request) = read_request(&mut stream) else {
        let _ = write_http(&mut stream, 400, "text/plain", b"bad request\n");
        return;
    };
    let Some(path) = parse_request_path(&request) else {
        let _ = write_http(&mut stream, 400, "text/plain", b"bad request\n");
        return;
    };
    match respond(&path) {
        Some((code, content_type, body)) => {
            let _ = write_http(&mut stream, code, content_type, &body);
        }
        None => {
            let _ = write_http(&mut stream, 404, "text/plain", b"unknown route\n");
        }
    }
}

/// Reads until the header terminator, the size cap, or the timeout.
fn read_request(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let deadline = Instant::now() + READ_TIMEOUT;
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            return Some(buf);
        }
        if buf.len() >= MAX_REQUEST_BYTES || Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return if buf.is_empty() { None } else { Some(buf) },
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

/// Extracts the path from a `GET <path> HTTP/1.x` request line.
fn parse_request_path(request: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(request).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?;
    if method != "GET" && method != "HEAD" {
        return None;
    }
    let path = parts.next()?;
    // Ignore any query string; routes take no parameters.
    let path = path.split('?').next().unwrap_or(path);
    Some(path.to_string())
}

/// Writes one complete HTTP/1.0 response and flushes.
fn write_http(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let head = format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Minimal HTTP GET against the admin plane: one request, read to EOF,
/// return `(status, body)`. Used by `mupod query --dump-flight` and
/// the telemetry tests; not a general HTTP client.
///
/// # Errors
///
/// Any transport failure, or `InvalidData` if the response is not
/// parseable HTTP.
pub fn http_get(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.0\r\nHost: mupod\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    stream.flush()?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    parse_http_response(&response)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Splits a raw HTTP response into `(status, body)`.
fn parse_http_response(raw: &[u8]) -> Option<(u16, Vec<u8>)> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)?;
    let head = std::str::from_utf8(&raw[..header_end]).ok()?;
    let status: u16 = head.split_ascii_whitespace().nth(1)?.parse().ok()?;
    Some((status, raw[header_end..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_to_paths() {
        assert_eq!(
            parse_request_path(b"GET /metrics HTTP/1.1\r\n\r\n").as_deref(),
            Some("/metrics")
        );
        assert_eq!(
            parse_request_path(b"HEAD /health?verbose=1 HTTP/1.0\r\n\r\n").as_deref(),
            Some("/health")
        );
        assert!(parse_request_path(b"POST /metrics HTTP/1.1\r\n\r\n").is_none());
        assert!(parse_request_path(b"\xff\xfe").is_none());
        assert!(parse_request_path(b"").is_none());
    }

    #[test]
    fn http_responses_split_into_status_and_body() {
        let raw = b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nhi";
        let (status, body) = parse_http_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hi");
        assert!(parse_http_response(b"not http").is_none());
    }

    fn ping_plane(listener: &TcpListener, stop: &std::sync::atomic::AtomicBool) {
        run_admin(
            listener,
            &|| stop.load(std::sync::atomic::Ordering::SeqCst),
            &|path| match path {
                "/ping" => Some((200, "text/plain", b"pong\n".to_vec())),
                _ => None,
            },
        );
    }

    #[test]
    fn stalled_half_written_request_cannot_starve_the_listener() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (listener, stop) = (&listener, &stop);
            s.spawn(move || ping_plane(listener, stop));
            // Slow-loris peers: connect, write half a request line, then
            // stall with the connection held open.
            let mut lorises: Vec<TcpStream> = (0..3)
                .map(|_| {
                    let mut c = TcpStream::connect(addr).unwrap();
                    c.write_all(b"GET /pi").unwrap();
                    c.flush().unwrap();
                    c
                })
                .collect();
            // While they stall, a well-behaved scrape must be answered
            // promptly — well inside the per-connection read deadline the
            // stalled peers are still burning.
            let start = Instant::now();
            let (code, body) = http_get(addr, "/ping", Duration::from_secs(5)).unwrap();
            assert_eq!(code, 200);
            assert_eq!(body, b"pong\n");
            assert!(
                start.elapsed() < READ_TIMEOUT,
                "scrape starved behind stalled peers: {:?}",
                start.elapsed()
            );
            // Each stalled connection is bounded: answered 400 once its
            // read deadline lapses, never held open indefinitely.
            for loris in &mut lorises {
                loris
                    .set_read_timeout(Some(READ_TIMEOUT + Duration::from_secs(3)))
                    .unwrap();
                let mut raw = Vec::new();
                loris.read_to_end(&mut raw).unwrap();
                let (code, _) = parse_http_response(&raw).unwrap();
                assert_eq!(code, 400);
            }
            stop.store(true, Ordering::SeqCst);
        });
    }

    #[test]
    fn oversized_request_head_is_rejected() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (listener, stop) = (&listener, &stop);
            s.spawn(move || ping_plane(listener, stop));
            // A request head that never terminates and blows through the
            // size cap is cut off with 400 without waiting for the
            // deadline.
            let mut c = TcpStream::connect(addr).unwrap();
            let garbage = vec![b'x'; 2 * MAX_REQUEST_BYTES];
            // The peer may already have been answered mid-write; ignore
            // write errors and read whatever came back.
            let _ = c.write_all(&garbage);
            let _ = c.flush();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut raw = Vec::new();
            let _ = c.read_to_end(&mut raw);
            let (code, _) = parse_http_response(&raw).unwrap();
            assert_eq!(code, 400);
            stop.store(true, Ordering::SeqCst);
        });
    }
}
