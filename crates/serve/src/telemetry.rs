//! The live telemetry plane: rolling-window instruments, the
//! `/metrics` and `/health` renderers, and the flight-recorder dump.
//!
//! Everything here reads the server's shared state without stopping
//! it: the rolling histograms ([`mupod_obs::RollingHistogram`]) are
//! written lock-free on the hot path and merged at scrape time, the
//! report counters are plain atomics, and the flight recorder holds a
//! short mutex per event. A scrape therefore never blocks admission
//! or a worker's batch.
//!
//! `DESIGN.md` §13 describes the plane end to end; the exposition
//! syntax is checked by [`mupod_obs::expo::validate`] in the tests and
//! the CI `telemetry-smoke` job.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use mupod_obs::{Exposition, FlightRecorder, Gauge, RollingHistogram};

use crate::server::{ServeConfig, Shared};

/// Sliding window the scrape quantiles cover.
const WINDOW: Duration = Duration::from_secs(60);
/// Slots per window: 5-second resolution on expiry.
const WINDOW_SLOTS: usize = 12;
/// Lifecycle events the flight recorder retains.
const FLIGHT_CAPACITY: usize = 4096;

/// Health-document schema tag.
pub const HEALTH_SCHEMA: &str = "mupod-health v1";

/// Per-server live instruments, owned by `Shared`.
pub(crate) struct Telemetry {
    /// Server start (uptime base).
    pub(crate) start: Instant,
    /// OK-request latency, microseconds, rolling window.
    pub(crate) latency_us: RollingHistogram,
    /// Queue depth sampled at every admission.
    pub(crate) queue_depth: RollingHistogram,
    /// Live jobs per executed batch (batch occupancy).
    pub(crate) batch_fill: RollingHistogram,
    /// Requests admitted but not yet answered.
    pub(crate) in_flight: Gauge,
    /// Request-lifecycle ring for post-mortem dumps.
    pub(crate) flight: FlightRecorder,
}

impl Telemetry {
    pub(crate) fn new() -> Self {
        Telemetry {
            start: Instant::now(),
            latency_us: RollingHistogram::new(WINDOW, WINDOW_SLOTS),
            queue_depth: RollingHistogram::new(WINDOW, WINDOW_SLOTS),
            batch_fill: RollingHistogram::new(WINDOW, WINDOW_SLOTS),
            in_flight: Gauge::new(),
            flight: FlightRecorder::new(FLIGHT_CAPACITY),
        }
    }
}

/// Renders the `/metrics` payload: every report counter, the pressure
/// gauges, and the rolling-window histograms with p50/p99 summaries.
pub(crate) fn render_metrics(cfg: &ServeConfig, shared: &Shared) -> String {
    let t = &shared.telemetry;
    let st = &shared.stats;
    let mut e = Exposition::new();
    e.gauge_f64(
        "mupod_uptime_seconds",
        "Seconds since the server started.",
        t.start.elapsed().as_secs_f64(),
    );
    for (name, help, counter) in [
        (
            "mupod_requests_ok_total",
            "Requests answered Ok with a class.",
            &st.requests_ok,
        ),
        (
            "mupod_rejected_busy_total",
            "Fast-rejected at admission (queue full or shed).",
            &st.rejected_busy,
        ),
        (
            "mupod_rejected_draining_total",
            "Answered Draining at admission or dequeue.",
            &st.rejected_draining,
        ),
        (
            "mupod_shed_low_priority_total",
            "Low-priority requests shed by ladder level 2.",
            &st.shed_low_priority,
        ),
        (
            "mupod_deadline_expired_total",
            "Requests whose deadline expired before or during service.",
            &st.deadline_expired,
        ),
        (
            "mupod_bad_frames_total",
            "Malformed frames answered BadRequest.",
            &st.bad_frames,
        ),
        (
            "mupod_worker_crashes_total",
            "Worker panics caught and isolated.",
            &st.worker_crashes,
        ),
        (
            "mupod_client_disconnects_total",
            "Peers that vanished mid-request or mid-response.",
            &st.client_disconnects,
        ),
        (
            "mupod_batches_total",
            "Batched forward passes executed.",
            &st.batches,
        ),
        (
            "mupod_batched_requests_total",
            "Requests served through those batches.",
            &st.batched_requests,
        ),
    ] {
        e.counter(name, help, counter.load(Ordering::SeqCst));
    }
    e.counter(
        "mupod_flight_events_dropped_total",
        "Flight-recorder events evicted because the ring was full.",
        t.flight.dropped(),
    );
    e.gauge(
        "mupod_queue_depth",
        "Requests queued right now.",
        shared.queue.len() as i64,
    );
    e.gauge(
        "mupod_in_flight",
        "Requests admitted but not yet answered.",
        t.in_flight.get(),
    );
    e.gauge(
        "mupod_degrade_level",
        "Current degradation-ladder level (3 = draining).",
        if shared.is_draining() {
            3
        } else {
            i64::from(shared.degrade.load(Ordering::SeqCst))
        },
    );
    e.gauge(
        "mupod_restart_budget_remaining",
        "Worker panics the restart budget still tolerates.",
        i64::from(
            cfg.restart_budget
                .saturating_sub(shared.crashes.load(Ordering::SeqCst)),
        ),
    );
    e.gauge(
        "mupod_serve_kernel_tier",
        "Kernel tier the workers run on (0 = exact, 1 = fast).",
        match cfg.kernel_tier {
            mupod_nn::KernelTier::Exact => 0,
            mupod_nn::KernelTier::Fast => 1,
        },
    );
    let lat = t.latency_us.summarize();
    e.histogram(
        "mupod_request_latency_us",
        "OK-request latency in microseconds over the rolling window.",
        &lat,
    );
    e.summary(
        "mupod_request_latency_window_us",
        "Windowed OK-request latency quantiles, microseconds.",
        &[("0.5", lat.quantile(0.5)), ("0.99", lat.quantile(0.99))],
        &lat,
    );
    e.histogram(
        "mupod_admission_queue_depth",
        "Queue depth sampled at each admission over the rolling window.",
        &t.queue_depth.summarize(),
    );
    e.histogram(
        "mupod_batch_fill",
        "Live jobs per executed batch over the rolling window.",
        &t.batch_fill.summarize(),
    );
    e.finish()
}

/// Renders the `/health` payload; the status code is 503 while
/// draining (a load balancer should stop sending work) and 200
/// otherwise, degraded included.
pub(crate) fn render_health(cfg: &ServeConfig, shared: &Shared) -> (u16, String) {
    let t = &shared.telemetry;
    let draining = shared.is_draining();
    let level = if draining {
        3
    } else {
        shared.degrade.load(Ordering::SeqCst)
    };
    let state = if draining {
        "draining"
    } else if level > 0 {
        "degraded"
    } else {
        "ok"
    };
    let crashes = shared.crashes.load(Ordering::SeqCst);
    let body = format!(
        concat!(
            "{{\n",
            "  \"schema\": {schema},\n",
            "  \"state\": {state},\n",
            "  \"degrade_level\": {level},\n",
            "  \"uptime_s\": {uptime},\n",
            "  \"in_flight\": {in_flight},\n",
            "  \"queue_depth\": {depth},\n",
            "  \"queue_capacity\": {capacity},\n",
            "  \"worker_crashes\": {crashes},\n",
            "  \"restart_budget\": {budget},\n",
            "  \"restart_budget_remaining\": {remaining},\n",
            "  \"workers\": {workers}\n",
            "}}\n"
        ),
        schema = mupod_obs::json::escape(HEALTH_SCHEMA),
        state = mupod_obs::json::escape(state),
        level = level,
        uptime = mupod_obs::json::fmt_f64(t.start.elapsed().as_secs_f64()),
        in_flight = t.in_flight.get(),
        depth = shared.queue.len(),
        capacity = shared.queue.capacity(),
        crashes = crashes,
        budget = cfg.restart_budget,
        remaining = cfg.restart_budget.saturating_sub(crashes),
        workers = cfg.workers.max(1),
    );
    (if draining { 503 } else { 200 }, body)
}

/// Seals the flight recorder to `cfg.flight_out`, if configured.
/// Called on worker panic and restart-budget exhaustion so the ring's
/// final moments survive the process; failures are logged, never
/// propagated (a broken disk must not take down serving).
pub(crate) fn dump_flight(cfg: &ServeConfig, shared: &Shared) {
    let Some(path) = cfg.flight_out.as_deref() else {
        return;
    };
    let doc = shared.telemetry.flight.to_json();
    match mupod_runtime::write_atomic(path, doc.as_bytes()) {
        Ok(()) => mupod_obs::event(
            mupod_obs::Level::Info,
            "serve.flight_dumped",
            &[
                ("path", &path.display().to_string()),
                (
                    "events",
                    &shared.telemetry.flight.events().len().to_string(),
                ),
            ],
        ),
        Err(e) => mupod_obs::event(
            mupod_obs::Level::Error,
            "serve.flight_dump_failed",
            &[
                ("path", &path.display().to_string()),
                ("error", &e.to_string()),
            ],
        ),
    }
}
