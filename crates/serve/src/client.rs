//! Loopback client: single requests for the CLI's `mupod query` and a
//! fixed-concurrency load generator for the soak test and the
//! sustained-load bench.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mupod_runtime::StatusCode;

use crate::frame::{
    self, FrameError, Priority, ReqKind, ShardState, HEADER_LEN, MAX_PAYLOAD_BYTES, TRACE_ID_LEN,
};

/// Client-side failures (server-side rejections arrive as a [`Reply`]
/// with a non-OK status, not as errors).
#[derive(Debug)]
pub enum ClientError {
    /// Connect / read / write failure.
    Io(std::io::Error),
    /// The server's response frame was malformed.
    Frame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "bad response frame: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One decoded server response.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Outcome from the shared status table.
    pub status: StatusCode,
    /// The class index, when `status` is OK.
    pub class: Option<u32>,
    /// The server's diagnostic, when `status` is an error.
    pub message: Option<String>,
    /// The trace ID the server echoed back, when the request carried
    /// one and the server understood it.
    pub trace_id: Option<u64>,
    /// Round-trip time as the client saw it.
    pub latency: Duration,
}

/// Outcome of a [`Connection::reload`] request.
#[derive(Debug, Clone)]
pub struct ReloadReply {
    /// `Ok` for a completed swap, `BadRequest` (with a diagnostic in
    /// `message`) for a rejected or failed one.
    pub status: StatusCode,
    /// The shard's new model epoch, when the swap completed.
    pub epoch: Option<u64>,
    /// The server's diagnostic, when it did not.
    pub message: Option<String>,
}

/// A persistent connection to a `mupod serve` instance.
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects with `timeout` applied to connect, reads and writes.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the server is unreachable.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one classify request and waits for the reply.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or framing problems; server-side
    /// rejections come back as a non-OK [`Reply`].
    pub fn classify(
        &mut self,
        image: &[f32],
        deadline_ms: u32,
        priority: Priority,
    ) -> Result<Reply, ClientError> {
        self.round_trip(ReqKind::Classify, priority, deadline_ms, None, image)
    }

    /// Like [`Connection::classify`], but stamps the request with a
    /// nonzero trace ID the server echoes back and records on every
    /// flight-recorder event the request produces.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::classify`].
    pub fn classify_traced(
        &mut self,
        image: &[f32],
        deadline_ms: u32,
        priority: Priority,
        trace_id: u64,
    ) -> Result<Reply, ClientError> {
        self.round_trip(
            ReqKind::Classify,
            priority,
            deadline_ms,
            Some(trace_id),
            image,
        )
    }

    /// Sends a chaos-panic frame (only honored by `--chaos` servers);
    /// the expected reply is `WorkerCrashed`. A nonzero `trace_id` tags
    /// the injected fault in the flight recorder.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::classify`].
    pub fn chaos_panic(&mut self) -> Result<Reply, ClientError> {
        self.round_trip(ReqKind::ChaosPanic, Priority::High, 0, None, &[])
    }

    /// [`Connection::chaos_panic`] with a trace ID.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::classify`].
    pub fn chaos_panic_traced(&mut self, trace_id: u64) -> Result<Reply, ClientError> {
        self.round_trip(ReqKind::ChaosPanic, Priority::High, 0, Some(trace_id), &[])
    }

    /// Sends a health ping; the server answers inline (never queued)
    /// with its self-reported [`ShardState`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure, [`ClientError::Frame`]
    /// if the reply is not an OK frame carrying one known state byte.
    pub fn ping(&mut self) -> Result<ShardState, ClientError> {
        let (status, payload) = self.round_trip_raw(&frame::encode_ping())?;
        if status == StatusCode::Ok {
            if payload.len() != 1 {
                return Err(FrameError::WrongPayloadLen {
                    got: payload.len(),
                    want: 1,
                }
                .into());
            }
            return ShardState::from_wire(payload[0])
                .ok_or_else(|| FrameError::BadStatus(payload[0]).into());
        }
        Err(FrameError::BadStatus(status.wire()).into())
    }

    /// Asks the server to hot-reload its network from `seed` (see the
    /// reload handshake in [`crate::frame`]). Blocks until the rebuild
    /// finishes or `deadline_ms` of socket inactivity passes.
    ///
    /// # Errors
    ///
    /// Transport/framing problems only; a server-side rejection comes
    /// back as a [`ReloadReply`] with a non-OK status and diagnostic.
    pub fn reload(&mut self, seed: u64, deadline_ms: u32) -> Result<ReloadReply, ClientError> {
        let (status, payload) = self.round_trip_raw(&frame::encode_reload(seed, deadline_ms))?;
        Ok(if status == StatusCode::Ok {
            let bytes: [u8; 8] = payload.as_slice().try_into().map_err(|_| {
                ClientError::Frame(FrameError::WrongPayloadLen {
                    got: payload.len(),
                    want: 8,
                })
            })?;
            ReloadReply {
                status,
                epoch: Some(u64::from_le_bytes(bytes)),
                message: None,
            }
        } else {
            ReloadReply {
                status,
                epoch: None,
                message: Some(String::from_utf8_lossy(&payload).into_owned()),
            }
        })
    }

    /// Writes a pre-encoded request frame and reads back one response,
    /// returning the raw status and payload (a trace extension, if
    /// echoed, is consumed and discarded).
    fn round_trip_raw(&mut self, req: &[u8]) -> Result<(StatusCode, Vec<u8>), ClientError> {
        self.stream.write_all(req)?;
        self.stream.flush()?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let h = frame::parse_response_header(&header)?;
        debug_assert!(h.payload_len <= MAX_PAYLOAD_BYTES);
        if h.has_trace_id {
            let mut ext = [0u8; TRACE_ID_LEN];
            self.stream.read_exact(&mut ext)?;
        }
        let mut payload = vec![0u8; h.payload_len];
        self.stream.read_exact(&mut payload)?;
        Ok((h.status, payload))
    }

    fn round_trip(
        &mut self,
        kind: ReqKind,
        priority: Priority,
        deadline_ms: u32,
        trace_id: Option<u64>,
        image: &[f32],
    ) -> Result<Reply, ClientError> {
        let start = Instant::now();
        let req = frame::encode_request_traced(kind, priority, deadline_ms, trace_id, image);
        self.stream.write_all(&req)?;
        self.stream.flush()?;
        let mut header = [0u8; HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let h = frame::parse_response_header(&header)?;
        debug_assert!(h.payload_len <= MAX_PAYLOAD_BYTES);
        let echoed = if h.has_trace_id {
            let mut ext = [0u8; TRACE_ID_LEN];
            self.stream.read_exact(&mut ext)?;
            Some(frame::decode_trace_id(&ext))
        } else {
            None
        };
        let mut payload = vec![0u8; h.payload_len];
        self.stream.read_exact(&mut payload)?;
        let latency = start.elapsed();
        Ok(if h.status == StatusCode::Ok {
            if payload.len() != 4 {
                return Err(FrameError::WrongPayloadLen {
                    got: payload.len(),
                    want: 4,
                }
                .into());
            }
            Reply {
                status: h.status,
                class: Some(u32::from_le_bytes([
                    payload[0], payload[1], payload[2], payload[3],
                ])),
                message: None,
                trace_id: echoed,
                latency,
            }
        } else {
            Reply {
                status: h.status,
                class: None,
                message: Some(String::from_utf8_lossy(&payload).into_owned()),
                trace_id: echoed,
                latency,
            }
        })
    }
}

/// Aggregate outcome of a [`run_load`] sweep.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests that got any reply.
    pub sent: u64,
    /// OK replies.
    pub ok: u64,
    /// `ServerBusy` replies.
    pub busy: u64,
    /// `DeadlineExceeded` replies.
    pub deadline_expired: u64,
    /// `WorkerCrashed` replies.
    pub worker_crashed: u64,
    /// `Draining` replies.
    pub draining: u64,
    /// Other reply statuses (e.g. `BadRequest`).
    pub other: u64,
    /// Transport errors (connect refused, reset, timeout).
    pub transport_errors: u64,
    /// Latency of each OK reply, microseconds, unordered.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    fn absorb(&mut self, reply: &Reply) {
        self.sent += 1;
        match reply.status {
            StatusCode::Ok => {
                self.ok += 1;
                self.latencies_us
                    .push(reply.latency.as_micros().min(u128::from(u64::MAX)) as u64);
            }
            StatusCode::ServerBusy => self.busy += 1,
            StatusCode::DeadlineExceeded => self.deadline_expired += 1,
            StatusCode::WorkerCrashed => self.worker_crashed += 1,
            StatusCode::Draining => self.draining += 1,
            _ => self.other += 1,
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.busy += other.busy;
        self.deadline_expired += other.deadline_expired;
        self.worker_crashed += other.worker_crashed;
        self.draining += other.draining;
        self.other += other.other;
        self.transport_errors += other.transport_errors;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Drives `concurrency` persistent loopback connections at full tilt
/// for `duration`, all sending `image` with `deadline_ms`. Threads
/// reconnect after transport errors (counted), so a server drain in the
/// middle of the window is observed as `Draining`/error outcomes, never
/// as a hang.
pub fn run_load(
    addr: SocketAddr,
    image: &[f32],
    concurrency: usize,
    duration: Duration,
    deadline_ms: u32,
) -> LoadReport {
    let stop = AtomicBool::new(false);
    let total = Mutex::new(LoadReport::default());
    std::thread::scope(|s| {
        let stop = &stop;
        let total = &total;
        for _ in 0..concurrency.max(1) {
            s.spawn(move || {
                let mut local = LoadReport::default();
                let timeout = Duration::from_secs(5);
                let mut conn: Option<Connection> = None;
                while !stop.load(Ordering::SeqCst) {
                    let c = match conn.as_mut() {
                        Some(c) => c,
                        None => match Connection::connect(addr, timeout) {
                            Ok(c) => {
                                conn = Some(c);
                                // A fresh connection; the borrow restarts
                                // on the next loop turn.
                                continue;
                            }
                            Err(_) => {
                                local.transport_errors += 1;
                                std::thread::sleep(Duration::from_millis(20));
                                continue;
                            }
                        },
                    };
                    match c.classify(image, deadline_ms, Priority::High) {
                        Ok(reply) => local.absorb(&reply),
                        Err(_) => {
                            local.transport_errors += 1;
                            conn = None;
                        }
                    }
                }
                let mut t = total
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                t.merge(local);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::SeqCst);
    });
    total
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
