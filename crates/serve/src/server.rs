//! The serving loop: admission, connection handling, drain, report.
//!
//! One listener thread accepts connections and spawns a handler per
//! connection; handlers parse frames, apply admission control and the
//! load-shedding ladder, and park on a rendezvous channel while one of
//! the worker threads ([`crate::worker`]) executes the request as part
//! of a batch. Every wait in the building is bounded — socket reads and
//! writes carry timeouts, queue pops time out, response waits time out —
//! so a drain can never hang on a stuck peer.
//!
//! The degradation ladder (level is re-evaluated at every admission):
//!
//! | level | trigger               | effect                               |
//! |------:|-----------------------|--------------------------------------|
//! | 0     | queue below ½ capacity| normal batching                      |
//! | 1     | queue ≥ ½ capacity    | max batch shrinks to 1 (lower latency per request) |
//! | 2     | queue ≥ ¾ capacity    | low-priority requests rejected `ServerBusy` at admission |
//! | 3     | SIGINT / fatal error  | drain: stop accepting, finish in-flight, answer queued `Draining` |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mupod_nn::{KernelTier, Network};
use mupod_obs::FlightStage;
use mupod_runtime::{CancelToken, StatusCode};

use crate::admin;
use crate::frame::{self, FrameError, Priority, ReqKind, ShardState, HEADER_LEN, TRACE_ID_LEN};
use crate::queue::{BoundedQueue, PushError};
use crate::telemetry::Telemetry;
use crate::worker;

/// How often blocked loops (accept, idle connection reads, queue pops)
/// wake to re-check the drain flag.
pub(crate) const POLL: Duration = Duration::from_millis(50);
/// Once a frame's first byte arrives, the rest must follow within this
/// window or the connection is dropped with `BadRequest`.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Socket write timeout: a peer that stops reading cannot pin a handler.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Grace on top of a request's deadline for the worker's answer to
/// arrive before the handler gives up (covers batch execution time).
const RESPONSE_GRACE: Duration = Duration::from_secs(10);

/// Everything `mupod serve` needs to know.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral port).
    pub addr: String,
    /// Worker threads, each with its own batch arena.
    pub workers: usize,
    /// Bounded queue capacity — the admission-control limit.
    pub queue_depth: usize,
    /// Largest batch a worker gathers per forward pass.
    pub max_batch: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Worker panics tolerated before the server gives up and drains.
    pub restart_budget: u32,
    /// Honor `ChaosPanic` frames (fault injection for the chaos tests).
    pub chaos: bool,
    /// Test hook: sleep this long before executing each batch, making
    /// deadline-expiry and drain windows deterministic in tests.
    pub slow_batch: Option<Duration>,
    /// Bind address for the admin/scrape plane (`/metrics`, `/health`,
    /// `/flight`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Where worker panics and budget exhaustion seal the flight
    /// recorder; `None` disables automatic dumps.
    pub flight_out: Option<PathBuf>,
    /// Kernel tier the workers' batch arenas run on. `Exact` (default)
    /// keeps bit-exact inference; `Fast` dispatches to the SIMD/FMA
    /// microkernels (`mupod_tensor::fast`). Surfaces in the readiness
    /// line and the `mupod_serve_kernel_tier` gauge so chaos/soak logs
    /// record which tier was under test.
    pub kernel_tier: KernelTier,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 32,
            max_batch: 4,
            default_deadline: Duration::from_secs(1),
            restart_budget: 8,
            chaos: false,
            slow_batch: None,
            metrics_addr: None,
            flight_out: None,
            kernel_tier: KernelTier::default(),
        }
    }
}

/// The addresses a running server actually bound, delivered through
/// `on_ready` — with port 0 in the config this is the only way to
/// learn the real ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// The frame-protocol listener.
    pub addr: SocketAddr,
    /// The admin/scrape listener, when `metrics_addr` was set.
    pub metrics_addr: Option<SocketAddr>,
}

/// What happened over one serving run, computed at drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests answered `Ok` with a class.
    pub requests_ok: u64,
    /// Fast-rejected at admission (queue full or low-priority shed).
    pub rejected_busy: u64,
    /// Answered `Draining` (at admission or dequeued unexecuted).
    pub rejected_draining: u64,
    /// Low-priority requests shed by ladder level ≥ 2 (subset of
    /// `rejected_busy`).
    pub shed_low_priority: u64,
    /// Requests whose deadline expired before or during service.
    pub deadline_expired: u64,
    /// Malformed / truncated / oversized frames answered `BadRequest`.
    pub bad_frames: u64,
    /// Worker panics caught and answered `WorkerCrashed`.
    pub worker_crashes: u64,
    /// Peers that vanished mid-request or mid-response.
    pub client_disconnects: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests served through those batches.
    pub batched_requests: u64,
    /// Median OK-request latency, microseconds (0 if none).
    pub p50_latency_us: u64,
    /// 99th-percentile OK-request latency, microseconds (0 if none).
    pub p99_latency_us: u64,
}

/// Terminal serving failures (everything else degrades and continues).
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// Workers panicked more often than the restart budget allows;
    /// the server drained rather than thrash.
    RestartBudgetExhausted {
        /// Panics observed.
        crashes: u32,
        /// The configured budget.
        budget: u32,
        /// What the server did before giving up — filled in by
        /// [`run`] at drain so callers can still print a summary.
        report: Box<ServeReport>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::RestartBudgetExhausted {
                crashes, budget, ..
            } => write!(
                f,
                "worker restart budget exhausted ({crashes} crashes > budget {budget}); drained"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::RestartBudgetExhausted { .. } => None,
        }
    }
}

/// One admitted request travelling from handler to worker.
pub(crate) struct Job {
    /// Requested operation.
    pub(crate) kind: ReqKind,
    /// Raw image data (empty for chaos frames).
    pub(crate) image: Vec<f32>,
    /// When the request must be answered by.
    pub(crate) deadline: Instant,
    /// When the handler admitted it (latency base).
    pub(crate) accepted: Instant,
    /// Wire trace ID (0 = untraced), stamped on flight events.
    pub(crate) trace_id: u64,
    /// Rendezvous back to the waiting handler.
    pub(crate) resp: mpsc::SyncSender<(StatusCode, Vec<u8>)>,
}

/// Saturating counters backing the [`ServeReport`]; kept as plain
/// atomics (not only obs counters) so the report works even without an
/// installed recorder.
#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) requests_ok: AtomicU64,
    pub(crate) rejected_busy: AtomicU64,
    pub(crate) rejected_draining: AtomicU64,
    pub(crate) shed_low_priority: AtomicU64,
    pub(crate) deadline_expired: AtomicU64,
    pub(crate) bad_frames: AtomicU64,
    pub(crate) worker_crashes: AtomicU64,
    pub(crate) client_disconnects: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
}

/// Rebuilds a freshly calibrated [`Network`] from a reload seed; the
/// CLI injects one that re-runs model build + head calibration. `None`
/// makes the server answer reload requests `BadRequest`.
pub type Reloader = dyn Fn(u64) -> Result<Network, String> + Sync;

/// State shared by the listener, every handler and every worker.
pub(crate) struct Shared {
    pub(crate) queue: BoundedQueue<Job>,
    /// The served network. Workers hold an [`Arc`] clone and re-check
    /// [`Self::net_epoch`] between batches, so a reload swap never
    /// blocks the hot path on this mutex.
    pub(crate) net: Mutex<Arc<Network>>,
    /// Bumped once per successful hot reload; workers rebuild their
    /// arenas when it moves.
    pub(crate) net_epoch: AtomicU64,
    /// A reload build is in progress (health pings report `Reloading`).
    pub(crate) reloading: AtomicBool,
    /// Serializes concurrent reload requests without holding
    /// [`Self::net`] across the (slow) rebuild.
    reload_gate: Mutex<()>,
    /// Level-3 flag: set by SIGINT or a fatal worker error.
    pub(crate) draining: AtomicBool,
    /// Current ladder level (0–2; 3 is `draining`).
    pub(crate) degrade: AtomicU8,
    /// Worker panics so far (restart budget bookkeeping).
    pub(crate) crashes: AtomicU32,
    /// First terminal error wins; returned from [`run`].
    pub(crate) fatal: Mutex<Option<ServeError>>,
    /// OK-request latencies in microseconds (percentiles at drain).
    pub(crate) latencies_us: Mutex<Vec<u64>>,
    pub(crate) stats: Stats,
    /// Live instruments for the scrape endpoint and flight recorder.
    pub(crate) telemetry: Telemetry,
}

impl Shared {
    fn new(net: Network, cfg: &ServeConfig) -> Self {
        Self {
            queue: BoundedQueue::new(cfg.queue_depth.max(1)),
            net: Mutex::new(Arc::new(net)),
            net_epoch: AtomicU64::new(0),
            reloading: AtomicBool::new(false),
            reload_gate: Mutex::new(()),
            draining: AtomicBool::new(false),
            degrade: AtomicU8::new(0),
            crashes: AtomicU32::new(0),
            fatal: Mutex::new(None),
            latencies_us: Mutex::new(Vec::new()),
            stats: Stats::default(),
            telemetry: Telemetry::new(),
        }
    }

    /// The currently served network (cheap Arc clone).
    pub(crate) fn current_net(&self) -> Arc<Network> {
        self.net
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// What a health ping should report right now.
    pub(crate) fn shard_state(&self) -> ShardState {
        if self.is_draining() {
            ShardState::Draining
        } else if self.reloading.load(Ordering::SeqCst) {
            ShardState::Reloading
        } else if self.degrade.load(Ordering::SeqCst) > 0 {
            ShardState::Degraded
        } else {
            ShardState::Ok
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Enters ladder level 3: no new admissions, queued work is answered
    /// `Draining`, workers exit once the queue is dry.
    pub(crate) fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            mupod_obs::event(
                mupod_obs::Level::Info,
                "serve.drain_begin",
                &[("queued", &self.queue.len().to_string())],
            );
        }
        self.queue.close();
    }

    pub(crate) fn record_latency(&self, accepted: Instant) {
        let us = accepted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        mupod_obs::histogram_record("serve.latency_us", us as f64);
        self.telemetry.latency_us.record(us);
        self.latencies_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(us);
    }
}

/// Sends a job's response back to its handler; the handler may already
/// have timed out and gone, which is fine — the send just fizzles.
pub(crate) fn respond_job(job: &Job, status: StatusCode, payload: Vec<u8>) {
    let _ = job.resp.send((status, payload));
}

/// Sorts `latencies_us` in place and returns `(p50, p99)` in
/// microseconds — `(0, 0)` for an empty slice. Shared with the
/// sustained-load bench so `BENCH_serve.json` uses the same definition.
pub fn percentiles_us(latencies_us: &mut [u64]) -> (u64, u64) {
    if latencies_us.is_empty() {
        return (0, 0);
    }
    latencies_us.sort_unstable();
    let n = latencies_us.len();
    let p50 = latencies_us[n / 2];
    let p99 = latencies_us[(n * 99 / 100).min(n - 1)];
    (p50, p99)
}

/// Runs the server until `token` cancels (graceful drain → `Ok`) or a
/// terminal error occurs.
///
/// `on_ready` fires once with the bound addresses — with port 0 in the
/// config this is the only way to learn the real ports, and tests use
/// it to synchronize.
///
/// # Errors
///
/// [`ServeError::Bind`] if either listener cannot bind;
/// [`ServeError::RestartBudgetExhausted`] if workers panic more often
/// than `cfg.restart_budget` tolerates (the server drains first, so
/// in-flight clients still get answers).
pub fn run(
    net: &Network,
    cfg: &ServeConfig,
    token: &CancelToken,
    on_ready: impl FnOnce(Bound),
) -> Result<ServeReport, ServeError> {
    run_reloadable(net.clone(), cfg, token, None, on_ready)
}

/// [`run`], plus hot model reload: when `reloader` is `Some`, a
/// `Reload` frame rebuilds the network from the carried seed on the
/// requesting connection's thread and swaps it in atomically. Workers
/// pick the new network up at their next batch boundary; requests
/// already queued or in flight finish on whichever network they
/// dequeued with, so zero accepted requests are dropped.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_reloadable(
    net: Network,
    cfg: &ServeConfig,
    token: &CancelToken,
    reloader: Option<&Reloader>,
    on_ready: impl FnOnce(Bound),
) -> Result<ServeReport, ServeError> {
    let bind = |addr: &str| -> Result<(TcpListener, SocketAddr), ServeError> {
        let to_err = |source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        };
        let listener = TcpListener::bind(addr).map_err(to_err)?;
        let local = listener.local_addr().map_err(to_err)?;
        listener.set_nonblocking(true).map_err(to_err)?;
        Ok((listener, local))
    };
    let (listener, local) = bind(&cfg.addr)?;
    let metrics = cfg.metrics_addr.as_deref().map(bind).transpose()?;
    mupod_obs::event(
        mupod_obs::Level::Info,
        "serve.listening",
        &[
            ("addr", &local.to_string()),
            ("workers", &cfg.workers.to_string()),
            ("queue_depth", &cfg.queue_depth.to_string()),
            ("max_batch", &cfg.max_batch.to_string()),
        ],
    );
    let shared = Shared::new(net, cfg);
    on_ready(Bound {
        addr: local,
        metrics_addr: metrics.as_ref().map(|(_, a)| *a),
    });
    std::thread::scope(|s| {
        let shared = &shared;
        for idx in 0..cfg.workers.max(1) {
            s.spawn(move || worker::worker_loop(idx, cfg, shared));
        }
        if let Some((metrics_listener, _)) = metrics {
            s.spawn(move || admin::admin_loop(&metrics_listener, cfg, shared));
        }
        loop {
            if token.is_cancelled() || shared.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    mupod_obs::counter_add("serve.connections", 1);
                    s.spawn(move || handle_conn(stream, cfg, shared, reloader));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) => {
                    mupod_obs::event(
                        mupod_obs::Level::Warn,
                        "serve.accept_error",
                        &[("error", &e.to_string())],
                    );
                    std::thread::sleep(POLL);
                }
            }
        }
        shared.begin_drain();
        // The scope joins every worker and handler before returning:
        // workers exit when the closed queue runs dry, handlers when
        // their bounded reads/waits observe the drain flag.
    });
    let mut lat = shared
        .latencies_us
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let (p50, p99) = percentiles_us(&mut lat);
    drop(lat);
    let st = &shared.stats;
    let report = ServeReport {
        requests_ok: st.requests_ok.load(Ordering::SeqCst),
        rejected_busy: st.rejected_busy.load(Ordering::SeqCst),
        rejected_draining: st.rejected_draining.load(Ordering::SeqCst),
        shed_low_priority: st.shed_low_priority.load(Ordering::SeqCst),
        deadline_expired: st.deadline_expired.load(Ordering::SeqCst),
        bad_frames: st.bad_frames.load(Ordering::SeqCst),
        worker_crashes: st.worker_crashes.load(Ordering::SeqCst),
        client_disconnects: st.client_disconnects.load(Ordering::SeqCst),
        batches: st.batches.load(Ordering::SeqCst),
        batched_requests: st.batched_requests.load(Ordering::SeqCst),
        p50_latency_us: p50,
        p99_latency_us: p99,
    };
    mupod_obs::event(
        mupod_obs::Level::Info,
        "serve.drained",
        &[
            ("requests_ok", &report.requests_ok.to_string()),
            ("worker_crashes", &report.worker_crashes.to_string()),
        ],
    );
    let fatal = shared
        .fatal
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(mut e) = fatal {
        // The drain still happened; attach what it measured so callers
        // can summarize even on the error path.
        if let ServeError::RestartBudgetExhausted { report: r, .. } = &mut e {
            **r = report;
        }
        return Err(e);
    }
    Ok(report)
}

/// The ladder level the current queue depth maps to (0–2).
fn ladder_level(queue_len: usize, capacity: usize) -> u8 {
    if queue_len * 4 >= capacity * 3 {
        2
    } else if queue_len * 2 >= capacity {
        1
    } else {
        0
    }
}

/// Per-connection loop: poll for a frame, serve it, repeat until the
/// peer leaves, the frame stream goes bad, or the server drains.
/// Input dims are a reload invariant (a dims-changing reload is
/// rejected), so the expected element count is computed once.
fn handle_conn(
    mut stream: TcpStream,
    cfg: &ServeConfig,
    shared: &Shared,
    reloader: Option<&Reloader>,
) {
    let expected_elems: usize = shared.current_net().input_dims().iter().product();
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut first = [0u8; 1];
    loop {
        if shared.is_draining() {
            break;
        }
        match stream.read(&mut first) {
            Ok(0) => break,
            Ok(_) => {
                if !serve_one(&mut stream, first[0], expected_elems, cfg, shared, reloader) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                shared
                    .stats
                    .client_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                mupod_obs::counter_add("serve.client_disconnects", 1);
                break;
            }
        }
    }
}

/// Reads exactly `buf` from a stream whose read timeout slices the
/// wait, giving up at `deadline`. `false` means truncated/disconnected.
fn read_remaining(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Writes a response frame, echoing the request's trace ID when
/// nonzero; `false` means the peer vanished.
fn write_response(
    stream: &mut TcpStream,
    shared: &Shared,
    status: StatusCode,
    trace_id: u64,
    payload: &[u8],
) -> bool {
    let frame = frame::encode_response_traced(status, Some(trace_id), payload);
    match stream.write_all(&frame).and_then(|()| stream.flush()) {
        Ok(()) => true,
        Err(e) => {
            shared
                .stats
                .client_disconnects
                .fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.client_disconnects", 1);
            mupod_obs::event(
                mupod_obs::Level::Warn,
                "serve.client_disconnect",
                &[("during", "response write"), ("error", &e.to_string())],
            );
            false
        }
    }
}

/// Answers a frame error with `BadRequest`; the connection then closes
/// (a malformed binary stream cannot be re-synchronized).
fn reject_bad_frame(stream: &mut TcpStream, shared: &Shared, err: &FrameError) -> bool {
    shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
    mupod_obs::counter_add("serve.bad_frames", 1);
    mupod_obs::event(
        mupod_obs::Level::Warn,
        "serve.bad_frame",
        &[("error", &err.to_string())],
    );
    write_response(
        stream,
        shared,
        StatusCode::BadRequest,
        0,
        err.to_string().as_bytes(),
    );
    false
}

/// Serves one request whose first header byte has already arrived.
/// Returns whether the connection should stay open.
fn serve_one(
    stream: &mut TcpStream,
    first: u8,
    expected_elems: usize,
    cfg: &ServeConfig,
    shared: &Shared,
    reloader: Option<&Reloader>,
) -> bool {
    let frame_deadline = Instant::now() + FRAME_READ_TIMEOUT;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    if !read_remaining(stream, &mut header[1..], frame_deadline) {
        return reject_bad_frame(stream, shared, &FrameError::Truncated);
    }
    let h = match frame::parse_request_header(&header) {
        Ok(h) => h,
        Err(e) => return reject_bad_frame(stream, shared, &e),
    };
    let trace_id = if h.has_trace_id {
        let mut ext = [0u8; TRACE_ID_LEN];
        if !read_remaining(stream, &mut ext, frame_deadline) {
            return reject_bad_frame(stream, shared, &FrameError::Truncated);
        }
        frame::decode_trace_id(&ext)
    } else {
        0
    };
    let mut payload = vec![0u8; h.payload_len];
    if !read_remaining(stream, &mut payload, frame_deadline) {
        return reject_bad_frame(stream, shared, &FrameError::Truncated);
    }
    match h.kind {
        ReqKind::Classify => {
            let want = expected_elems * 4;
            if h.payload_len != want {
                return reject_bad_frame(
                    stream,
                    shared,
                    &FrameError::WrongPayloadLen {
                        got: h.payload_len,
                        want,
                    },
                );
            }
        }
        ReqKind::ChaosPanic => {
            if !cfg.chaos {
                return reject_bad_frame(stream, shared, &FrameError::BadKind(2));
            }
        }
        // Control ops are answered inline on the handler thread — they
        // never enter the queue, so they work even under full-queue
        // pressure and (for pings) report the drain honestly.
        ReqKind::HealthPing => {
            let state = shared.shard_state();
            return write_response(stream, shared, StatusCode::Ok, trace_id, &[state.wire()]);
        }
        ReqKind::Reload => {
            if h.payload_len != 8 {
                return reject_bad_frame(
                    stream,
                    shared,
                    &FrameError::WrongPayloadLen {
                        got: h.payload_len,
                        want: 8,
                    },
                );
            }
            let Some(seed) = frame::decode_reload_seed(&payload) else {
                return reject_bad_frame(stream, shared, &FrameError::Truncated);
            };
            let (status, body) = do_reload(seed, shared, reloader);
            return write_response(stream, shared, status, trace_id, &body);
        }
    }
    if shared.is_draining() {
        shared
            .stats
            .rejected_draining
            .fetch_add(1, Ordering::Relaxed);
        mupod_obs::counter_add("serve.rejected_draining", 1);
        shared.telemetry.flight.record(
            trace_id,
            FlightStage::Shed,
            -1,
            StatusCode::Draining.wire(),
        );
        write_response(
            stream,
            shared,
            StatusCode::Draining,
            trace_id,
            b"server draining; not accepting work",
        );
        return false;
    }
    // Re-evaluate the degradation ladder at every admission.
    let depth = shared.queue.len();
    mupod_obs::histogram_record("serve.queue_depth", depth as f64);
    shared.telemetry.queue_depth.record(depth as u64);
    let level = ladder_level(depth, shared.queue.capacity());
    let prev = shared.degrade.swap(level, Ordering::SeqCst);
    if level != prev {
        mupod_obs::event(
            mupod_obs::Level::Warn,
            "serve.degrade_level",
            &[
                ("from", &prev.to_string()),
                ("to", &level.to_string()),
                ("queue_depth", &depth.to_string()),
            ],
        );
    }
    if level >= 2 && h.priority == Priority::Low {
        shared
            .stats
            .shed_low_priority
            .fetch_add(1, Ordering::Relaxed);
        shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
        mupod_obs::counter_add("serve.shed_low_priority", 1);
        shared.telemetry.flight.record(
            trace_id,
            FlightStage::Shed,
            -1,
            StatusCode::ServerBusy.wire(),
        );
        return write_response(
            stream,
            shared,
            StatusCode::ServerBusy,
            trace_id,
            b"shedding low-priority traffic",
        );
    }
    let accepted = Instant::now();
    let deadline = accepted
        + if h.deadline_ms == 0 {
            cfg.default_deadline
        } else {
            Duration::from_millis(u64::from(h.deadline_ms))
        };
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        kind: h.kind,
        image: frame::decode_image(&payload),
        deadline,
        accepted,
        trace_id,
        resp: tx,
    };
    // Recorded before the push: once the job is in the queue a worker
    // may dequeue it instantly, and admit must order before dequeue in
    // the flight ring. A failed push follows up with a shed event.
    shared
        .telemetry
        .flight
        .record(trace_id, FlightStage::Admit, -1, 0);
    match shared.queue.try_push(job, h.priority) {
        Ok(()) => {}
        Err((PushError::Full, _)) => {
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.rejected_busy", 1);
            shared.telemetry.flight.record(
                trace_id,
                FlightStage::Shed,
                -1,
                StatusCode::ServerBusy.wire(),
            );
            return write_response(
                stream,
                shared,
                StatusCode::ServerBusy,
                trace_id,
                b"request queue full",
            );
        }
        Err((PushError::Closed, _)) => {
            shared
                .stats
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.rejected_draining", 1);
            shared.telemetry.flight.record(
                trace_id,
                FlightStage::Shed,
                -1,
                StatusCode::Draining.wire(),
            );
            write_response(
                stream,
                shared,
                StatusCode::Draining,
                trace_id,
                b"server draining; not accepting work",
            );
            return false;
        }
    }
    shared.telemetry.in_flight.add(1);
    let wait = deadline.saturating_duration_since(Instant::now())
        + RESPONSE_GRACE
        + cfg.slow_batch.unwrap_or(Duration::ZERO);
    let outcome = rx.recv_timeout(wait);
    shared.telemetry.in_flight.sub(1);
    let (status, body): (StatusCode, Vec<u8>) = match outcome {
        Ok((status, body)) => (status, body),
        Err(RecvTimeoutError::Timeout) => {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.deadline_expired", 1);
            (
                StatusCode::DeadlineExceeded,
                b"no worker answered in time".to_vec(),
            )
        }
        Err(RecvTimeoutError::Disconnected) => (
            StatusCode::WorkerCrashed,
            b"worker dropped the request".to_vec(),
        ),
    };
    shared
        .telemetry
        .flight
        .record(trace_id, FlightStage::Reply, -1, status.wire());
    write_response(stream, shared, status, trace_id, &body)
}

/// The drain-and-swap reload handshake: rebuild from the seed (slow,
/// on the requesting connection's thread, gate held so concurrent
/// reloads serialize), verify the input dims are unchanged, then swap
/// the [`Arc`] and bump the epoch. The OK payload is the new epoch as
/// 8 LE bytes; every failure is `BadRequest` with a diagnostic and the
/// old network stays in service untouched.
fn do_reload(seed: u64, shared: &Shared, reloader: Option<&Reloader>) -> (StatusCode, Vec<u8>) {
    let Some(reloader) = reloader else {
        return (
            StatusCode::BadRequest,
            b"reload not supported by this server".to_vec(),
        );
    };
    let _gate = shared
        .reload_gate
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    shared.reloading.store(true, Ordering::SeqCst);
    mupod_obs::event(
        mupod_obs::Level::Info,
        "serve.reload_begin",
        &[("seed", &seed.to_string())],
    );
    let outcome = match reloader(seed) {
        Ok(new_net) => {
            let old_dims = shared.current_net().input_dims().to_vec();
            if new_net.input_dims() != old_dims.as_slice() {
                (
                    StatusCode::BadRequest,
                    format!(
                        "reload changed input dims {:?} -> {:?}; rejected",
                        old_dims,
                        new_net.input_dims()
                    )
                    .into_bytes(),
                )
            } else {
                *shared.net.lock().unwrap_or_else(PoisonError::into_inner) = Arc::new(new_net);
                // ordering: epoch publication, not a tally — workers
                // poll this with SeqCst loads to notice a reload
                // between batches; keep the RMW SeqCst so the bump is
                // never observed before the net swap above.
                let epoch = shared
                    .net_epoch
                    .fetch_add(1, Ordering::SeqCst)
                    .wrapping_add(1);
                mupod_obs::event(
                    mupod_obs::Level::Info,
                    "serve.reloaded",
                    &[("seed", &seed.to_string()), ("epoch", &epoch.to_string())],
                );
                (StatusCode::Ok, epoch.to_le_bytes().to_vec())
            }
        }
        Err(msg) => (
            StatusCode::BadRequest,
            format!("reload failed: {msg}").into_bytes(),
        ),
    };
    if outcome.0 != StatusCode::Ok {
        mupod_obs::event(
            mupod_obs::Level::Warn,
            "serve.reload_rejected",
            &[("seed", &seed.to_string())],
        );
    }
    shared.reloading.store(false, Ordering::SeqCst);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_levels_follow_queue_pressure() {
        // Capacity 8: level 1 at 4 queued, level 2 at 6.
        assert_eq!(ladder_level(0, 8), 0);
        assert_eq!(ladder_level(3, 8), 0);
        assert_eq!(ladder_level(4, 8), 1);
        assert_eq!(ladder_level(5, 8), 1);
        assert_eq!(ladder_level(6, 8), 2);
        assert_eq!(ladder_level(8, 8), 2);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(percentiles_us(&mut empty), (0, 0));
        let mut one = vec![42];
        assert_eq!(percentiles_us(&mut one), (42, 42));
        let mut v: Vec<u64> = (1..=100).rev().collect();
        let (p50, p99) = percentiles_us(&mut v);
        assert_eq!(p50, 51);
        assert_eq!(p99, 100);
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let net = crate::test_util::tiny_net();
        let cfg = ServeConfig {
            addr: "256.256.256.256:1".to_string(),
            ..ServeConfig::default()
        };
        let token = CancelToken::new();
        let err = run(&net, &cfg, &token, |_| {}).unwrap_err();
        assert!(matches!(err, ServeError::Bind { .. }));
        assert!(err.to_string().contains("cannot bind"));
    }
}
