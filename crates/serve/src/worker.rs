//! Worker threads: batch collection, execution, panic isolation,
//! supervised restart with a counter-backed budget.
//!
//! Each worker owns a [`BatchArena`] and loops on the shared queue:
//! take one job (bounded wait), top the batch up to the *effective* max
//! batch (the degradation ladder shrinks it to 1 under pressure),
//! answer already-expired jobs `DeadlineExceeded` without executing
//! them, then run one batched forward under `catch_unwind`.
//!
//! A panic — real or injected by a `ChaosPanic` frame — is isolated to
//! the batch that hit it: every job in it is answered `WorkerCrashed`,
//! the arena is discarded and rebuilt (a half-written arena never
//! serves again), and the worker restarts after a deterministic
//! backoff from [`RetryPolicy`]'s seed-stable jitter stream. Each crash
//! spends one unit of the shared restart budget; exhausting it flips
//! the server into drain with
//! [`ServeError::RestartBudgetExhausted`](crate::ServeError).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use mupod_nn::{BatchArena, Network};
use mupod_obs::FlightStage;
use mupod_runtime::{RetryPolicy, StatusCode};
use mupod_tensor::Tensor;

use crate::frame::ReqKind;
use crate::queue::Pop;
use crate::server::{respond_job, Job, ServeConfig, ServeError, Shared, POLL};
use crate::telemetry;

/// Backoff between a worker crash and its restart: fast first retry,
/// capped well under a request deadline, deterministic per worker so
/// the chaos tests replay schedules exactly.
fn restart_policy(worker: usize) -> RetryPolicy {
    RetryPolicy {
        max_attempts: u32::MAX,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(250),
        jitter_seed: 0x5EED ^ (worker as u64),
    }
}

/// The batch size the ladder currently allows.
fn effective_max_batch(cfg: &ServeConfig, shared: &Shared) -> usize {
    if shared.degrade.load(Ordering::SeqCst) >= 1 {
        1
    } else {
        cfg.max_batch.max(1)
    }
}

/// One worker thread's whole life: runs until the queue closes and
/// drains dry. The served network is re-checked at every batch
/// boundary: when a hot reload bumps the epoch, the worker picks up
/// the new `Arc<Network>` and rebuilds its arena before the next
/// batch — jobs already collected ran on the old network, which stays
/// alive through the `Arc` until the last holder drops it.
pub(crate) fn worker_loop(idx: usize, cfg: &ServeConfig, shared: &Shared) {
    let mut epoch = shared.net_epoch.load(Ordering::SeqCst);
    let mut net: Arc<Network> = shared.current_net();
    let mut arena = BatchArena::for_network_tier(&net, cfg.max_batch.max(1), cfg.kernel_tier);
    let policy = restart_policy(idx);
    loop {
        let now_epoch = shared.net_epoch.load(Ordering::SeqCst);
        if now_epoch != epoch {
            epoch = now_epoch;
            net = shared.current_net();
            arena = BatchArena::for_network_tier(&net, cfg.max_batch.max(1), cfg.kernel_tier);
            mupod_obs::event(
                mupod_obs::Level::Info,
                "serve.worker_reloaded",
                &[("worker", &idx.to_string()), ("epoch", &epoch.to_string())],
            );
        }
        let job = match shared.queue.pop_timeout(POLL) {
            Pop::Closed => break,
            Pop::Empty => continue,
            Pop::Item(job) => job,
        };
        let mut batch = vec![job];
        let limit = effective_max_batch(cfg, shared);
        while batch.len() < limit {
            match shared.queue.try_pop() {
                Some(j) => batch.push(j),
                None => break,
            }
        }
        for job in &batch {
            shared
                .telemetry
                .flight
                .record(job.trace_id, FlightStage::Dequeue, idx as i64, 0);
        }
        process_batch(idx, &net, cfg, shared, &mut arena, batch, &policy);
    }
}

/// Executes one collected batch, answering every job exactly once.
fn process_batch(
    idx: usize,
    net: &Network,
    cfg: &ServeConfig,
    shared: &Shared,
    arena: &mut BatchArena,
    batch: Vec<Job>,
    policy: &RetryPolicy,
) {
    // Drain observed between dequeue and execution: answer `Draining`
    // without running anything (queued-but-unstarted requests are never
    // executed once cancellation lands).
    if shared.is_draining() {
        for job in &batch {
            shared
                .stats
                .rejected_draining
                .fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.rejected_draining", 1);
            respond_job(job, StatusCode::Draining, b"server draining".to_vec());
        }
        return;
    }
    // Expired-in-queue requests are answered, never executed.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if now >= job.deadline {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.deadline_expired", 1);
            respond_job(
                &job,
                StatusCode::DeadlineExceeded,
                b"deadline expired while queued".to_vec(),
            );
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .batched_requests
        .fetch_add(live.len() as u64, Ordering::Relaxed);
    mupod_obs::counter_add("serve.batches", 1);
    mupod_obs::histogram_record("serve.batch_size", live.len() as f64);
    shared.telemetry.batch_fill.record(live.len() as u64);
    for job in &live {
        shared
            .telemetry
            .flight
            .record(job.trace_id, FlightStage::Exec, idx as i64, 0);
    }
    let chaos = live.iter().any(|j| j.kind == ReqKind::ChaosPanic);
    let images: Vec<Tensor> = live
        .iter_mut()
        .filter(|j| j.kind == ReqKind::Classify)
        .map(|j| Tensor::from_vec(net.input_dims(), std::mem::take(&mut j.image)))
        .collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(d) = cfg.slow_batch {
            std::thread::sleep(d);
        }
        if chaos {
            // lint:allow(no-panic-path) reason=deliberate fault injection behind the --chaos flag; the recovery path around this panic is what the chaos tests exercise
            panic!("injected chaos fault");
        }
        if images.is_empty() {
            Vec::new()
        } else {
            net.classify_batch_arena(&images, arena)
        }
    }));
    match outcome {
        Ok(classes) => {
            let done = Instant::now();
            // Without chaos every live job is a classify job, in the
            // same order the images were gathered.
            for (job, class) in live.iter().zip(classes) {
                if done >= job.deadline {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    mupod_obs::counter_add("serve.deadline_expired", 1);
                    respond_job(
                        job,
                        StatusCode::DeadlineExceeded,
                        b"deadline expired during execution".to_vec(),
                    );
                } else {
                    shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
                    mupod_obs::counter_add("serve.requests_ok", 1);
                    shared.record_latency(job.accepted);
                    respond_job(job, StatusCode::Ok, (class as u32).to_le_bytes().to_vec());
                }
            }
        }
        Err(_) => {
            shared.stats.worker_crashes.fetch_add(1, Ordering::Relaxed);
            mupod_obs::counter_add("serve.worker_crashes", 1);
            for job in &live {
                shared
                    .telemetry
                    .flight
                    .record(job.trace_id, FlightStage::Crash, idx as i64, 0);
                respond_job(
                    job,
                    StatusCode::WorkerCrashed,
                    b"worker panicked serving this batch; restarted".to_vec(),
                );
            }
            // Seal the ring's final moments while they are still final:
            // the panic is the event a post-mortem will ask about.
            telemetry::dump_flight(cfg, shared);
            // ordering: Relaxed — the RMW is still atomic, so every
            // crash draws a unique count against the restart budget.
            let crashes = shared.crashes.fetch_add(1, Ordering::Relaxed) + 1;
            if crashes > cfg.restart_budget {
                mupod_obs::event(
                    mupod_obs::Level::Error,
                    "serve.restart_budget_exhausted",
                    &[
                        ("crashes", &crashes.to_string()),
                        ("budget", &cfg.restart_budget.to_string()),
                    ],
                );
                let mut fatal = shared.fatal.lock().unwrap_or_else(PoisonError::into_inner);
                if fatal.is_none() {
                    *fatal = Some(ServeError::RestartBudgetExhausted {
                        crashes,
                        budget: cfg.restart_budget,
                        // run() fills this in once the drain completes.
                        report: Box::default(),
                    });
                }
                drop(fatal);
                shared.begin_drain();
                return;
            }
            // Poison isolation: the old arena may hold half-written
            // activations — rebuild from scratch before serving again.
            *arena = BatchArena::for_network_tier(net, cfg.max_batch.max(1), cfg.kernel_tier);
            let backoff = policy.delay_for(crashes);
            mupod_obs::counter_add("serve.worker_restarts", 1);
            mupod_obs::event(
                mupod_obs::Level::Warn,
                "serve.worker_restarted",
                &[
                    ("crashes", &crashes.to_string()),
                    ("backoff_ms", &backoff.as_millis().to_string()),
                ],
            );
            std::thread::sleep(backoff);
        }
    }
}
