//! Per-shard pool of idle persistent connections.
//!
//! The router keeps the TCP connections it used successfully and
//! reuses them for later requests, so steady-state forwarding costs no
//! handshake. The pool is deliberately dumb: a bounded LIFO stack of
//! streams (most recently used first — the one least likely to have
//! been idled out by the shard). A connection that sees any error is
//! dropped, never pooled; a pooled connection that turns out dead
//! surfaces as an ordinary attempt failure and the retry machinery
//! handles it.

use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};

/// Idle connections kept per shard; beyond this, extras just close.
const MAX_IDLE: usize = 8;

/// The bounded LIFO connection pool (see module docs).
pub(crate) struct ConnPool {
    idle: Mutex<Vec<TcpStream>>,
}

impl ConnPool {
    pub(crate) fn new() -> Self {
        ConnPool {
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Takes the most recently returned idle connection, if any.
    pub(crate) fn take(&self) -> Option<TcpStream> {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
    }

    /// Returns a healthy connection for reuse; drops it instead when
    /// the pool is full.
    pub(crate) fn put(&self, stream: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < MAX_IDLE {
            idle.push(stream);
        }
    }

    /// Drops every idle connection (used when a shard goes unhealthy,
    /// so recovery starts from fresh handshakes).
    pub(crate) fn clear(&self) {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Idle connections currently pooled.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server_side = listener.accept().unwrap();
        client
    }

    #[test]
    fn pool_is_lifo_and_bounded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = ConnPool::new();
        assert!(pool.take().is_none());
        for _ in 0..MAX_IDLE + 3 {
            pool.put(pair(&listener));
        }
        assert_eq!(pool.len(), MAX_IDLE, "extras beyond the cap are dropped");
        let mut drained = 0;
        while pool.take().is_some() {
            drained += 1;
        }
        assert_eq!(drained, MAX_IDLE);
        pool.put(pair(&listener));
        pool.clear();
        assert_eq!(pool.len(), 0);
    }
}
