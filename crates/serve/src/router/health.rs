//! Active health checking: the router pings every shard on a fixed
//! cadence and feeds the results to the breakers.
//!
//! Each tick opens a short-lived connection per shard and sends a
//! health-ping frame (answered inline by the shard, never queued, so a
//! full queue does not fail the probe). A reachable shard reports a
//! [`ShardState`](crate::frame::ShardState) — `Draining`/`Reloading`
//! steer the routing decision without touching the breaker — while an
//! unreachable one counts a breaker failure. The ping is also the
//! **half-open probe**: once an open breaker's cooldown lapses, the
//! next successful ping closes it, so a recovered shard rejoins the
//! rotation without risking a client request.

use std::time::Duration;

use crate::client::Connection;
use crate::router::breaker::Transition;
use crate::router::RouterShared;
use crate::server::POLL;

/// Per-ping connect/read budget; kept short so one dead shard cannot
/// stretch the tick far past the configured interval.
const PING_TIMEOUT: Duration = Duration::from_millis(500);

/// The health loop: ping every shard, sleep the interval, repeat until
/// the router drains.
pub(crate) fn health_loop(shared: &RouterShared) {
    while !shared.is_draining() {
        for idx in 0..shared.shards.len() {
            check_shard(shared, idx);
        }
        // Sleep in POLL slices so a drain lands promptly.
        let mut left = shared.cfg.health_interval;
        while left > Duration::ZERO && !shared.is_draining() {
            let step = left.min(POLL);
            std::thread::sleep(step);
            left -= step;
        }
    }
}

/// One shard's health check (see module docs).
fn check_shard(shared: &RouterShared, idx: usize) {
    let shard = &shared.shards[idx];
    // Observing the state promotes open → half-open once the cooldown
    // has lapsed, making this ping the probe.
    let _ = shard.breaker.state();
    let outcome = Connection::connect(shard.addr, PING_TIMEOUT).and_then(|mut c| c.ping());
    match outcome {
        Ok(state) => {
            shard.set_state(state.wire());
            if shard.breaker.on_success() == Transition::Closed {
                shared.stats.note_breaker_closed();
                mupod_obs::event(
                    mupod_obs::Level::Info,
                    "route.breaker_closed",
                    &[("shard", &shard.addr.to_string())],
                );
            }
        }
        Err(e) => {
            shard.set_unreachable();
            // Dead shard: its pooled connections are dead too.
            shard.pool.clear();
            if shard.breaker.on_failure() == Transition::Opened {
                shared.stats.note_breaker_opened();
                mupod_obs::event(
                    mupod_obs::Level::Warn,
                    "route.breaker_opened",
                    &[
                        ("shard", &shard.addr.to_string()),
                        ("error", &e.to_string()),
                    ],
                );
            }
        }
    }
}
