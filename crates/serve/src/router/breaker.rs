//! Per-shard circuit breaker: closed → open → half-open → closed.
//!
//! The breaker counts *consecutive* failures (connect errors, relay
//! I/O errors, failed health pings). At `threshold` it opens: the
//! shard takes no client traffic. After a jittered cooldown — the
//! deterministic [`RetryPolicy`] backoff stream, so chaos tests replay
//! schedules exactly — the breaker moves to half-open, where the next
//! health ping is the probe: success closes the breaker, failure
//! re-opens it with a longer cooldown. Client requests are never spent
//! as probes; the active health checker does that job, so a recovering
//! shard rejoins the rotation without risking a real request.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use mupod_runtime::RetryPolicy;

/// Where the breaker is in its cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures are counted.
    Closed,
    /// Tripped: no traffic until the cooldown lapses.
    Open,
    /// Cooldown lapsed: waiting for one probe to decide.
    HalfOpen,
}

impl BreakerState {
    /// Lowercase name for metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

struct Inner {
    state: BreakerState,
    /// Consecutive failures while closed.
    failures: u32,
    /// Times the breaker has opened (backoff stream position).
    opens: u32,
    /// When the current open period ends.
    reopen_at: Instant,
}

/// What a [`Breaker::on_success`]/[`Breaker::on_failure`] call did,
/// so the caller can count transitions without re-deriving them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// Closed/half-open → open.
    Opened,
    /// Half-open → closed (a probe succeeded).
    Closed,
}

/// The per-shard breaker (see module docs). All methods take `&self`;
/// the state sits behind one short mutex.
pub struct Breaker {
    inner: Mutex<Inner>,
    threshold: u32,
    cooldown: RetryPolicy,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures, cooling down `cooldown` (scaled by the deterministic
    /// jitter stream seeded with `seed`, doubling per consecutive
    /// open).
    pub fn new(threshold: u32, cooldown: Duration, seed: u64) -> Self {
        Breaker {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                failures: 0,
                opens: 0,
                reopen_at: Instant::now(),
            }),
            threshold: threshold.max(1),
            cooldown: RetryPolicy {
                max_attempts: u32::MAX,
                base_delay: cooldown,
                max_delay: cooldown.saturating_mul(8),
                jitter_seed: seed,
            },
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current state, promoting open → half-open once the cooldown
    /// has lapsed (callers observe the promotion, they never cause it
    /// elsewhere).
    pub fn state(&self) -> BreakerState {
        let mut inner = self.lock();
        if inner.state == BreakerState::Open && Instant::now() >= inner.reopen_at {
            inner.state = BreakerState::HalfOpen;
        }
        inner.state
    }

    /// Whether client traffic may be routed here right now. Half-open
    /// admits no client traffic — the health ping is the probe.
    pub fn allows_traffic(&self) -> bool {
        self.state() == BreakerState::Closed
    }

    /// Records a success (relayed reply or healthy ping).
    pub fn on_success(&self) -> Transition {
        let mut inner = self.lock();
        inner.failures = 0;
        match inner.state {
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Closed;
                Transition::Closed
            }
            // A success while open can only be a stale in-flight
            // attempt finishing late; keep cooling down.
            BreakerState::Open | BreakerState::Closed => Transition::None,
        }
    }

    /// Records a failure (connect/I-O error or failed ping).
    pub fn on_failure(&self) -> Transition {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.failures = inner.failures.saturating_add(1);
                if inner.failures >= self.threshold {
                    self.trip(&mut inner);
                    Transition::Opened
                } else {
                    Transition::None
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open with a longer cooldown.
                self.trip(&mut inner);
                Transition::Opened
            }
            BreakerState::Open => Transition::None,
        }
    }

    fn trip(&self, inner: &mut Inner) {
        inner.opens = inner.opens.saturating_add(1);
        inner.failures = 0;
        inner.state = BreakerState::Open;
        inner.reopen_at = Instant::now() + self.cooldown.delay_for(inner.opens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_breaker(threshold: u32) -> Breaker {
        Breaker::new(threshold, Duration::from_millis(20), 7)
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let b = fast_breaker(3);
        assert_eq!(b.on_failure(), Transition::None);
        assert_eq!(b.on_failure(), Transition::None);
        // A success in between resets the run.
        assert_eq!(b.on_success(), Transition::None);
        assert_eq!(b.on_failure(), Transition::None);
        assert_eq!(b.on_failure(), Transition::None);
        assert_eq!(b.on_failure(), Transition::Opened);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_traffic());
    }

    #[test]
    fn cooldown_promotes_to_half_open_then_probe_decides() {
        let b = fast_breaker(1);
        assert_eq!(b.on_failure(), Transition::Opened);
        assert!(!b.allows_traffic());
        // Wait out the (jittered, ≤ base) cooldown.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Half-open still takes no client traffic...
        assert!(!b.allows_traffic());
        // ...and one successful probe closes it.
        assert_eq!(b.on_success(), Transition::Closed);
        assert!(b.allows_traffic());
    }

    #[test]
    fn failed_probe_reopens_with_longer_cooldown() {
        let b = fast_breaker(1);
        b.on_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.on_failure(), Transition::Opened);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_ignores_stale_results() {
        let b = fast_breaker(1);
        b.on_failure();
        // Late results from attempts launched before the trip must not
        // flap the breaker.
        assert_eq!(b.on_success(), Transition::None);
        assert_eq!(b.on_failure(), Transition::None);
    }
}
