//! Client side of the hot-reload handshake: what `mupod reload` runs.
//!
//! The reload frame goes **directly to the shard**, not through the
//! router — the router notices the swap passively (health pings report
//! `Reloading` during the rebuild) and steers traffic to the remaining
//! shards until the shard reports healthy again. The server side of
//! the handshake lives in [`crate::server`]; the frame layout in
//! [`crate::frame`].

use std::net::SocketAddr;
use std::time::Duration;

use mupod_runtime::StatusCode;

use crate::client::{ClientError, Connection};

/// Why a reload did not complete.
#[derive(Debug)]
pub enum ReloadError {
    /// Transport or framing failure talking to the shard.
    Client(ClientError),
    /// The shard answered, but refused or failed the swap.
    Rejected {
        /// The wire status it answered with.
        status: StatusCode,
        /// Its diagnostic message.
        message: String,
    },
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Client(e) => write!(f, "reload transport error: {e}"),
            ReloadError::Rejected { status, message } => {
                write!(f, "shard rejected reload ({status}): {message}")
            }
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Client(e) => Some(e),
            ReloadError::Rejected { .. } => None,
        }
    }
}

/// Asks the shard at `addr` to hot-reload its network from `seed`,
/// blocking until the swap completes (model rebuild plus calibration —
/// give `timeout` seconds, not milliseconds, of patience). Returns the
/// shard's new model epoch.
///
/// # Errors
///
/// [`ReloadError::Client`] on transport problems, otherwise
/// [`ReloadError::Rejected`] with the shard's diagnostic (unsupported,
/// dims mismatch, build failure).
pub fn reload_shard(addr: SocketAddr, seed: u64, timeout: Duration) -> Result<u64, ReloadError> {
    let deadline_ms = timeout.as_millis().min(u128::from(u32::MAX)) as u32;
    let mut conn = Connection::connect(addr, timeout).map_err(ReloadError::Client)?;
    let reply = conn
        .reload(seed, deadline_ms)
        .map_err(ReloadError::Client)?;
    match reply.epoch {
        Some(epoch) => Ok(epoch),
        None => Err(ReloadError::Rejected {
            status: reply.status,
            message: reply.message.unwrap_or_default(),
        }),
    }
}
