//! `mupod route`: the fault-tolerant multi-shard serving front.
//!
//! The router speaks the same framed protocol as `mupod serve` on both
//! sides: clients connect to it exactly as they would to a single
//! shard, and it forwards each request — **byte-for-byte**, trace ID
//! and deadline included — to one of N backend shards over pooled
//! persistent connections. What one node cannot survive, the fleet
//! does:
//!
//! * **Health checking** ([`health`]): a periodic ping per shard feeds
//!   per-shard circuit breakers ([`breaker`]) — closed → open on
//!   consecutive failures, open → half-open after a deterministic
//!   jittered cooldown, half-open → closed on the next healthy ping.
//! * **Retry** — idempotent (classify) requests that fail with a
//!   connect/transport error, `WorkerCrashed`, or `Draining` are
//!   retried on another shard, bounded by a per-request budget and the
//!   request's own wire deadline.
//! * **Hedging** — when the primary attempt outlives a p99-informed
//!   timer, a duplicate goes to a second shard and the first answer
//!   wins. Hedges are capped at ~10% of traffic and never launched
//!   past the deadline.
//! * **Reload awareness** — a shard rebuilding its model (`mupod
//!   reload`, see [`reload`]) reports `Reloading`/`Draining` states
//!   and the router steers traffic to the remaining shards; zero
//!   accepted requests are dropped on either side of the handshake.
//! * **Observability** — the same admin plane as a shard
//!   (`/metrics`, `/health`, `/flight`) with `mupod_route_*` metric
//!   families and `forward`/`hedge` flight-recorder stages, so one
//!   trace ID is greppable from client through router to shard.
//!
//! `DESIGN.md` §14 describes the architecture end to end.

pub(crate) mod breaker;
pub(crate) mod health;
pub(crate) mod pool;
pub(crate) mod reload;

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mupod_obs::{Exposition, FlightRecorder, FlightStage, Gauge, RollingHistogram};
use mupod_runtime::{CancelToken, StatusCode};

use crate::admin;
use crate::frame::{self, FrameError, ReqKind, ShardState, HEADER_LEN, TRACE_ID_LEN};
use crate::server::{percentiles_us, Bound, POLL};

pub use breaker::BreakerState;
pub use reload::{reload_shard, ReloadError};

/// Connect budget per forwarding attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Write budget per forwarding attempt.
const ATTEMPT_WRITE_TIMEOUT: Duration = Duration::from_secs(2);
/// Grace past a request's deadline before the router answers
/// `DeadlineExceeded` itself (covers shard-side execution overrun).
const RELAY_GRACE: Duration = Duration::from_secs(2);
/// Once a frame's first byte arrives, the rest must follow within this
/// window (mirrors the shard's frame read timeout).
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Client-side socket write timeout.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Flight-recorder ring size.
const FLIGHT_CAPACITY: usize = 4096;
/// Rolling-window shape for routed-latency quantiles.
const WINDOW: Duration = Duration::from_secs(60);
const WINDOW_SLOTS: usize = 12;
/// Shard-state byte meaning "last ping could not reach the shard".
const STATE_UNREACHABLE: u8 = 0xFF;

/// Router health-document schema tag.
pub const ROUTE_HEALTH_SCHEMA: &str = "mupod-route-health v1";

/// Everything `mupod route` needs to know.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Front bind address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Backend `mupod serve` shards (at least one).
    pub shards: Vec<SocketAddr>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Extra attempts a retryable request may spend beyond the first.
    pub retry_budget: u32,
    /// Hedge-timer floor; the effective timer is
    /// `max(hedge_after, windowed p99 of routed latency)`.
    pub hedge_after: Duration,
    /// Cadence of the active health pings.
    pub health_interval: Duration,
    /// Consecutive failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// Base open→half-open cooldown (jittered, doubling per re-open).
    pub breaker_cooldown: Duration,
    /// Bind address for the admin plane; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Where to seal the flight recorder at drain; `None` disables it.
    pub flight_out: Option<PathBuf>,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            default_deadline: Duration::from_secs(1),
            retry_budget: 2,
            hedge_after: Duration::from_millis(25),
            health_interval: Duration::from_millis(200),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            metrics_addr: None,
            flight_out: None,
        }
    }
}

/// What happened over one routing run, computed at drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteReport {
    /// Client requests received (control ops excluded).
    pub requests: u64,
    /// Requests answered with a relayed `Ok`.
    pub relayed_ok: u64,
    /// Requests answered with a relayed non-OK status.
    pub relayed_errors: u64,
    /// Requests answered `NoHealthyShard` by the router itself.
    pub no_healthy_shard: u64,
    /// Requests answered `DeadlineExceeded` by the router itself.
    pub deadline_exceeded: u64,
    /// Forwarding attempts launched (first tries + retries + hedges).
    pub forwarded_attempts: u64,
    /// Retries launched after a failed or retryable attempt.
    pub retries: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Requests whose winning answer came from the hedge attempt.
    pub hedge_wins: u64,
    /// Malformed client frames answered `BadRequest`.
    pub bad_frames: u64,
    /// Clients that vanished mid-request or mid-response.
    pub client_disconnects: u64,
    /// Breaker closed→open transitions observed.
    pub breaker_opens: u64,
    /// Breaker half-open→closed recoveries observed.
    pub breaker_closes: u64,
    /// Median relayed-OK latency, microseconds (0 if none).
    pub p50_latency_us: u64,
    /// 99th-percentile relayed-OK latency, microseconds (0 if none).
    pub p99_latency_us: u64,
}

/// Terminal routing failures.
#[derive(Debug)]
pub enum RouteError {
    /// A listener could not bind.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The shard list was empty.
    NoShards,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            RouteError::NoShards => write!(f, "no shards configured; pass at least one --shard"),
        }
    }
}

impl std::error::Error for RouteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Bind { source, .. } => Some(source),
            RouteError::NoShards => None,
        }
    }
}

/// Saturating counters backing the [`RouteReport`].
#[derive(Default)]
pub(crate) struct RouteStats {
    requests: AtomicU64,
    relayed_ok: AtomicU64,
    relayed_errors: AtomicU64,
    no_healthy_shard: AtomicU64,
    deadline_exceeded: AtomicU64,
    forwarded_attempts: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    bad_frames: AtomicU64,
    client_disconnects: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_closes: AtomicU64,
}

impl RouteStats {
    pub(crate) fn note_breaker_opened(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_breaker_closed(&self) {
        self.breaker_closes.fetch_add(1, Ordering::Relaxed);
    }
}

/// One backend shard as the router sees it.
pub(crate) struct Shard {
    pub(crate) addr: SocketAddr,
    pub(crate) pool: pool::ConnPool,
    pub(crate) breaker: breaker::Breaker,
    /// Last pinged [`ShardState`] wire byte; [`STATE_UNREACHABLE`]
    /// when the last ping could not connect.
    state: AtomicU8,
    /// Forwarding attempts sent here.
    forwarded: AtomicU64,
    /// Attempt failures observed here (passive accounting).
    failures: AtomicU64,
}

impl Shard {
    fn new(addr: SocketAddr, cfg: &RouteConfig, idx: usize) -> Self {
        Shard {
            addr,
            pool: pool::ConnPool::new(),
            breaker: breaker::Breaker::new(
                cfg.breaker_threshold,
                cfg.breaker_cooldown,
                0xB0_5EED ^ (idx as u64),
            ),
            // Optimistic start: routable until a ping says otherwise.
            state: AtomicU8::new(ShardState::Ok.wire()),
            forwarded: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    pub(crate) fn set_state(&self, wire: u8) {
        self.state.store(wire, Ordering::SeqCst);
    }

    pub(crate) fn set_unreachable(&self) {
        self.state.store(STATE_UNREACHABLE, Ordering::SeqCst);
    }

    fn last_state(&self) -> Option<ShardState> {
        ShardState::from_wire(self.state.load(Ordering::SeqCst))
    }

    /// Whether client traffic may go here right now.
    fn routable(&self) -> bool {
        self.breaker.allows_traffic() && self.last_state().is_some_and(ShardState::routable)
    }
}

/// Live instruments for the router's admin plane.
pub(crate) struct RouterTelemetry {
    start: Instant,
    latency_us: RollingHistogram,
    in_flight: Gauge,
    pub(crate) flight: FlightRecorder,
}

/// State shared by the front listener, handlers, attempts, the health
/// loop and the admin plane. Lives in an [`Arc`] because attempt
/// threads are detached (a slow losing attempt must not block the
/// winner's reply).
pub(crate) struct RouterShared {
    pub(crate) cfg: RouteConfig,
    pub(crate) shards: Vec<Shard>,
    draining: AtomicBool,
    rr: AtomicUsize,
    pub(crate) stats: RouteStats,
    latencies_us: Mutex<Vec<u64>>,
    telemetry: RouterTelemetry,
}

impl RouterShared {
    fn new(cfg: RouteConfig) -> Self {
        let shards = cfg
            .shards
            .iter()
            .enumerate()
            .map(|(i, &addr)| Shard::new(addr, &cfg, i))
            .collect();
        RouterShared {
            cfg,
            shards,
            draining: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            stats: RouteStats::default(),
            latencies_us: Mutex::new(Vec::new()),
            telemetry: RouterTelemetry {
                start: Instant::now(),
                latency_us: RollingHistogram::new(WINDOW, WINDOW_SLOTS),
                in_flight: Gauge::new(),
                flight: FlightRecorder::new(FLIGHT_CAPACITY),
            },
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            mupod_obs::event(mupod_obs::Level::Info, "route.drain_begin", &[]);
        }
    }

    /// Round-robin pick of a routable shard, preferring ones not in
    /// `used`; falls back to a used-but-routable shard (a restarted
    /// worker may well serve a retry), `None` when nothing is routable.
    fn pick_shard(&self, used: &[usize]) -> Option<usize> {
        let n = self.shards.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let idx = (start + i) % n;
            if !used.contains(&idx) && self.shards[idx].routable() {
                return Some(idx);
            }
        }
        for i in 0..n {
            let idx = (start + i) % n;
            if self.shards[idx].routable() {
                return Some(idx);
            }
        }
        None
    }

    /// Like [`Self::pick_shard`] but never falls back to a used shard:
    /// a hedge to the shard already working the request duplicates its
    /// load without buying any independence, so with no fresh shard
    /// available the hedge simply does not launch.
    fn pick_unused_shard(&self, used: &[usize]) -> Option<usize> {
        let n = self.shards.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&idx| !used.contains(&idx) && self.shards[idx].routable())
    }

    fn healthy_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.routable()).count()
    }

    /// The p99-informed hedge timer (floored at `cfg.hedge_after`).
    fn hedge_delay(&self) -> Duration {
        let p99_us = self.telemetry.latency_us.summarize().quantile(0.99);
        self.cfg.hedge_after.max(Duration::from_micros(p99_us))
    }

    /// Hedges are budgeted to ~10% of client requests.
    fn hedge_budget_ok(&self) -> bool {
        let hedges = self.stats.hedges.load(Ordering::SeqCst);
        let requests = self.stats.requests.load(Ordering::SeqCst);
        hedges.saturating_mul(10) < requests.max(1)
    }

    /// What the router's own health ping answers.
    fn router_state(&self) -> ShardState {
        if self.is_draining() {
            ShardState::Draining
        } else if self.healthy_shards() == 0 {
            ShardState::Degraded
        } else {
            ShardState::Ok
        }
    }

    fn record_latency(&self, accepted: Instant) {
        let us = accepted.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.telemetry.latency_us.record(us);
        self.latencies_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(us);
    }
}

/// Runs the routing front until `token` cancels. `on_ready` fires once
/// with the bound addresses (front + admin), exactly like
/// [`crate::server::run`].
///
/// # Errors
///
/// [`RouteError::NoShards`] for an empty shard list,
/// [`RouteError::Bind`] if a listener cannot bind.
pub fn route(
    cfg: &RouteConfig,
    token: &CancelToken,
    on_ready: impl FnOnce(Bound),
) -> Result<RouteReport, RouteError> {
    if cfg.shards.is_empty() {
        return Err(RouteError::NoShards);
    }
    let bind = |addr: &str| -> Result<(TcpListener, SocketAddr), RouteError> {
        let to_err = |source| RouteError::Bind {
            addr: addr.to_string(),
            source,
        };
        let listener = TcpListener::bind(addr).map_err(to_err)?;
        let local = listener.local_addr().map_err(to_err)?;
        listener.set_nonblocking(true).map_err(to_err)?;
        Ok((listener, local))
    };
    let (listener, local) = bind(&cfg.addr)?;
    let metrics = cfg.metrics_addr.as_deref().map(bind).transpose()?;
    mupod_obs::event(
        mupod_obs::Level::Info,
        "route.listening",
        &[
            ("addr", &local.to_string()),
            ("shards", &cfg.shards.len().to_string()),
        ],
    );
    let shared = Arc::new(RouterShared::new(cfg.clone()));
    on_ready(Bound {
        addr: local,
        metrics_addr: metrics.as_ref().map(|(_, a)| *a),
    });
    std::thread::scope(|s| {
        let sh = &shared;
        s.spawn(move || health::health_loop(sh));
        if let Some((metrics_listener, _)) = metrics {
            s.spawn(move || {
                admin::run_admin(
                    &metrics_listener,
                    &|| sh.is_draining(),
                    &|path| match path {
                        "/metrics" => Some((
                            200,
                            "text/plain; version=0.0.4",
                            render_metrics(sh).into_bytes(),
                        )),
                        "/health" => {
                            let (code, body) = render_health(sh);
                            Some((code, "application/json", body.into_bytes()))
                        }
                        "/flight" => Some((
                            200,
                            "application/json",
                            sh.telemetry.flight.to_json().into_bytes(),
                        )),
                        _ => None,
                    },
                );
            });
        }
        loop {
            if token.is_cancelled() || shared.is_draining() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    mupod_obs::counter_add("route.connections", 1);
                    let sh = Arc::clone(&shared);
                    s.spawn(move || handle_client(stream, &sh));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(e) => {
                    mupod_obs::event(
                        mupod_obs::Level::Warn,
                        "route.accept_error",
                        &[("error", &e.to_string())],
                    );
                    std::thread::sleep(POLL);
                }
            }
        }
        shared.begin_drain();
    });
    if let Some(path) = cfg.flight_out.as_deref() {
        let doc = shared.telemetry.flight.to_json();
        if let Err(e) = mupod_runtime::write_atomic(path, doc.as_bytes()) {
            mupod_obs::event(
                mupod_obs::Level::Error,
                "route.flight_dump_failed",
                &[
                    ("path", &path.display().to_string()),
                    ("error", &e.to_string()),
                ],
            );
        }
    }
    let mut lat = shared
        .latencies_us
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let (p50, p99) = percentiles_us(&mut lat);
    drop(lat);
    let st = &shared.stats;
    let report = RouteReport {
        requests: st.requests.load(Ordering::SeqCst),
        relayed_ok: st.relayed_ok.load(Ordering::SeqCst),
        relayed_errors: st.relayed_errors.load(Ordering::SeqCst),
        no_healthy_shard: st.no_healthy_shard.load(Ordering::SeqCst),
        deadline_exceeded: st.deadline_exceeded.load(Ordering::SeqCst),
        forwarded_attempts: st.forwarded_attempts.load(Ordering::SeqCst),
        retries: st.retries.load(Ordering::SeqCst),
        hedges: st.hedges.load(Ordering::SeqCst),
        hedge_wins: st.hedge_wins.load(Ordering::SeqCst),
        bad_frames: st.bad_frames.load(Ordering::SeqCst),
        client_disconnects: st.client_disconnects.load(Ordering::SeqCst),
        breaker_opens: st.breaker_opens.load(Ordering::SeqCst),
        breaker_closes: st.breaker_closes.load(Ordering::SeqCst),
        p50_latency_us: p50,
        p99_latency_us: p99,
    };
    mupod_obs::event(
        mupod_obs::Level::Info,
        "route.drained",
        &[
            ("requests", &report.requests.to_string()),
            ("retries", &report.retries.to_string()),
            ("hedges", &report.hedges.to_string()),
        ],
    );
    Ok(report)
}

/// Per-connection front loop (mirrors the shard's handler loop).
fn handle_client(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut first = [0u8; 1];
    loop {
        if shared.is_draining() {
            break;
        }
        match stream.read(&mut first) {
            Ok(0) => break,
            Ok(_) => {
                if !serve_front_one(&mut stream, first[0], shared) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                shared
                    .stats
                    .client_disconnects
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
}

/// Reads exactly `buf`, giving up at `deadline` (front copy of the
/// shard's bounded read).
fn read_remaining(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

/// Writes router-originated (not relayed) response bytes to the client.
fn answer(
    stream: &mut TcpStream,
    shared: &RouterShared,
    status: StatusCode,
    trace_id: u64,
    payload: &[u8],
) -> bool {
    shared
        .telemetry
        .flight
        .record(trace_id, FlightStage::Reply, -1, status.wire());
    let bytes = frame::encode_response_traced(status, Some(trace_id), payload);
    write_raw(stream, shared, &bytes)
}

/// Writes raw response bytes; `false` means the client vanished.
fn write_raw(stream: &mut TcpStream, shared: &RouterShared, bytes: &[u8]) -> bool {
    match stream.write_all(bytes).and_then(|()| stream.flush()) {
        Ok(()) => true,
        Err(_) => {
            shared
                .stats
                .client_disconnects
                .fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

/// Serves one client frame: parse enough to route, then relay.
/// Returns whether the connection should stay open.
fn serve_front_one(stream: &mut TcpStream, first: u8, shared: &Arc<RouterShared>) -> bool {
    let frame_deadline = Instant::now() + FRAME_READ_TIMEOUT;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first;
    if !read_remaining(stream, &mut header[1..], frame_deadline) {
        return reject_bad_frame(stream, shared, &FrameError::Truncated);
    }
    let h = match frame::parse_request_header(&header) {
        Ok(h) => h,
        Err(e) => return reject_bad_frame(stream, shared, &e),
    };
    // Accumulate the raw frame exactly as received — forwarding reuses
    // these bytes untouched, which is what keeps trace IDs and deadline
    // fields byte-identical across the hop.
    let ext_len = if h.has_trace_id { TRACE_ID_LEN } else { 0 };
    let mut raw = vec![0u8; HEADER_LEN + ext_len + h.payload_len];
    raw[..HEADER_LEN].copy_from_slice(&header);
    if !read_remaining(stream, &mut raw[HEADER_LEN..], frame_deadline) {
        return reject_bad_frame(stream, shared, &FrameError::Truncated);
    }
    let trace_id = if h.has_trace_id {
        let ext: [u8; TRACE_ID_LEN] = raw[HEADER_LEN..HEADER_LEN + TRACE_ID_LEN]
            .try_into()
            .unwrap_or_default();
        frame::decode_trace_id(&ext)
    } else {
        0
    };
    match h.kind {
        ReqKind::HealthPing => {
            // The router answers for itself; `Degraded` warns a
            // meta-router that no shard is currently routable.
            let state = shared.router_state();
            return answer(stream, shared, StatusCode::Ok, trace_id, &[state.wire()]);
        }
        ReqKind::Reload => {
            // Reloads target one shard's model; fanning one out to a
            // round-robin pick would be a surprise. Callers reload
            // shards directly (`mupod reload --addr <shard>`).
            return answer(
                stream,
                shared,
                StatusCode::BadRequest,
                trace_id,
                b"send reload directly to a shard, not the router",
            );
        }
        ReqKind::Classify | ReqKind::ChaosPanic => {}
    }
    if shared.is_draining() {
        answer(
            stream,
            shared,
            StatusCode::Draining,
            trace_id,
            b"router draining; not accepting work",
        );
        return false;
    }
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .flight
        .record(trace_id, FlightStage::Admit, -1, 0);
    shared.telemetry.in_flight.add(1);
    let keep = relay(stream, shared, h, trace_id, Arc::new(raw));
    shared.telemetry.in_flight.sub(1);
    keep
}

fn reject_bad_frame(stream: &mut TcpStream, shared: &RouterShared, err: &FrameError) -> bool {
    shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
    answer(
        stream,
        shared,
        StatusCode::BadRequest,
        0,
        err.to_string().as_bytes(),
    );
    false
}

/// One relayed response: parsed status plus the raw bytes to echo.
struct Relayed {
    status: StatusCode,
    raw: Vec<u8>,
}

/// Why a forwarding attempt failed (all are breaker failures).
#[derive(Debug)]
enum AttemptError {
    /// Could not connect to the shard.
    Connect(std::io::Error),
    /// Transport failure after connecting (stale pooled connection,
    /// shard died mid-request, read timeout).
    Io(std::io::Error),
    /// The shard's response frame was malformed.
    Frame(FrameError),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::Connect(e) => write!(f, "connect: {e}"),
            AttemptError::Io(e) => write!(f, "transport: {e}"),
            AttemptError::Frame(e) => write!(f, "bad shard frame: {e}"),
        }
    }
}

/// Statuses worth retrying on another shard (idempotent requests
/// only): the shard told us the *request never executed to completion
/// usefully* and a sibling can do better.
fn retryable_status(status: StatusCode) -> bool {
    matches!(status, StatusCode::WorkerCrashed | StatusCode::Draining)
}

/// The relay state machine: primary attempt, bounded retries on
/// failure/retryable status, one optional hedge once the p99 timer
/// fires — all inside the request's wire deadline (+ grace).
fn relay(
    stream: &mut TcpStream,
    shared: &Arc<RouterShared>,
    h: frame::RequestHeader,
    trace_id: u64,
    raw_req: Arc<Vec<u8>>,
) -> bool {
    let accepted = Instant::now();
    let deadline = accepted
        + if h.deadline_ms == 0 {
            shared.cfg.default_deadline
        } else {
            Duration::from_millis(u64::from(h.deadline_ms))
        };
    let final_deadline = deadline + RELAY_GRACE;
    let idempotent = h.kind == ReqKind::Classify;
    let (tx, rx) = mpsc::channel::<(usize, Result<Relayed, AttemptError>)>();
    let mut used: Vec<usize> = Vec::new();
    let mut outstanding = 0u32;
    let mut retries_used = 0u32;
    let mut hedged = false;
    let mut hedge_idx: Option<usize> = None;

    let Some(primary) = shared.pick_shard(&used) else {
        shared
            .stats
            .no_healthy_shard
            .fetch_add(1, Ordering::Relaxed);
        return answer(
            stream,
            shared,
            StatusCode::NoHealthyShard,
            trace_id,
            b"no healthy shard to route to",
        );
    };
    launch_attempt(shared, primary, &raw_req, final_deadline, &tx, trace_id);
    used.push(primary);
    outstanding += 1;

    loop {
        let now = Instant::now();
        if now >= final_deadline {
            shared
                .stats
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return answer(
                stream,
                shared,
                StatusCode::DeadlineExceeded,
                trace_id,
                b"no shard answered in time",
            );
        }
        let hedge_at = if idempotent && !hedged && shared.hedge_budget_ok() {
            Some(accepted + shared.hedge_delay())
        } else {
            None
        };
        let wake = hedge_at.map_or(final_deadline, |at| at.min(final_deadline));
        let wait = wake
            .saturating_duration_since(now)
            .max(Duration::from_millis(1));
        match rx.recv_timeout(wait) {
            Ok((idx, Ok(relayed))) => {
                outstanding = outstanding.saturating_sub(1);
                let shard = &shared.shards[idx];
                shard.breaker.on_success();
                if relayed.status == StatusCode::Draining {
                    shard.set_state(ShardState::Draining.wire());
                }
                let can_retry = idempotent
                    && retryable_status(relayed.status)
                    && retries_used < shared.cfg.retry_budget
                    && Instant::now() < deadline;
                if can_retry {
                    if relayed.status == StatusCode::WorkerCrashed {
                        shard.failures.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(next) = shared.pick_shard(&used) {
                        retries_used += 1;
                        shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                        shared.telemetry.flight.record(
                            trace_id,
                            FlightStage::Forward,
                            next as i64,
                            StatusCode::Rerouted.wire(),
                        );
                        launch_attempt(shared, next, &raw_req, final_deadline, &tx, trace_id);
                        used.push(next);
                        outstanding += 1;
                        continue;
                    }
                }
                if relayed.status == StatusCode::Ok {
                    shared.stats.relayed_ok.fetch_add(1, Ordering::Relaxed);
                    shared.record_latency(accepted);
                } else {
                    shared.stats.relayed_errors.fetch_add(1, Ordering::Relaxed);
                }
                if hedge_idx == Some(idx) {
                    shared.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                }
                shared.telemetry.flight.record(
                    trace_id,
                    FlightStage::Reply,
                    idx as i64,
                    relayed.status.wire(),
                );
                return write_raw(stream, shared, &relayed.raw);
            }
            Ok((idx, Err(e))) => {
                outstanding = outstanding.saturating_sub(1);
                let shard = &shared.shards[idx];
                shard.failures.fetch_add(1, Ordering::Relaxed);
                shard.pool.clear();
                if shard.breaker.on_failure() == breaker::Transition::Opened {
                    shared.stats.note_breaker_opened();
                    mupod_obs::event(
                        mupod_obs::Level::Warn,
                        "route.breaker_opened",
                        &[
                            ("shard", &shard.addr.to_string()),
                            ("error", &e.to_string()),
                        ],
                    );
                }
                let can_retry = idempotent
                    && retries_used < shared.cfg.retry_budget
                    && Instant::now() < deadline;
                if can_retry {
                    if let Some(next) = shared.pick_shard(&used) {
                        retries_used += 1;
                        shared.stats.retries.fetch_add(1, Ordering::Relaxed);
                        shared.telemetry.flight.record(
                            trace_id,
                            FlightStage::Forward,
                            next as i64,
                            StatusCode::Rerouted.wire(),
                        );
                        launch_attempt(shared, next, &raw_req, final_deadline, &tx, trace_id);
                        used.push(next);
                        outstanding += 1;
                        continue;
                    }
                }
                if outstanding > 0 {
                    // A twin attempt (hedge) is still in flight; let it
                    // decide the request.
                    continue;
                }
                shared
                    .stats
                    .no_healthy_shard
                    .fetch_add(1, Ordering::Relaxed);
                let msg = format!("all shard attempts failed: {e}");
                return answer(
                    stream,
                    shared,
                    StatusCode::NoHealthyShard,
                    trace_id,
                    msg.as_bytes(),
                );
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(at) = hedge_at {
                    if Instant::now() >= at {
                        // The primary outlived the p99 timer: hedge once.
                        match shared.pick_unused_shard(&used) {
                            Some(next) => {
                                hedged = true;
                                hedge_idx = Some(next);
                                shared.stats.hedges.fetch_add(1, Ordering::Relaxed);
                                shared.telemetry.flight.record(
                                    trace_id,
                                    FlightStage::Hedge,
                                    next as i64,
                                    0,
                                );
                                launch_attempt(
                                    shared,
                                    next,
                                    &raw_req,
                                    final_deadline,
                                    &tx,
                                    trace_id,
                                );
                                used.push(next);
                                outstanding += 1;
                            }
                            None => {
                                // Nowhere to hedge to; stop arming the
                                // timer and just wait the primary out.
                                hedged = true;
                            }
                        }
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // All attempt threads gone without a result; the top of
                // the loop converts this into a deadline answer.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Spawns one detached forwarding attempt. Detached on purpose: a
/// losing attempt may legitimately outlive the request (its shard is
/// slow, the hedge won) and must not block the winner's reply; its
/// socket timeouts bound its lifetime.
fn launch_attempt(
    shared: &Arc<RouterShared>,
    idx: usize,
    raw_req: &Arc<Vec<u8>>,
    final_deadline: Instant,
    tx: &mpsc::Sender<(usize, Result<Relayed, AttemptError>)>,
    trace_id: u64,
) {
    shared
        .stats
        .forwarded_attempts
        .fetch_add(1, Ordering::Relaxed);
    shared
        .telemetry
        .flight
        .record(trace_id, FlightStage::Forward, idx as i64, 0);
    let shared = Arc::clone(shared);
    let raw_req = Arc::clone(raw_req);
    let tx = tx.clone();
    std::thread::spawn(move || {
        let result = attempt(&shared, idx, &raw_req, final_deadline);
        let _ = tx.send((idx, result));
    });
}

/// One forwarding attempt over a pooled (or fresh) connection: write
/// the raw request bytes, read one raw response, pool the connection
/// back on success.
fn attempt(
    shared: &RouterShared,
    idx: usize,
    raw_req: &[u8],
    final_deadline: Instant,
) -> Result<Relayed, AttemptError> {
    let shard = &shared.shards[idx];
    shard.forwarded.fetch_add(1, Ordering::Relaxed);
    let mut stream = match shard.pool.take() {
        Some(s) => s,
        None => TcpStream::connect_timeout(&shard.addr, CONNECT_TIMEOUT)
            .map_err(AttemptError::Connect)?,
    };
    let _ = stream.set_nodelay(true);
    let wait = final_deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(10));
    stream
        .set_read_timeout(Some(wait))
        .map_err(AttemptError::Io)?;
    stream
        .set_write_timeout(Some(ATTEMPT_WRITE_TIMEOUT))
        .map_err(AttemptError::Io)?;
    stream
        .write_all(raw_req)
        .and_then(|()| stream.flush())
        .map_err(AttemptError::Io)?;
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header).map_err(AttemptError::Io)?;
    let rh = frame::parse_response_header(&header).map_err(AttemptError::Frame)?;
    let ext_len = if rh.has_trace_id { TRACE_ID_LEN } else { 0 };
    let mut raw = vec![0u8; HEADER_LEN + ext_len + rh.payload_len];
    raw[..HEADER_LEN].copy_from_slice(&header);
    stream
        .read_exact(&mut raw[HEADER_LEN..])
        .map_err(AttemptError::Io)?;
    shard.pool.put(stream);
    Ok(Relayed {
        status: rh.status,
        raw,
    })
}

/// Renders the router's `/metrics` payload (`mupod_route_*` families).
fn render_metrics(shared: &RouterShared) -> String {
    let st = &shared.stats;
    let t = &shared.telemetry;
    let mut e = Exposition::new();
    e.gauge_f64(
        "mupod_route_uptime_seconds",
        "Seconds since the router started.",
        t.start.elapsed().as_secs_f64(),
    );
    for (name, help, counter) in [
        (
            "mupod_route_requests_total",
            "Client requests received (control ops excluded).",
            &st.requests,
        ),
        (
            "mupod_route_relayed_ok_total",
            "Requests answered with a relayed Ok.",
            &st.relayed_ok,
        ),
        (
            "mupod_route_relayed_errors_total",
            "Requests answered with a relayed non-OK status.",
            &st.relayed_errors,
        ),
        (
            "mupod_route_no_healthy_shard_total",
            "Requests answered NoHealthyShard by the router.",
            &st.no_healthy_shard,
        ),
        (
            "mupod_route_deadline_exceeded_total",
            "Requests answered DeadlineExceeded by the router.",
            &st.deadline_exceeded,
        ),
        (
            "mupod_route_forwarded_attempts_total",
            "Forwarding attempts launched (first tries, retries, hedges).",
            &st.forwarded_attempts,
        ),
        (
            "mupod_route_retries_total",
            "Retries launched after a failed or retryable attempt.",
            &st.retries,
        ),
        (
            "mupod_route_hedges_total",
            "Hedged duplicate attempts launched.",
            &st.hedges,
        ),
        (
            "mupod_route_hedge_wins_total",
            "Requests whose winning answer came from the hedge.",
            &st.hedge_wins,
        ),
        (
            "mupod_route_bad_frames_total",
            "Malformed client frames answered BadRequest.",
            &st.bad_frames,
        ),
        (
            "mupod_route_client_disconnects_total",
            "Clients that vanished mid-request or mid-response.",
            &st.client_disconnects,
        ),
        (
            "mupod_route_breaker_opens_total",
            "Breaker closed-to-open transitions.",
            &st.breaker_opens,
        ),
        (
            "mupod_route_breaker_closes_total",
            "Breaker half-open-to-closed recoveries.",
            &st.breaker_closes,
        ),
    ] {
        e.counter(name, help, counter.load(Ordering::SeqCst));
    }
    e.gauge(
        "mupod_route_in_flight",
        "Client requests admitted but not yet answered.",
        t.in_flight.get(),
    );
    e.gauge(
        "mupod_route_healthy_shards",
        "Shards currently routable (breaker closed, state routable).",
        shared.healthy_shards() as i64,
    );
    e.gauge_set(
        "mupod_route_shard_up",
        "1 if the shard is currently routable.",
        "shard",
        &shared
            .shards
            .iter()
            .map(|s| (s.addr.to_string(), i64::from(s.routable())))
            .collect::<Vec<_>>(),
    );
    e.gauge_set(
        "mupod_route_shard_breaker_open",
        "0 closed, 1 open, 2 half-open.",
        "shard",
        &shared
            .shards
            .iter()
            .map(|s| {
                let v = match s.breaker.state() {
                    BreakerState::Closed => 0,
                    BreakerState::Open => 1,
                    BreakerState::HalfOpen => 2,
                };
                (s.addr.to_string(), v)
            })
            .collect::<Vec<_>>(),
    );
    e.counter_set(
        "mupod_route_shard_forwarded_total",
        "Forwarding attempts sent to each shard.",
        "shard",
        &shared
            .shards
            .iter()
            .map(|s| (s.addr.to_string(), s.forwarded.load(Ordering::SeqCst)))
            .collect::<Vec<_>>(),
    );
    e.counter_set(
        "mupod_route_shard_failures_total",
        "Attempt failures observed at each shard.",
        "shard",
        &shared
            .shards
            .iter()
            .map(|s| (s.addr.to_string(), s.failures.load(Ordering::SeqCst)))
            .collect::<Vec<_>>(),
    );
    e.counter(
        "mupod_route_flight_events_dropped_total",
        "Flight-recorder events evicted because the ring was full.",
        t.flight.dropped(),
    );
    let lat = t.latency_us.summarize();
    e.histogram(
        "mupod_route_latency_us",
        "Relayed-OK latency in microseconds over the rolling window.",
        &lat,
    );
    e.summary(
        "mupod_route_latency_window_us",
        "Windowed relayed-OK latency quantiles, microseconds.",
        &[("0.5", lat.quantile(0.5)), ("0.99", lat.quantile(0.99))],
        &lat,
    );
    e.finish()
}

/// Renders the router's `/health` payload; 503 while draining.
fn render_health(shared: &RouterShared) -> (u16, String) {
    let draining = shared.is_draining();
    let healthy = shared.healthy_shards();
    let state = if draining {
        "draining"
    } else if healthy == 0 {
        "no_healthy_shard"
    } else if healthy < shared.shards.len() {
        "degraded"
    } else {
        "ok"
    };
    let body = format!(
        concat!(
            "{{\n",
            "  \"schema\": {schema},\n",
            "  \"state\": {state},\n",
            "  \"shards\": {shards},\n",
            "  \"healthy_shards\": {healthy},\n",
            "  \"uptime_s\": {uptime},\n",
            "  \"in_flight\": {in_flight}\n",
            "}}\n"
        ),
        schema = mupod_obs::json::escape(ROUTE_HEALTH_SCHEMA),
        state = mupod_obs::json::escape(state),
        shards = shared.shards.len(),
        healthy = healthy,
        uptime = mupod_obs::json::fmt_f64(shared.telemetry.start.elapsed().as_secs_f64()),
        in_flight = shared.telemetry.in_flight.get(),
    );
    (if draining { 503 } else { 200 }, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Connection;
    use crate::frame::Priority;
    use crate::server::{run, ServeConfig, ServeError, ServeReport};
    use crate::test_util::{image, tiny_net};
    use mupod_runtime::{CancelReason, CancelToken};
    use std::sync::mpsc;
    use std::thread::JoinHandle;

    /// Starts one backend shard on an ephemeral port.
    fn start_shard(
        cfg: ServeConfig,
        token: CancelToken,
    ) -> (SocketAddr, JoinHandle<Result<ServeReport, ServeError>>) {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let net = tiny_net();
            run(&net, &cfg, &token, move |b| {
                tx.send(b.addr).expect("ready receiver alive")
            })
        });
        let addr = rx.recv_timeout(Duration::from_secs(10)).expect("shard up");
        (addr, handle)
    }

    /// Starts a router over `shards` on an ephemeral port.
    fn start_router(
        mut cfg: RouteConfig,
        shards: Vec<SocketAddr>,
        token: CancelToken,
    ) -> (Bound, JoinHandle<Result<RouteReport, RouteError>>) {
        cfg.shards = shards;
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            route(&cfg, &token, move |b| {
                tx.send(b).expect("ready receiver alive")
            })
        });
        let bound = rx.recv_timeout(Duration::from_secs(10)).expect("router up");
        (bound, handle)
    }

    fn fast_route_cfg() -> RouteConfig {
        RouteConfig {
            health_interval: Duration::from_millis(50),
            default_deadline: Duration::from_secs(5),
            // Hedging off by default: these tests assert exact request
            // counts, and a cold-start hedge would duplicate work. The
            // dedicated hedge test opts back in.
            hedge_after: Duration::from_secs(30),
            ..RouteConfig::default()
        }
    }

    fn connect(addr: SocketAddr) -> Connection {
        Connection::connect(addr, Duration::from_secs(10)).expect("loopback connect")
    }

    #[test]
    fn empty_shard_list_is_rejected() {
        let token = CancelToken::new();
        let err =
            route(&RouteConfig::default(), &token, |_| {}).expect_err("no shards must not route");
        assert!(matches!(err, RouteError::NoShards));
    }

    #[test]
    fn routes_to_shards_and_echoes_trace_ids() {
        let shard_token = CancelToken::new();
        let (a, ha) = start_shard(ServeConfig::default(), shard_token.clone());
        let (b, hb) = start_shard(ServeConfig::default(), shard_token.clone());
        let route_token = CancelToken::new();
        let (bound, hr) = start_router(fast_route_cfg(), vec![a, b], route_token.clone());
        let mut conn = connect(bound.addr);
        let net = tiny_net();
        for seed in 0..6u32 {
            let img = image(seed);
            let trace = 0xAB00 + u64::from(seed);
            let reply = conn
                .classify_traced(&img, 0, Priority::High, trace)
                .expect("routed reply");
            assert_eq!(reply.status, StatusCode::Ok);
            // The shard's answer (and trace echo) crossed the hop intact.
            assert_eq!(reply.trace_id, Some(trace));
            let want = net.classify(&mupod_tensor::Tensor::from_vec(&[1, 6, 6], img));
            assert_eq!(reply.class, Some(want as u32));
        }
        route_token.cancel(CancelReason::Interrupt);
        let report = hr.join().expect("router thread").expect("router drains");
        assert_eq!(report.requests, 6);
        assert_eq!(report.relayed_ok, 6);
        assert_eq!(report.no_healthy_shard, 0);
        // Round-robin really spread the load over both shards.
        shard_token.cancel(CancelReason::Interrupt);
        let ra = ha.join().expect("shard a").expect("drain a");
        let rb = hb.join().expect("shard b").expect("drain b");
        assert!(ra.requests_ok > 0, "shard a got traffic");
        assert!(rb.requests_ok > 0, "shard b got traffic");
        assert_eq!(ra.requests_ok + rb.requests_ok, 6);
    }

    #[test]
    fn forwarded_bytes_are_identical_to_what_the_client_sent() {
        // A fake shard that captures the exact bytes the router sends,
        // answers Ok, and lets us compare against the client encoding:
        // trace ext and deadline field must survive re-encapsulation
        // byte for byte.
        let listener = TcpListener::bind("127.0.0.1:0").expect("fake shard binds");
        let shard_addr = listener.local_addr().expect("addr");
        let req = frame::encode_request_traced(
            ReqKind::Classify,
            Priority::Low,
            123_456,
            Some(0xDEAD_BEEF_F00D),
            &image(3),
        );
        let want_len = req.len();
        let capture = std::thread::spawn(move || {
            // The health loop pings this fake shard too; answer pings
            // until the forwarded classify frame shows up.
            loop {
                let (mut s, _) = listener.accept().expect("router connects");
                let mut header = [0u8; HEADER_LEN];
                if s.read_exact(&mut header).is_err() {
                    continue; // ping connection torn down mid-frame
                }
                let h = frame::parse_request_header(&header).expect("router sends valid frames");
                if h.kind == ReqKind::HealthPing {
                    let pong = frame::encode_response(StatusCode::Ok, &[ShardState::Ok.wire()]);
                    let _ = s.write_all(&pong);
                    continue;
                }
                let mut got = vec![0u8; want_len];
                got[..HEADER_LEN].copy_from_slice(&header);
                s.read_exact(&mut got[HEADER_LEN..])
                    .expect("full forwarded frame");
                let resp =
                    frame::encode_response_traced(StatusCode::Ok, Some(0xDEAD_BEEF_F00D), &[]);
                s.write_all(&resp).expect("reply");
                return got;
            }
        });
        let route_token = CancelToken::new();
        let (bound, hr) = start_router(fast_route_cfg(), vec![shard_addr], route_token.clone());
        let mut stream = TcpStream::connect(bound.addr).expect("client connects");
        stream.write_all(&req).expect("send");
        let mut header = [0u8; HEADER_LEN];
        stream.read_exact(&mut header).expect("response header");
        let rh = frame::parse_response_header(&header).expect("parseable relay");
        assert_eq!(rh.status, StatusCode::Ok);
        assert!(rh.has_trace_id);
        let got = capture.join().expect("capture thread");
        assert_eq!(got, req, "forwarded request bytes must be identical");
        route_token.cancel(CancelReason::Interrupt);
        hr.join().expect("router thread").expect("router drains");
    }

    #[test]
    fn dead_shard_is_retried_on_a_live_one() {
        // Shard A is a bound-then-dropped port (connection refused);
        // shard B works. Every classify must still succeed — the
        // client never sees A's failure.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let shard_token = CancelToken::new();
        let (live, hl) = start_shard(ServeConfig::default(), shard_token.clone());
        let route_token = CancelToken::new();
        let (bound, hr) =
            start_router(fast_route_cfg(), vec![dead_addr, live], route_token.clone());
        let mut conn = connect(bound.addr);
        for seed in 0..4u32 {
            let reply = conn
                .classify(&image(seed), 0, Priority::High)
                .expect("reply despite dead shard");
            assert_eq!(reply.status, StatusCode::Ok, "seed {seed}");
        }
        route_token.cancel(CancelReason::Interrupt);
        let report = hr.join().expect("router thread").expect("router drains");
        assert_eq!(report.relayed_ok, 4);
        assert_eq!(
            report.no_healthy_shard, 0,
            "client never saw the dead shard"
        );
        shard_token.cancel(CancelReason::Interrupt);
        hl.join().expect("live shard").expect("drain");
    }

    #[test]
    fn slow_primary_is_hedged_to_a_fast_shard() {
        // Shard 0 sits on every batch for 600ms; shard 1 is fast. The
        // first pick is round-robin slot 0, so the request lands on
        // the slow shard, outlives the 30ms hedge floor, and the
        // hedged duplicate on the fast shard wins.
        let shard_token = CancelToken::new();
        let slow_cfg = ServeConfig {
            slow_batch: Some(Duration::from_millis(600)),
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        };
        let (slow, hs) = start_shard(slow_cfg, shard_token.clone());
        let (fast, hf) = start_shard(ServeConfig::default(), shard_token.clone());
        let route_token = CancelToken::new();
        let cfg = RouteConfig {
            hedge_after: Duration::from_millis(30),
            ..fast_route_cfg()
        };
        let (bound, hr) = start_router(cfg, vec![slow, fast], route_token.clone());
        let mut conn = connect(bound.addr);
        let started = Instant::now();
        let reply = conn.classify(&image(0), 0, Priority::High).expect("reply");
        let latency = started.elapsed();
        assert_eq!(reply.status, StatusCode::Ok);
        assert!(
            latency < Duration::from_millis(500),
            "hedge should beat the 600ms slow shard, took {latency:?}"
        );
        // Give the losing slow attempt time to finish so the drain is
        // quiet, then check the books.
        std::thread::sleep(Duration::from_millis(700));
        route_token.cancel(CancelReason::Interrupt);
        let report = hr.join().expect("router thread").expect("router drains");
        assert_eq!(report.requests, 1);
        assert_eq!(report.relayed_ok, 1);
        assert_eq!(report.hedges, 1, "exactly one hedge launched");
        assert_eq!(report.hedge_wins, 1, "the hedge won the race");
        shard_token.cancel(CancelReason::Interrupt);
        hs.join().expect("slow shard").expect("drain");
        hf.join().expect("fast shard").expect("drain");
    }

    #[test]
    fn all_shards_dead_answers_no_healthy_shard() {
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let route_token = CancelToken::new();
        let cfg = RouteConfig {
            // Keep the breaker closed long enough for the request to
            // exercise the attempt path rather than the routing guard.
            breaker_threshold: 100,
            ..fast_route_cfg()
        };
        let (bound, hr) = start_router(cfg, vec![dead], route_token.clone());
        let mut conn = connect(bound.addr);
        let reply = conn.classify(&image(0), 0, Priority::High).expect("reply");
        assert_eq!(reply.status, StatusCode::NoHealthyShard);
        route_token.cancel(CancelReason::Interrupt);
        let report = hr.join().expect("router thread").expect("router drains");
        assert_eq!(report.no_healthy_shard, 1);
        assert_eq!(report.relayed_ok, 0);
    }

    #[test]
    fn router_health_ping_and_admin_plane_respond() {
        let shard_token = CancelToken::new();
        let (a, ha) = start_shard(ServeConfig::default(), shard_token.clone());
        let route_token = CancelToken::new();
        let cfg = RouteConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..fast_route_cfg()
        };
        let (bound, hr) = start_router(cfg, vec![a], route_token.clone());
        let mut conn = connect(bound.addr);
        // The router answers health pings for itself.
        let state = conn.ping().expect("router ping");
        assert_eq!(state, ShardState::Ok);
        // One classified request so the metrics have something to say.
        let reply = conn
            .classify_traced(&image(0), 0, Priority::High, 424_242)
            .expect("reply");
        assert_eq!(reply.status, StatusCode::Ok);
        let metrics_addr = bound.metrics_addr.expect("admin plane bound");
        let timeout = Duration::from_secs(5);
        let (code, body) =
            crate::admin::http_get(metrics_addr, "/metrics", timeout).expect("scrape");
        assert_eq!(code, 200);
        let text = String::from_utf8(body).expect("utf-8 exposition");
        mupod_obs::expo::validate(&text).expect("valid exposition");
        assert!(text.contains("mupod_route_requests_total 1\n"), "{text}");
        assert!(text.contains("mupod_route_relayed_ok_total 1\n"));
        assert!(text.contains("mupod_route_healthy_shards 1\n"));
        assert!(text.contains("mupod_route_shard_up{shard=\""));
        let (code, body) =
            crate::admin::http_get(metrics_addr, "/health", timeout).expect("health");
        assert_eq!(code, 200);
        let doc = mupod_obs::json::parse(&String::from_utf8(body).expect("utf-8 health"))
            .expect("health is JSON");
        let obj = doc.as_object().expect("health object");
        assert_eq!(obj["schema"].as_str(), Some(ROUTE_HEALTH_SCHEMA));
        assert_eq!(obj["state"].as_str(), Some("ok"));
        // The flight recorder saw the routed request under its trace ID.
        let (code, body) =
            crate::admin::http_get(metrics_addr, "/flight", timeout).expect("flight");
        assert_eq!(code, 200);
        let doc = mupod_obs::json::parse(&String::from_utf8(body).expect("utf-8 flight"))
            .expect("flight is JSON");
        let events = doc.as_object().expect("flight object")["events"]
            .as_array()
            .expect("events array")
            .iter()
            .filter(|e| e.as_object().and_then(|o| o["trace_id"].as_f64()) == Some(424_242.0))
            .count();
        assert!(events >= 3, "admit + forward + reply at minimum");
        // Reload frames are refused at the router with guidance.
        let refused = conn.reload(1, 1_000).expect("reload answered");
        assert_eq!(refused.status, StatusCode::BadRequest);
        assert!(refused
            .message
            .expect("diagnostic")
            .contains("directly to a shard"));
        route_token.cancel(CancelReason::Interrupt);
        hr.join().expect("router thread").expect("router drains");
        shard_token.cancel(CancelReason::Interrupt);
        ha.join().expect("shard").expect("drain");
    }

    #[test]
    fn breaker_opens_on_killed_shard_and_recovers_after_restart() {
        // Kill a shard (drop its listener by cancelling it), watch the
        // breaker open via failed pings, restart a shard on the same
        // port, and watch the half-open probe close the breaker again.
        let shard_token = CancelToken::new();
        let (addr, hs) = start_shard(ServeConfig::default(), shard_token.clone());
        let route_token = CancelToken::new();
        let cfg = RouteConfig {
            // One failed ping trips the breaker, so the open is
            // guaranteed before the shard comes back.
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(100),
            ..fast_route_cfg()
        };
        let (bound, hr) = start_router(cfg, vec![addr], route_token.clone());
        let mut conn = connect(bound.addr);
        assert_eq!(
            conn.classify(&image(0), 0, Priority::High)
                .expect("reply")
                .status,
            StatusCode::Ok
        );
        // Kill the shard; pings start failing and open the breaker.
        shard_token.cancel(CancelReason::Interrupt);
        hs.join().expect("shard").expect("drain");
        let opened_by = Instant::now() + Duration::from_secs(5);
        loop {
            let reply = conn.ping().expect("router still answers pings");
            // Router itself degrades: no routable shard remains.
            if reply == ShardState::Degraded {
                break;
            }
            assert!(Instant::now() < opened_by, "breaker never opened");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Restart a shard on the same port and wait for recovery.
        let revive_token = CancelToken::new();
        let cfg2 = ServeConfig {
            addr: addr.to_string(),
            ..ServeConfig::default()
        };
        let (tx, rx) = mpsc::channel();
        let t2 = revive_token.clone();
        let hs2 = std::thread::spawn(move || {
            let net = tiny_net();
            run(&net, &cfg2, &t2, move |b| {
                tx.send(b.addr).expect("ready receiver alive")
            })
        });
        rx.recv_timeout(Duration::from_secs(10)).expect("revived");
        let recovered_by = Instant::now() + Duration::from_secs(10);
        loop {
            if conn.ping().expect("ping") == ShardState::Ok {
                break;
            }
            assert!(Instant::now() < recovered_by, "breaker never closed");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Traffic flows again.
        assert_eq!(
            conn.classify(&image(1), 0, Priority::High)
                .expect("reply")
                .status,
            StatusCode::Ok
        );
        route_token.cancel(CancelReason::Interrupt);
        let report = hr.join().expect("router thread").expect("router drains");
        assert!(report.breaker_opens >= 1, "breaker opened");
        assert!(report.breaker_closes >= 1, "breaker closed again");
        revive_token.cancel(CancelReason::Interrupt);
        hs2.join().expect("revived shard").expect("drain");
    }

    #[test]
    fn hot_reload_swaps_the_model_without_dropping_requests() {
        // A reloadable shard: the reloader rebuilds the same tiny net
        // (dims match, contents identical — determinism keeps answers
        // comparable) while classify traffic keeps flowing.
        let token = CancelToken::new();
        let cfg = ServeConfig::default();
        let (tx, rx) = mpsc::channel();
        let t = token.clone();
        let handle = std::thread::spawn(move || {
            let reloader = |_seed: u64| Ok(tiny_net());
            crate::server::run_reloadable(tiny_net(), &cfg, &t, Some(&reloader), move |b| {
                tx.send(b.addr).expect("ready receiver alive")
            })
        });
        let addr = rx.recv_timeout(Duration::from_secs(10)).expect("shard up");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let load = std::thread::spawn(move || {
            let mut conn = connect(addr);
            let mut ok = 0u64;
            let mut seed = 0u32;
            while !stop2.load(Ordering::SeqCst) {
                let reply = conn
                    .classify(&image(seed), 0, Priority::High)
                    .expect("reply during reload");
                assert_eq!(
                    reply.status,
                    StatusCode::Ok,
                    "request dropped during reload"
                );
                ok += 1;
                seed = seed.wrapping_add(1);
            }
            ok
        });
        std::thread::sleep(Duration::from_millis(50));
        let epoch = reload_shard(addr, 42, Duration::from_secs(10)).expect("reload succeeds");
        assert_eq!(epoch, 1);
        let epoch2 = reload_shard(addr, 43, Duration::from_secs(10)).expect("second reload");
        assert_eq!(epoch2, 2);
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::SeqCst);
        let served = load.join().expect("load thread");
        assert!(served > 0, "load ran across the reloads");
        token.cancel(CancelReason::Interrupt);
        let report = handle.join().expect("server thread").expect("clean drain");
        assert_eq!(report.requests_ok, served, "zero dropped requests");
    }
}
