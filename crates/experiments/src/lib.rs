//! Shared infrastructure for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §5 for the index). This library holds the
//! common plumbing: model preparation (build + calibrate on the
//! synthetic dataset), markdown table rendering, and the `--quick` knob
//! that shrinks workloads for smoke testing.

use mupod_data::{Dataset, DatasetSpec};
use mupod_models::{calibrate::calibrate_head, ModelKind, ModelScale};
use mupod_nn::inventory::{LayerInfo, LayerInventory};
use mupod_nn::{Network, NodeId};

/// Typed failure of an experiment binary.
///
/// The experiment drivers sit on the same profile→optimize→evaluate
/// path as the CLI (DESIGN.md §7): failures surface as diagnostics and
/// exit status 1, never as panics.
#[derive(Debug)]
pub enum ExperimentError {
    /// Model preparation (build + calibration) failed.
    Prepare(String),
    /// A profiling sweep failed.
    Profile(String),
    /// An optimizer or search run failed.
    Optimize(String),
    /// Invalid experiment command-line arguments.
    Usage(String),
    /// An internal cross-reference broke (e.g. a layer missing from a
    /// freshly measured inventory).
    Invariant(String),
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Prepare(m) => write!(f, "preparation failed: {m}"),
            ExperimentError::Profile(m) => write!(f, "profiling failed: {m}"),
            ExperimentError::Optimize(m) => write!(f, "optimization failed: {m}"),
            ExperimentError::Usage(m) => write!(f, "usage error: {m}"),
            ExperimentError::Invariant(m) => write!(f, "internal invariant broken: {m}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Standard tail of every experiment `main`: print the typed error and
/// exit 1, mirroring the CLI's run-error status.
pub fn exit_on_error(result: Result<(), ExperimentError>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Looks up a layer in a measured inventory, converting the "cannot
/// happen" miss into a typed error instead of an unwrap.
///
/// # Errors
///
/// Returns [`ExperimentError::Invariant`] when `id` is missing.
pub fn find_layer(inventory: &LayerInventory, id: NodeId) -> Result<&LayerInfo, ExperimentError> {
    inventory.find(id).ok_or_else(|| {
        ExperimentError::Invariant(format!("layer {id} missing from measured inventory"))
    })
}

/// Workload sizing for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunSize {
    /// Images used to calibrate the classifier head.
    pub calibration_images: usize,
    /// Images used for accuracy evaluation.
    pub eval_images: usize,
    /// Images used by the profiler.
    pub profile_images: usize,
    /// Noise magnitudes per layer in the profiling sweep.
    pub n_deltas: usize,
    /// Noise redraws per image per magnitude.
    pub repeats: usize,
}

impl RunSize {
    /// Full experiment size (matches the numbers quoted in
    /// `EXPERIMENTS.md`).
    pub fn full() -> Self {
        Self {
            calibration_images: 256,
            eval_images: 128,
            profile_images: 24,
            n_deltas: 20,
            repeats: 3,
        }
    }

    /// Reduced size for smoke tests (`--quick`).
    pub fn quick() -> Self {
        Self {
            calibration_images: 64,
            eval_images: 32,
            profile_images: 6,
            n_deltas: 8,
            repeats: 1,
        }
    }

    /// Picks full or quick based on the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            eprintln!("[quick mode: reduced workload]");
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// A prepared model: built, calibrated, with matching datasets.
pub struct Prepared {
    /// The calibrated network.
    pub net: Network,
    /// Evaluation dataset (disjoint seed from calibration).
    pub eval: Dataset,
    /// The model kind.
    pub kind: ModelKind,
    /// The scale it was built at.
    pub scale: ModelScale,
    /// Calibration accuracy on held-out evaluation data.
    pub eval_accuracy: f64,
}

/// Builds a model at experiment scale, calibrates its head and reports
/// held-out accuracy.
///
/// Seeds are derived from the model kind so every experiment sees the
/// same network for the same kind.
///
/// # Errors
///
/// Returns [`ExperimentError::Prepare`] when head calibration fails
/// (degenerate synthetic data or a guardrail trip).
pub fn prepare(kind: ModelKind, size: &RunSize) -> Result<Prepared, ExperimentError> {
    let scale = ModelScale::small();
    let seed = 0xC0FFEE ^ (kind as u64);
    let mut net = kind.build(&scale, seed);
    let spec =
        DatasetSpec::new(scale.classes, 3, scale.input_hw, scale.input_hw).with_class_seed(seed);
    let calib = Dataset::generate(&spec, seed ^ 0xA, size.calibration_images);
    let eval = Dataset::generate(&spec, seed ^ 0xB, size.eval_images);
    calibrate_head(&mut net, &calib, 0.1)
        .map_err(|e| ExperimentError::Prepare(format!("{kind} calibration: {e}")))?;
    let eval_accuracy = eval.accuracy_of(|img| net.classify(img));
    Ok(Prepared {
        net,
        eval,
        kind,
        scale,
        eval_accuracy,
    })
}

/// Renders a markdown table.
///
/// # Panics
///
/// Panics if any row length differs from the header length.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Buffered experiment output.
///
/// Every [`Report::line`] goes to stdout immediately (the binaries stay
/// pipe-friendly) and accumulates in a buffer; when the process was
/// started with `--out <path>`, [`Report::finish`] writes the whole
/// buffer through the crash-safe atomic writer
/// ([`mupod_runtime::write_atomic`]), so a regenerated table/figure
/// deliverable on disk is always either the complete old version or the
/// complete new one — never a truncated mix.
pub struct Report {
    buffer: String,
    out: Option<std::path::PathBuf>,
}

impl Report {
    /// Builds a report, reading `--out <path>` from the process args.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from);
        Self {
            buffer: String::new(),
            out,
        }
    }

    /// Prints one line to stdout and appends it to the buffer. Use via
    /// the [`report!`] macro.
    pub fn line(&mut self, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write as _;
        let _ = writeln!(self.buffer, "{args}");
        println!("{args}");
    }

    /// Flushes the buffered report to `--out` (atomic, sealed). Exits
    /// the process with status 1 on a write failure — a half-written
    /// deliverable would defeat the point of buffering.
    pub fn finish(self) {
        if let Some(path) = &self.out {
            if let Err(e) = mupod_runtime::write_atomic(path, self.buffer.as_bytes()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[report written to {}]", path.display());
        }
    }
}

/// `println!` that also lands in a [`Report`] buffer:
/// `report!(rep, "fmt {}", x)` or `report!(rep)` for a blank line.
#[macro_export]
macro_rules! report {
    ($r:expr) => {
        $r.line(::std::format_args!(""))
    };
    ($r:expr, $($arg:tt)*) => {
        $r.line(::std::format_args!($($arg)*))
    };
}

/// Formats a float with fixed decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_shapes() {
        let t = markdown_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bb"));
        assert!(lines[1].contains("--"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn markdown_table_rejects_ragged() {
        markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn report_buffers_lines_and_seals_on_finish() {
        let dir = std::env::temp_dir().join(format!("mupod_report_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.md");
        let mut rep = Report {
            buffer: String::new(),
            out: Some(path.clone()),
        };
        crate::report!(rep, "value {}", 41 + 1);
        crate::report!(rep);
        rep.finish();
        let payload = mupod_runtime::read_verified(&path).expect("sealed report verifies");
        assert_eq!(payload, b"value 42\n\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quick_size_smaller_than_full() {
        let q = RunSize::quick();
        let full = RunSize::full();
        assert!(q.eval_images < full.eval_images);
        assert!(q.n_deltas < full.n_deltas);
    }
}
