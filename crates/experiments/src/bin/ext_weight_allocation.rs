//! EXP-EXT1 — extension: analytical per-layer *weight* bitwidths.
//!
//! The paper handles weights with Stripes' uniform empirical search
//! (§V-E). Its own Eq. 2 suggests the analytical treatment generalizes;
//! this experiment runs the generalization: profile `Δ_{W_K}` vs output
//! error (same Eq. 5 machinery, noise into the weights), allocate a
//! weight-error budget across layers with Eq. 8 weighted by per-layer
//! weight storage, and compare the resulting storage bits against the
//! uniform-width search at the same accuracy floor.

use mupod_core::{
    profile_weights, search_weight_bits, AccuracyEvaluator, AccuracyMode, Objective,
    PrecisionOptimizer, ProfileConfig,
};
use mupod_experiments::{f, markdown_table, pct, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_nn::Network;
use mupod_quant::FixedPointFormat;
use std::collections::HashMap;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::Nin, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::Nin.analyzable_layers(net);
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);
    let loss = 0.035;
    let target = ev.fp_accuracy() * (1.0 - loss);

    // Input formats from the standard pipeline (held fixed below).
    let input_opt = PrecisionOptimizer::new(net, &prepared.eval)
        .layers(layers.clone())
        .relative_accuracy_loss(loss)
        .profile_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile_images(size.profile_images)
        .run(Objective::Bandwidth)
        .map_err(|e| ExperimentError::Optimize(format!("input optimization: {e}")))?;
    let input_formats: HashMap<_, _> = layers
        .iter()
        .zip(input_opt.allocation.layers())
        .map(|(&id, lf)| (id, lf.format))
        .collect();

    // Baseline: §V-E uniform weight search.
    let (uniform_w, uniform_acc) = search_weight_bits(
        net,
        &prepared.eval,
        AccuracyMode::FpAgreement,
        &input_formats,
        target,
        2,
        16,
    );

    // Extension: per-layer analytical weight allocation.
    let n_images = size.profile_images.min(prepared.eval.len());
    let w_profile = profile_weights(
        net,
        &prepared.eval.images()[..n_images],
        &layers,
        &ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: 10,
            ..Default::default()
        },
    )
    .map_err(|e| ExperimentError::Profile(format!("weight profiling: {e}")))?;

    // Give the weights the σ budget the input search found, scaled down:
    // inputs and weights share the output-error variance, so grant each
    // half (√½ on the s.d.).
    let sigma_w = input_opt.sigma.sigma.max(1e-6) * 0.5f64.sqrt();
    let outcome = mupod_core::allocate(
        &w_profile,
        sigma_w,
        &Objective::Bandwidth, // ρ = per-layer weight storage
        &Default::default(),
    );

    // Validate: quantize weights per layer AND inputs, measure accuracy.
    let analytic_acc = {
        let mut q: Network = net.clone();
        for (&id, lf) in layers.iter().zip(outcome.allocation.layers()) {
            let (weight, bias) = match &net.node(id).op {
                mupod_nn::Op::Conv2d { weight, bias, .. }
                | mupod_nn::Op::FullyConnected { weight, bias } => (weight.clone(), bias.clone()),
                _ => {
                    return Err(ExperimentError::Invariant(format!(
                        "layer {id} is not a dot-product layer"
                    )))
                }
            };
            let mut w = weight;
            lf.format.quantize_tensor(&mut w);
            let bias_max = bias.iter().fold(0.0f32, |m, b| m.max(b.abs()));
            let bias_fmt = FixedPointFormat::new(
                FixedPointFormat::int_bits_for_max_abs(bias_max as f64),
                lf.format.frac_bits(),
            );
            let b2: Vec<f32> = bias.iter().map(|&b| bias_fmt.quantize_f32(b)).collect();
            q.set_layer_weights(id, w, b2);
        }
        ev.accuracy_of_network_with_formats(&q, &input_formats)
    };

    let weight_counts: Vec<u64> = w_profile.layers().iter().map(|l| l.input_elems).collect();
    let total_uniform: f64 = weight_counts
        .iter()
        .map(|&n| n as f64 * uniform_w as f64)
        .sum();
    let analytic_bits = outcome.allocation.bits();
    let total_analytic: f64 = weight_counts
        .iter()
        .zip(&analytic_bits)
        .map(|(&n, &b)| n as f64 * b as f64)
        .sum();

    mupod_experiments::report!(
        rep,
        "# EXP-EXT1: analytical per-layer weight bitwidths (extension)"
    );
    mupod_experiments::report!(rep);
    let rows: Vec<Vec<String>> = w_profile
        .layers()
        .iter()
        .zip(&analytic_bits)
        .map(|(l, &b)| {
            vec![
                l.name.clone(),
                l.input_elems.to_string(),
                f(l.lambda, 3),
                f(l.max_abs, 3),
                uniform_w.to_string(),
                b.to_string(),
            ]
        })
        .collect();
    mupod_experiments::report!(
        rep,
        "{}",
        markdown_table(
            &[
                "layer",
                "#weights",
                "lambda_w",
                "max|W|",
                "uniform W",
                "analytic W"
            ],
            &rows
        )
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "weight storage: uniform {} kbit -> analytic {} kbit ({}% saving)",
        f(total_uniform / 1e3, 1),
        f(total_analytic / 1e3, 1),
        pct((1.0 - total_analytic / total_uniform) * 100.0)
    );
    mupod_experiments::report!(
        rep,
        "accuracy at floor {:.3}: uniform {:.3}, analytic {:.3}",
        target,
        uniform_acc,
        analytic_acc
    );
    mupod_experiments::report!(
        rep,
        "(the paper's uniform W plus its own Eq. 2 imply this generalization; it\n\
         trades storage between layers exactly like the input allocation does)"
    );
    rep.finish();
    Ok(())
}
