//! EXP-F1 — Fig. 1: error-shape propagation.
//!
//! The paper's Fig. 1 illustrates the statistical backbone of the whole
//! method: uniform rounding error injected at one layer's input turns
//! into an approximately Gaussian error at the network output. This
//! binary reproduces the figure's data: it injects `U[-Δ, Δ]` at a
//! middle layer of AlexNet, collects the input-error and output-error
//! populations, prints their histograms, and quantifies the shapes
//! (total-variation distance against the matching uniform / normal
//! reference densities).

use mupod_experiments::{f, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_nn::tap::{InputTap, UniformNoiseTap};
use mupod_stats::histogram::normal_pdf;
use mupod_stats::{Histogram, RunningStats, SeededRng};

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::AlexNet, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::AlexNet.analyzable_layers(net);
    let layer = layers[2]; // conv3: a middle layer, as in the figure
    let delta = 0.5;

    let mut input_errors = RunningStats::new();
    let mut output_errors = RunningStats::new();
    let mut in_hist = Histogram::new(-delta * 1.2, delta * 1.2, 41);
    let mut out_samples: Vec<f64> = Vec::new();

    let rng = SeededRng::new(0xF16);
    for (i, img) in prepared.eval.images().iter().enumerate() {
        let base = net.forward(img);
        // Capture the injected input error by tapping the same tensor the
        // executor would.
        let producer = net.node(layer).inputs[0];
        let clean_in = base.get(producer).clone();
        let mut tap = UniformNoiseTap::single(layer, delta, rng.fork(i as u64));
        let mut noisy_in = clean_in.clone();
        tap.apply(layer, &mut noisy_in);
        for (a, b) in noisy_in.data().iter().zip(clean_in.data()) {
            // lint:allow(no-float-eq) reason=the noise tap skips exactly-zero activations, so only nonzero entries carry an injected error worth sampling
            if *b != 0.0 {
                let e = (a - b) as f64;
                input_errors.push(e);
                in_hist.push(e);
            }
        }
        // Replay the suffix with the same seed to get the matching output
        // error.
        let mut tap2 = UniformNoiseTap::single(layer, delta, rng.fork(i as u64));
        let noisy_out = net.forward_suffix(&base, layer, &mut tap2);
        for (a, b) in noisy_out.data().iter().zip(net.output(&base).data()) {
            let e = (a - b) as f64;
            output_errors.push(e);
            out_samples.push(e);
        }
    }

    mupod_experiments::report!(rep, "# EXP-F1: error shapes (Fig. 1)");
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "Injected U[-{delta}, {delta}] at layer `{}` over {} images.",
        net.node(layer).name,
        prepared.eval.len()
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "Input error:  mean {} | s.d. {} (theory: Δ/√3 = {})",
        f(input_errors.mean(), 5),
        f(input_errors.population_std(), 5),
        f(delta / 3.0f64.sqrt(), 5),
    );
    let out_sd = output_errors.population_std();
    mupod_experiments::report!(
        rep,
        "Output error: mean {} | s.d. {}",
        f(output_errors.mean(), 5),
        f(out_sd, 5),
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(rep, "Input-error histogram (should be flat / uniform):");
    mupod_experiments::report!(rep, "{}", in_hist.render_ascii(48));
    let mut out_hist = Histogram::new(-4.0 * out_sd, 4.0 * out_sd, 41);
    out_hist.extend(out_samples.iter().copied());
    mupod_experiments::report!(
        rep,
        "Output-error histogram (should be bell-shaped / Gaussian):"
    );
    mupod_experiments::report!(rep, "{}", out_hist.render_ascii(48));

    let tv_gauss = out_hist.total_variation_vs(|x| normal_pdf(x, 0.0, out_sd));
    let uniform_halfwidth = out_sd * 3.0f64.sqrt();
    let tv_unif = out_hist.total_variation_vs(|x| {
        if x.abs() <= uniform_halfwidth {
            1.0 / (2.0 * uniform_halfwidth)
        } else {
            0.0
        }
    });
    mupod_experiments::report!(
        rep,
        "Output-error TV distance: vs N(0, σ²) = {} | vs uniform = {}",
        f(tv_gauss, 4),
        f(tv_unif, 4)
    );
    mupod_experiments::report!(
        rep,
        "=> output error is {} (paper: output error ≈ Gaussian)",
        if tv_gauss < tv_unif {
            "closer to Gaussian"
        } else {
            "NOT Gaussian-shaped — check the model"
        }
    );
    rep.finish();
    Ok(())
}
