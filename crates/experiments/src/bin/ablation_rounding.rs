//! EXP-ABL3 — ablation: nearest vs stochastic rounding on a very deep
//! network.
//!
//! The paper's error model treats rounding as zero-mean white noise.
//! Nearest rounding deviates from that model through a signal-correlated
//! bias; stochastic rounding is unbiased but carries *twice* the error
//! variance (`step²/6` vs `step²/12`). Which effect dominates is an
//! empirical question this ablation answers by measuring both rounding
//! modes at identical per-layer formats on ResNet-152 across a sweep of
//! uniform bitwidths. (Measured outcome at this scale: the variance
//! penalty wins — nearest rounding is consistently better — which
//! supports the paper's choice of correct rounding.)

use mupod_core::{AccuracyEvaluator, AccuracyMode};
use mupod_experiments::{f, find_layer, markdown_table, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_nn::inventory::LayerInventory;
use mupod_quant::FixedPointFormat;
use std::collections::HashMap;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::ResNet152, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::ResNet152.analyzable_layers(net);
    let inventory = LayerInventory::measure(net, prepared.eval.images().iter().cloned());
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);

    mupod_experiments::report!(
        rep,
        "# EXP-ABL3: nearest vs stochastic rounding (ResNet-152, {} layers)",
        layers.len()
    );
    mupod_experiments::report!(rep);
    let mut rows = Vec::new();
    for bits in [14u32, 12, 10, 9, 8, 7, 6] {
        let mut formats = HashMap::new();
        for &id in &layers {
            let info = find_layer(&inventory, id)?;
            let i = FixedPointFormat::int_bits_for_max_abs(info.max_abs);
            formats.insert(id, FixedPointFormat::new(i, bits as i32 - i));
        }
        let nearest = ev.accuracy_quantized(&formats);
        let stochastic = ev.accuracy_quantized_stochastic(&formats, 0xAB3);
        rows.push(vec![
            bits.to_string(),
            f(nearest, 3),
            f(stochastic, 3),
            f(stochastic - nearest, 3),
        ]);
    }
    mupod_experiments::report!(
        rep,
        "{}",
        markdown_table(
            &[
                "uniform bits",
                "nearest",
                "stochastic",
                "Δ(stoch − nearest)"
            ],
            &rows
        )
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "Negative Δ means nearest rounding wins: its correlated bias costs less\n\
         than stochastic rounding's doubled error variance (step²/6 vs step²/12).\n\
         This supports the paper's use of correct (nearest) rounding."
    );
    rep.finish();
    Ok(())
}
