//! EXP-F3 — Fig. 3: accuracy vs `σ_{Y_Ł}` under the two schemes, ξ
//! corner-case error bars, and output-error normality.
//!
//! Reproduces all three elements of the paper's Fig. 3 on AlexNet:
//!
//! * the `equal_scheme` series (Scheme 1: uniform noise in every layer
//!   with `ξ_K = 1/Ł`);
//! * the `gaussian_approx` series (Scheme 2: `N(0, σ²)` at the logits);
//! * "error bars": the worst accuracy deviation over the ξ corner cases
//!   `ξ_K = 0.8` (rest sharing 0.2 equally), the same corners the paper
//!   tests;
//! * the output-error histogram vs a perfect `N(0, 1)` (the paper
//!   measures s.d. 0.99, mean 7e-5 on 5×10⁵ values).

use mupod_core::{AccuracyEvaluator, AccuracyMode, ProfileConfig, Profiler};
use mupod_experiments::{f, markdown_table, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_nn::NodeId;
use mupod_stats::histogram::standard_normal_pdf;
use mupod_stats::{Histogram, RunningStats, SeededRng};
use std::collections::HashMap;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::AlexNet, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::AlexNet.analyzable_layers(net);
    let images = &prepared.eval.images()[..size.profile_images.min(prepared.eval.len())];
    let profile = Profiler::new(net, images)
        .with_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile(&layers)
        .map_err(|e| ExperimentError::Profile(e.to_string()))?;
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);
    let l = layers.len() as f64;

    mupod_experiments::report!(rep, "# EXP-F3: σ_YŁ vs accuracy (Fig. 3)");
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "AlexNet, {} eval images, fp-agreement accuracy (relative accuracy).",
        prepared.eval.len()
    );
    mupod_experiments::report!(rep);

    // Anchor the sweep on the clean logit scale: the paper's absolute σ
    // axis (0..1.5) presumes ImageNet-scale logits; sweeping relative to
    // the logit s.d. reproduces the same accuracy range on any scale.
    let mut logit_stats = RunningStats::new();
    for img in prepared.eval.images() {
        let acts = net.forward(img);
        logit_stats.extend(net.output(&acts).data().iter().map(|&v| v as f64));
    }
    let logit_sd = logit_stats.population_std();
    mupod_experiments::report!(
        rep,
        "clean logit s.d. = {} (sweep is relative to it)",
        f(logit_sd, 3)
    );
    mupod_experiments::report!(rep);
    let sigmas: Vec<f64> = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2]
        .iter()
        .map(|m| m * logit_sd)
        .collect();
    let mut rows = Vec::new();
    for (si, &sigma) in sigmas.iter().enumerate() {
        // Scheme 1 (equal_scheme), averaged over 3 seeds as in the paper.
        let mut equal_acc = 0.0;
        for rep in 0..3u64 {
            let deltas: HashMap<NodeId, f64> = profile
                .layers()
                .iter()
                .map(|lp| (lp.node, lp.delta_for(sigma, 1.0 / l)))
                .collect();
            equal_acc += ev.accuracy_uniform_noise(&deltas, 0xF3 + rep + 100 * si as u64);
        }
        equal_acc /= 3.0;

        // Scheme 2 (gaussian_approx), averaged over 3 seeds.
        let mut gauss_acc = 0.0;
        for rep in 0..3u64 {
            gauss_acc += ev.accuracy_gaussian_output(sigma, 0x6A + rep + 100 * si as u64);
        }
        gauss_acc /= 3.0;

        // Corner cases: ξ_k = 0.8, rest share 0.2 — worst deviation from
        // the equal scheme.
        let mut worst_dev: f64 = 0.0;
        for heavy in 0..layers.len() {
            let deltas: HashMap<NodeId, f64> = profile
                .layers()
                .iter()
                .enumerate()
                .map(|(k, lp)| {
                    let xi = if k == heavy { 0.8 } else { 0.2 / (l - 1.0) };
                    (lp.node, lp.delta_for(sigma, xi))
                })
                .collect();
            let acc = ev.accuracy_uniform_noise(&deltas, 0xC0 + heavy as u64);
            worst_dev = worst_dev.max((acc - equal_acc).abs());
        }

        rows.push(vec![
            f(sigma, 2),
            f(equal_acc, 3),
            f(gauss_acc, 3),
            f(worst_dev, 3),
        ]);
    }
    mupod_experiments::report!(
        rep,
        "{}",
        markdown_table(
            &[
                "sigma_YL",
                "equal_scheme",
                "gaussian_approx",
                "xi=0.8 max dev"
            ],
            &rows
        )
    );
    mupod_experiments::report!(
        rep,
        "(paper: the two series track each other; corner-case variation is\n\
         tolerable while accuracy loss stays below ~5%)"
    );
    mupod_experiments::report!(rep);

    // Output-error histogram vs N(0,1): inject with equal scheme at a
    // mid-sweep σ, collect normalized output errors.
    let sigma = 0.2 * logit_sd;
    let deltas: HashMap<NodeId, f64> = profile
        .layers()
        .iter()
        .map(|lp| (lp.node, lp.delta_for(sigma, 1.0 / l)))
        .collect();
    let rng = SeededRng::new(0x415);
    let mut stats = RunningStats::new();
    let mut samples = Vec::new();
    for (i, img) in prepared.eval.images().iter().enumerate() {
        let base = net.forward(img);
        let mut tap = mupod_nn::tap::UniformNoiseTap::new(deltas.clone(), rng.fork(i as u64));
        let noisy = net.forward_tapped(img, &mut tap);
        for (a, b) in net
            .output(&noisy)
            .data()
            .iter()
            .zip(net.output(&base).data())
        {
            let e = (a - b) as f64;
            stats.push(e);
            samples.push(e);
        }
    }
    let sd = stats.population_std();
    let mut hist = Histogram::new(-4.0, 4.0, 41);
    hist.extend(samples.iter().map(|e| e / sd));
    mupod_experiments::report!(
        rep,
        "Output error at σ target {}: measured s.d. = {}, mean = {:.2e} on {} values",
        f(sigma, 3),
        f(sd, 3),
        stats.mean(),
        stats.count()
    );
    mupod_experiments::report!(
        rep,
        "(paper: s.d. 0.99, mean 7e-5 on 5×10⁵ values — i.e. the injected σ is realized)"
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(rep, "Normalized output-error histogram vs N(0,1):");
    mupod_experiments::report!(rep, "{}", hist.render_ascii(48));
    mupod_experiments::report!(
        rep,
        "TV distance vs N(0,1): {}",
        f(hist.total_variation_vs(standard_normal_pdf), 4)
    );
    rep.finish();
    Ok(())
}
