//! EXP-T2 — Table II: AlexNet optimized for two objectives at 1 %
//! relative accuracy loss.
//!
//! Reproduces the paper's case study end to end: per-layer `#Input`,
//! `#MAC` and `max|X_K|`; a baseline bitwidth assignment (the paper uses
//! Stripes' published (9,7,4,5,7); our scaled network gets the
//! equivalent — a Stripes-style greedy search); and the two optimized
//! rows `Opt_for_#Input` and `Opt_for_#MAC`, with total input bits /
//! MAC bits and the percentage savings. The paper reports 15 % input-
//! traffic saving and 9.5 % MAC-bit saving over its baseline.

use mupod_baselines::greedy_search;
use mupod_core::{AccuracyEvaluator, AccuracyMode, Objective, PrecisionOptimizer, ProfileConfig};
use mupod_experiments::{find_layer, markdown_table, pct, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_nn::inventory::LayerInventory;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::AlexNet, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::AlexNet.analyzable_layers(net);
    let inventory = LayerInventory::measure(net, prepared.eval.images().iter().cloned());
    let infos: Vec<_> = layers
        .iter()
        .map(|&id| find_layer(&inventory, id).cloned())
        .collect::<Result<_, _>>()?;
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);
    let target = ev.fp_accuracy() * 0.99;

    // Baseline: Stripes-style greedy search (the paper's baseline row is
    // Stripes' published search result).
    let rho_inputs: Vec<f64> = infos.iter().map(|i| i.input_elems as f64).collect();
    let baseline = greedy_search(&ev, &inventory, &layers, &rho_inputs, target, 16);
    let base_bits = baseline.allocation.bits();

    // Optimized rows.
    let optimizer = PrecisionOptimizer::new(net, &prepared.eval)
        .layers(layers.clone())
        .relative_accuracy_loss(0.01)
        .profile_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile_images(size.profile_images);
    let opt_input = optimizer
        .run(Objective::Bandwidth)
        .map_err(|e| ExperimentError::Optimize(format!("input objective: {e}")))?;
    let opt_mac = PrecisionOptimizer::new(net, &prepared.eval)
        .layers(layers.clone())
        .relative_accuracy_loss(0.01)
        .with_profile(opt_input.profile.clone())
        .run(Objective::MacEnergy)
        .map_err(|e| ExperimentError::Optimize(format!("mac objective: {e}")))?;

    let input_bits_of = |bits: &[u32]| -> Vec<f64> {
        infos
            .iter()
            .zip(bits)
            .map(|(i, &b)| i.input_elems as f64 * b as f64)
            .collect()
    };
    let mac_bits_of = |bits: &[u32]| -> Vec<f64> {
        infos
            .iter()
            .zip(bits)
            .map(|(i, &b)| i.macs as f64 * b as f64)
            .collect()
    };
    let total = |v: &[f64]| v.iter().sum::<f64>();

    let in_base = input_bits_of(&base_bits);
    let mac_base = mac_bits_of(&base_bits);
    let in_opt = input_bits_of(&opt_input.allocation.bits());
    let mac_opt = mac_bits_of(&opt_mac.allocation.bits());

    mupod_experiments::report!(
        rep,
        "# EXP-T2: AlexNet multi-objective optimization (Table II)"
    );
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "σ_YŁ = {:.4} (paper: ≈0.32 on ImageNet-scale AlexNet), fp-agreement\n\
         accuracy, 1% relative loss, {} eval images.",
        opt_input.sigma.sigma,
        prepared.eval.len()
    );
    mupod_experiments::report!(rep);

    let mut header = vec!["row"];
    let names: Vec<String> = infos.iter().map(|i| i.name.clone()).collect();
    header.extend(names.iter().map(|s| s.as_str()));
    header.push("Total");

    let row = |label: &str, cells: Vec<String>, total: String| -> Vec<String> {
        let mut r = vec![label.to_string()];
        r.extend(cells);
        r.push(total);
        r
    };
    let rows = vec![
        row(
            "#Input(x10^3)",
            infos
                .iter()
                .map(|i| format!("{:.1}", i.input_elems as f64 / 1e3))
                .collect(),
            format!(
                "{:.1}",
                infos.iter().map(|i| i.input_elems).sum::<u64>() as f64 / 1e3
            ),
        ),
        row(
            "#MAC(x10^6)",
            infos
                .iter()
                .map(|i| format!("{:.2}", i.macs as f64 / 1e6))
                .collect(),
            format!(
                "{:.2}",
                infos.iter().map(|i| i.macs).sum::<u64>() as f64 / 1e6
            ),
        ),
        row(
            "max|X_K|",
            infos.iter().map(|i| format!("{:.0}", i.max_abs)).collect(),
            "-".into(),
        ),
        row(
            "Baseline (greedy)",
            base_bits.iter().map(|b| b.to_string()).collect(),
            "-".into(),
        ),
        row(
            "#Input_bits(x10^3)",
            in_base.iter().map(|v| format!("{:.1}", v / 1e3)).collect(),
            format!("{:.1}", total(&in_base) / 1e3),
        ),
        row(
            "#MAC_bits(x10^6)",
            mac_base.iter().map(|v| format!("{:.1}", v / 1e6)).collect(),
            format!("{:.1}", total(&mac_base) / 1e6),
        ),
        row(
            "Opt_for_#Input",
            opt_input
                .allocation
                .bits()
                .iter()
                .map(|b| b.to_string())
                .collect(),
            "-".into(),
        ),
        row(
            "#Input_bits(x10^3)",
            in_opt.iter().map(|v| format!("{:.1}", v / 1e3)).collect(),
            format!("{:.1}", total(&in_opt) / 1e3),
        ),
        row(
            "Opt_for_#MAC",
            opt_mac
                .allocation
                .bits()
                .iter()
                .map(|b| b.to_string())
                .collect(),
            "-".into(),
        ),
        row(
            "#MAC_bits(x10^6)",
            mac_opt.iter().map(|v| format!("{:.1}", v / 1e6)).collect(),
            format!("{:.1}", total(&mac_opt) / 1e6),
        ),
    ];
    mupod_experiments::report!(rep, "{}", markdown_table(&header, &rows));

    let input_saving = (1.0 - total(&in_opt) / total(&in_base)) * 100.0;
    let mac_saving = (1.0 - total(&mac_opt) / total(&mac_base)) * 100.0;
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "Input-traffic saving vs baseline: {}%  (paper: 15% vs Stripes baseline)",
        pct(input_saving)
    );
    mupod_experiments::report!(
        rep,
        "MAC-bits saving vs baseline:      {}%  (paper: 9.5%)",
        pct(mac_saving)
    );
    mupod_experiments::report!(
        rep,
        "Validated accuracies: opt-input {:.3}, opt-mac {:.3} (target {:.3}; baseline {:.3})",
        opt_input.validated_accuracy,
        opt_mac.validated_accuracy,
        target,
        baseline.accuracy
    );
    mupod_experiments::report!(rep,
        "Baseline search spent {} accuracy evaluations; analytical method spent {} (σ search only).",
        baseline.evaluations, opt_input.sigma.evaluations
    );
    rep.finish();
    Ok(())
}
