//! EXP-ABL1 — ablation: why Eq. 5 needs the intercept `θ_K`.
//!
//! Lin et al. (the paper's reference \[4\]) model the cross-layer
//! relationship as a pure proportionality, i.e. `θ_K = 0`. The paper's
//! §III-B argues that grouping all outputs of a layer into one error
//! distribution (with its inter-location correlations) requires the
//! additive constant. This ablation profiles AlexNet, then allocates
//! bitwidths twice — with the fitted `θ_K` and with `θ_K` forced to
//! zero — and compares (a) the Eq. 5 prediction quality and (b) the
//! realized accuracy of the resulting allocations.

use mupod_core::{
    allocate, AccuracyEvaluator, AccuracyMode, AllocateConfig, Objective, ProfileConfig, Profiler,
    SigmaSearch,
};
use mupod_experiments::{f, markdown_table, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;
use mupod_stats::LinearFit;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::AlexNet, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::AlexNet.analyzable_layers(net);
    let images = &prepared.eval.images()[..size.profile_images.min(prepared.eval.len())];
    let profile = Profiler::new(net, images)
        .with_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile(&layers)
        .map_err(|e| ExperimentError::Profile(e.to_string()))?;

    mupod_experiments::report!(
        rep,
        "# EXP-ABL1: the θ intercept ablation (vs Lin et al. [4])"
    );
    mupod_experiments::report!(rep);

    // (a) Fit quality with and without the intercept, per layer.
    let rows: Vec<Vec<String>> = profile
        .layers()
        .iter()
        .map(|l| {
            let sigmas: Vec<f64> = l.sweep.iter().map(|(s, _)| *s).collect();
            let deltas: Vec<f64> = l.sweep.iter().map(|(_, d)| *d).collect();
            // Through-origin fit: slope = Σwxy/Σwx² with relative weights.
            let w: Vec<f64> = deltas.iter().map(|d| 1.0 / (d * d)).collect();
            let num: f64 = sigmas
                .iter()
                .zip(&deltas)
                .zip(&w)
                .map(|((s, d), w)| w * s * d)
                .sum();
            let den: f64 = sigmas.iter().zip(&w).map(|(s, w)| w * s * s).sum();
            let slope0 = num / den;
            let no_theta = LinearFit {
                slope: slope0,
                intercept: 0.0,
                r_squared: 0.0,
                n: sigmas.len(),
            };
            vec![
                l.name.clone(),
                f(l.theta, 5),
                format!("{:.1}%", l.max_relative_error * 100.0),
                format!(
                    "{:.1}%",
                    no_theta.max_relative_error(&sigmas, &deltas) * 100.0
                ),
            ]
        })
        .collect();
    mupod_experiments::report!(
        rep,
        "{}",
        markdown_table(
            &[
                "layer",
                "theta",
                "max rel err (with θ)",
                "max rel err (θ=0)"
            ],
            &rows
        )
    );

    // (b) Allocation accuracy with both profiles at the same σ budget.
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);
    let target = ev.fp_accuracy() * 0.99;
    let sigma = SigmaSearch::default().search(&profile, &ev, target).sigma;
    let cfg = AllocateConfig::default();
    let with_theta = allocate(&profile, sigma, &Objective::Bandwidth, &cfg);
    let zero_theta = allocate(
        &profile.with_zero_theta(),
        sigma,
        &Objective::Bandwidth,
        &cfg,
    );
    let acc_with = ev.accuracy_of_allocation(&layers, &with_theta.allocation);
    let acc_zero = ev.accuracy_of_allocation(&layers, &zero_theta.allocation);
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "At the searched σ = {:.3} (1% loss target {:.3}):",
        sigma,
        target
    );
    mupod_experiments::report!(
        rep,
        "  with θ: bits {:?}, validated accuracy {:.3}",
        with_theta.allocation.bits(),
        acc_with
    );
    mupod_experiments::report!(
        rep,
        "  θ = 0 : bits {:?}, validated accuracy {:.3}",
        zero_theta.allocation.bits(),
        acc_zero
    );
    let bits_with: u32 = with_theta.allocation.bits().iter().sum();
    let bits_zero: u32 = zero_theta.allocation.bits().iter().sum();
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "θ=0 shifts the allocation by {} total bits and {} accuracy; a positive θ\n\
         grants coarser formats at the same output budget, a negative θ guards\n\
         against over-coarsening. Forcing θ=0 degrades the Δ prediction (table\n\
         above), which is the paper's argument for generalizing [4].",
        bits_zero as i64 - bits_with as i64,
        f(acc_zero - acc_with, 3)
    );
    rep.finish();
    Ok(())
}
