//! EXP-F4 — Fig. 4: NiN per-layer bitwidths and MAC energy.
//!
//! The paper's Fig. 4 shows the energy-optimized allocation on NiN's 12
//! layers: bitwidth is *added* to power-cheap layers so that power-hungry
//! layers (1, 4, 7, 10 — the spatial convolutions) can shed bits,
//! buying a 22.8 % total MAC-energy saving at a small bandwidth cost.
//! This binary prints the per-layer baseline-vs-optimized bitwidths, the
//! per-layer energies, and both totals.

use mupod_baselines::uniform_search;
use mupod_core::{AccuracyEvaluator, AccuracyMode, Objective, PrecisionOptimizer, ProfileConfig};
use mupod_experiments::{f, find_layer, markdown_table, pct, prepare, ExperimentError, RunSize};
use mupod_hw::{bandwidth, MacEnergyModel};
use mupod_models::ModelKind;
use mupod_nn::inventory::LayerInventory;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let prepared = prepare(ModelKind::Nin, &size)?;
    let net = &prepared.net;
    let layers = ModelKind::Nin.analyzable_layers(net);
    let inventory = LayerInventory::measure(net, prepared.eval.images().iter().cloned());
    let ev = AccuracyEvaluator::new(net, &prepared.eval, AccuracyMode::FpAgreement);
    // The paper uses NiN at a 3.5% accuracy target (footnote 1: Stripes'
    // own NiN bitwidths lose 3.5%, so they matched it).
    let loss = 0.035;
    let target = ev.fp_accuracy() * (1.0 - loss);

    let base = uniform_search(&ev, &inventory, &layers, target, 16);
    let opt = PrecisionOptimizer::new(net, &prepared.eval)
        .layers(layers.clone())
        .relative_accuracy_loss(loss)
        .profile_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile_images(size.profile_images)
        .run(Objective::MacEnergy)
        .map_err(|e| ExperimentError::Optimize(format!("mac optimization: {e}")))?;

    let model = MacEnergyModel::dwip_40nm();
    let weight_bits = 8;
    let mut macs: Vec<u64> = Vec::with_capacity(layers.len());
    let mut inputs: Vec<u64> = Vec::with_capacity(layers.len());
    for &id in &layers {
        let info = find_layer(&inventory, id)?;
        macs.push(info.macs);
        inputs.push(info.input_elems);
    }
    let base_bits = base.allocation.bits();
    let opt_bits = opt.allocation.bits();

    mupod_experiments::report!(rep, "# EXP-F4: NiN per-layer MAC energy (Fig. 4)");
    mupod_experiments::report!(rep);
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(layers.len());
    for k in 0..layers.len() {
        rows.push(vec![
            format!("{}", k + 1),
            find_layer(&inventory, layers[k])?.name.clone(),
            format!("{:.2}", macs[k] as f64 / 1e6),
            base_bits[k].to_string(),
            opt_bits[k].to_string(),
            f(
                model.layer_energy(macs[k], base_bits[k], weight_bits) / 1e6,
                3,
            ),
            f(
                model.layer_energy(macs[k], opt_bits[k], weight_bits) / 1e6,
                3,
            ),
        ]);
    }
    mupod_experiments::report!(
        rep,
        "{}",
        markdown_table(
            &[
                "#",
                "layer",
                "MAC(x10^6)",
                "base bits",
                "opt bits",
                "base uJ",
                "opt uJ",
            ],
            &rows
        )
    );

    let e_base = model.network_energy(&macs, &base_bits, weight_bits);
    let e_opt = model.network_energy(&macs, &opt_bits, weight_bits);
    let bw_base = bandwidth::total_input_bits(&inputs, &base_bits);
    let bw_opt = bandwidth::total_input_bits(&inputs, &opt_bits);
    mupod_experiments::report!(rep);
    mupod_experiments::report!(
        rep,
        "Total MAC energy: baseline {} µJ -> optimized {} µJ  ({}% saving; paper: 22.8%)",
        f(e_base / 1e6, 3),
        f(e_opt / 1e6, 3),
        pct(MacEnergyModel::saving_percent(e_base, e_opt))
    );
    mupod_experiments::report!(
        rep,
        "Bandwidth cost of the energy objective: {}% (paper: 5.6% WORSE than baseline)",
        pct(bandwidth::saving_percent(bw_base, bw_opt))
    );
    let heavy: Vec<usize> = (0..layers.len())
        .filter(|&k| macs[k] as f64 > 1.5 * macs.iter().sum::<u64>() as f64 / macs.len() as f64)
        .map(|k| k + 1)
        .collect();
    mupod_experiments::report!(
        rep,
        "Power-hungry layers (above 1.5x mean MACs): {heavy:?} — these should have\n\
         opt bits <= base bits while cheap layers may gain bits."
    );
    rep.finish();
    Ok(())
}
