//! EXP-F2 — Fig. 2: the cross-layer linear relationship (Eq. 5).
//!
//! The paper's central empirical claim: for every layer `K`,
//! `Δ_{X_K} ≈ λ_K σ_{Y_{K→Ł}} + θ_K`, with the regression predicting
//! `Δ` "mostly with a < 5 % error … in the worst case about 10 %". The
//! paper plots VGG-19 and GoogleNet; this binary profiles both, prints
//! each layer's fitted line and quality metrics, and checks the error
//! bound (with headroom for the reduced reproduction scale — see
//! `EXPERIMENTS.md`).

use mupod_core::{ProfileConfig, Profiler};
use mupod_experiments::{f, markdown_table, prepare, ExperimentError, RunSize};
use mupod_models::ModelKind;

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    mupod_experiments::report!(rep, "# EXP-F2: Δ vs σ cross-layer linearity (Fig. 2)");
    for kind in [ModelKind::Vgg19, ModelKind::GoogleNet] {
        let prepared = prepare(kind, &size)?;
        let net = &prepared.net;
        let layers = kind.analyzable_layers(net);
        let images = &prepared.eval.images()[..size.profile_images.min(prepared.eval.len())];
        let profile = Profiler::new(net, images)
            .with_config(ProfileConfig {
                n_deltas: size.n_deltas,
                repeats: size.repeats,
                ..Default::default()
            })
            .profile(&layers)
            .map_err(|e| ExperimentError::Profile(format!("{kind}: {e}")))?;

        mupod_experiments::report!(rep);
        mupod_experiments::report!(
            rep,
            "## {kind} — {} layers, {} images × {} logits × {} repeats per point",
            layers.len(),
            images.len(),
            prepared.scale.classes,
            size.repeats
        );
        mupod_experiments::report!(rep);
        let rows: Vec<Vec<String>> = profile
            .layers()
            .iter()
            .map(|l| {
                vec![
                    l.name.clone(),
                    f(l.lambda, 4),
                    f(l.theta, 5),
                    f(l.r_squared, 4),
                    format!("{:.1}%", l.max_relative_error * 100.0),
                ]
            })
            .collect();
        mupod_experiments::report!(
            rep,
            "{}",
            markdown_table(&["layer", "lambda", "theta", "R^2", "max rel err"], &rows)
        );
        let n_ok = profile
            .layers()
            .iter()
            .filter(|l| l.max_relative_error < 0.10)
            .count();
        mupod_experiments::report!(rep,
            "layers with < 10% worst-case prediction error: {}/{} | worst overall: {:.1}% | min R² {:.4}",
            n_ok,
            profile.len(),
            profile.max_relative_error() * 100.0,
            profile.min_r_squared(),
        );
        mupod_experiments::report!(
            rep,
            "(paper: mostly < 5%, worst ~10%, on 500 ImageNet images × 1000 logits)"
        );
    }
    rep.finish();
    Ok(())
}
