//! EXP-T3 — Table III: all eight networks × {1 %, 5 %} loss × two
//! objectives.
//!
//! For every network the binary reports, at both accuracy budgets:
//! the §V-E weight bitwidth `W`; the baseline (smallest feasible uniform
//! bitwidth, the paper's fallback when Stripes published no numbers);
//! the `Optimized Input` and `Optimized MAC` allocations, each scored
//! under *both* effective-bitwidth criteria (as the paper's Input / MAC
//! column pairs); the bandwidth saving; and the MAC energy saving under
//! the DesignWare-style energy model. Averages close the table.
//!
//! Profiling — the expensive stage — runs once per network and is shared
//! across both loss budgets and both objectives, exactly the workflow
//! §VI-A describes.
//!
//! Run with `--nets AlexNet,NiN,...` to restrict rows (ResNet-152 is the
//! slow one), `--loss 1` or `--loss 5` for one budget only, and
//! `--quick` for a smoke-sized run.

use mupod_baselines::uniform_search;
use mupod_core::{
    search_weight_bits, AccuracyEvaluator, AccuracyMode, Objective, PrecisionOptimizer, Profile,
    ProfileConfig, Profiler,
};
use mupod_experiments::{
    f, find_layer, markdown_table, pct, prepare, ExperimentError, Prepared, RunSize,
};
use mupod_hw::{bandwidth, MacEnergyModel};
use mupod_models::ModelKind;
use mupod_nn::inventory::LayerInventory;
use mupod_quant::FixedPointFormat;
use std::collections::HashMap;

struct Row {
    name: String,
    layers: usize,
    weight_bits: u32,
    base_input_eff: f64,
    base_mac_eff: f64,
    oi_input_eff: f64,
    oi_mac_eff: f64,
    bw_save: f64,
    om_input_eff: f64,
    om_mac_eff: f64,
    energy_save: f64,
}

fn parse_filter() -> Result<(Vec<ModelKind>, Vec<f64>), ExperimentError> {
    let args: Vec<String> = std::env::args().collect();
    let mut kinds: Vec<ModelKind> = ModelKind::ALL.to_vec();
    let mut losses = vec![0.01, 0.05];
    for i in 0..args.len() {
        if args[i] == "--nets" && i + 1 < args.len() {
            kinds = args[i + 1]
                .split(',')
                .map(|n| {
                    ModelKind::ALL
                        .iter()
                        .copied()
                        .find(|k| k.name().eq_ignore_ascii_case(n.trim()))
                        .ok_or_else(|| {
                            ExperimentError::Usage(format!("unknown network `{}`", n.trim()))
                        })
                })
                .collect::<Result<_, _>>()?;
        }
        if args[i] == "--loss" && i + 1 < args.len() {
            let v: f64 = args[i + 1].parse().map_err(|_| {
                ExperimentError::Usage(format!("--loss wants a number, got `{}`", args[i + 1]))
            })?;
            losses = vec![v / 100.0];
        }
    }
    Ok((kinds, losses))
}

/// One prepared network plus everything loss-independent.
struct NetContext {
    prepared: Prepared,
    layers: Vec<mupod_nn::NodeId>,
    inputs: Vec<u64>,
    macs: Vec<u64>,
    rho_in: Vec<f64>,
    rho_mac: Vec<f64>,
    profile: Profile,
}

fn build_context(kind: ModelKind, size: &RunSize) -> Result<NetContext, ExperimentError> {
    eprintln!("[{kind}: preparing]");
    let prepared = prepare(kind, size)?;
    let layers = kind.analyzable_layers(&prepared.net);
    let inventory = LayerInventory::measure(&prepared.net, prepared.eval.images().iter().cloned());
    let mut inputs: Vec<u64> = Vec::with_capacity(layers.len());
    let mut macs: Vec<u64> = Vec::with_capacity(layers.len());
    for &id in &layers {
        let info = find_layer(&inventory, id)?;
        inputs.push(info.input_elems);
        macs.push(info.macs);
    }
    eprintln!("[{kind}: profiling {} layers]", layers.len());
    let n_images = size.profile_images.min(prepared.eval.len());
    let mut profile = Profiler::new(&prepared.net, &prepared.eval.images()[..n_images])
        .with_config(ProfileConfig {
            n_deltas: size.n_deltas,
            repeats: size.repeats,
            ..Default::default()
        })
        .profile(&layers)
        .map_err(|e| ExperimentError::Profile(format!("{kind}: {e}")))?;
    profile.update_ranges(inventory);
    Ok(NetContext {
        rho_in: inputs.iter().map(|&v| v as f64).collect(),
        rho_mac: macs.iter().map(|&v| v as f64).collect(),
        prepared,
        layers,
        inputs,
        macs,
        profile,
    })
}

fn row_for(
    ctx: &NetContext,
    loss: f64,
    size: &RunSize,
    energy_model: &MacEnergyModel,
) -> Result<Row, ExperimentError> {
    let kind = ctx.prepared.kind;
    let net = &ctx.prepared.net;
    let inventory = LayerInventory::measure(net, ctx.prepared.eval.images().iter().cloned());
    let ev = AccuracyEvaluator::new(net, &ctx.prepared.eval, AccuracyMode::FpAgreement);
    let target = ev.fp_accuracy() * (1.0 - loss);

    eprintln!("[{kind}: uniform baseline @ {:.0}%]", loss * 100.0);
    let base = uniform_search(&ev, &inventory, &ctx.layers, target, 16);
    let base_bits = base.allocation.bits();

    eprintln!("[{kind}: optimizing @ {:.0}%]", loss * 100.0);
    let oi = PrecisionOptimizer::new(net, &ctx.prepared.eval)
        .layers(ctx.layers.clone())
        .relative_accuracy_loss(loss)
        .with_profile(ctx.profile.clone())
        .profile_images(size.profile_images)
        .run(Objective::Bandwidth)
        .map_err(|e| ExperimentError::Optimize(format!("{kind} bandwidth: {e}")))?;
    let om = PrecisionOptimizer::new(net, &ctx.prepared.eval)
        .layers(ctx.layers.clone())
        .relative_accuracy_loss(loss)
        .with_profile(ctx.profile.clone())
        .run(Objective::MacEnergy)
        .map_err(|e| ExperimentError::Optimize(format!("{kind} mac energy: {e}")))?;

    eprintln!("[{kind}: weight search @ {:.0}%]", loss * 100.0);
    let formats: HashMap<_, FixedPointFormat> = ctx
        .layers
        .iter()
        .zip(oi.allocation.layers())
        .map(|(&id, lf)| (id, lf.format))
        .collect();
    let (weight_bits, _) = search_weight_bits(
        net,
        &ctx.prepared.eval,
        AccuracyMode::FpAgreement,
        &formats,
        target,
        2,
        16,
    );

    let eff = |bits: &[u32], rho: &[f64]| mupod_quant::effective_bitwidth(bits, rho);
    let oi_bits = oi.allocation.bits();
    let om_bits = om.allocation.bits();

    let bw_base = bandwidth::total_input_bits(&ctx.inputs, &base_bits);
    let bw_opt = bandwidth::total_input_bits(&ctx.inputs, &oi_bits);
    let e_base = energy_model.network_energy(&ctx.macs, &base_bits, weight_bits);
    let e_opt = energy_model.network_energy(&ctx.macs, &om_bits, weight_bits);

    Ok(Row {
        name: kind.name().to_string(),
        layers: ctx.layers.len(),
        weight_bits,
        base_input_eff: eff(&base_bits, &ctx.rho_in),
        base_mac_eff: eff(&base_bits, &ctx.rho_mac),
        oi_input_eff: eff(&oi_bits, &ctx.rho_in),
        oi_mac_eff: eff(&oi_bits, &ctx.rho_mac),
        bw_save: bandwidth::saving_percent(bw_base, bw_opt),
        om_input_eff: eff(&om_bits, &ctx.rho_in),
        om_mac_eff: eff(&om_bits, &ctx.rho_mac),
        energy_save: MacEnergyModel::saving_percent(e_base, e_opt),
    })
}

fn main() {
    mupod_experiments::exit_on_error(run());
}

fn run() -> Result<(), ExperimentError> {
    let mut rep = mupod_experiments::Report::from_args();
    let size = RunSize::from_args();
    let (kinds, losses) = parse_filter()?;
    let energy_model = MacEnergyModel::dwip_40nm();

    mupod_experiments::report!(
        rep,
        "# EXP-T3: effective bitwidths across networks (Table III)"
    );
    let contexts: Vec<NetContext> = kinds
        .iter()
        .map(|&k| build_context(k, &size))
        .collect::<Result<_, _>>()?;

    for loss in &losses {
        mupod_experiments::report!(rep);
        mupod_experiments::report!(rep, "## {:.0}% relative accuracy drop", loss * 100.0);
        mupod_experiments::report!(rep);
        let rows: Vec<Row> = contexts
            .iter()
            .map(|ctx| row_for(ctx, *loss, &size, &energy_model))
            .collect::<Result<_, _>>()?;

        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.layers.to_string(),
                    r.weight_bits.to_string(),
                    f(r.base_input_eff, 2),
                    f(r.base_mac_eff, 2),
                    f(r.oi_input_eff, 2),
                    f(r.oi_mac_eff, 2),
                    pct(r.bw_save),
                    f(r.om_input_eff, 2),
                    f(r.om_mac_eff, 2),
                    pct(r.energy_save),
                ]
            })
            .collect();
        mupod_experiments::report!(
            rep,
            "{}",
            markdown_table(
                &[
                    "network",
                    "#layers",
                    "W",
                    "Base In",
                    "Base MAC",
                    "OptIn In",
                    "OptIn MAC",
                    "BW save%",
                    "OptMAC In",
                    "OptMAC MAC",
                    "Ener save%",
                ],
                &table
            )
        );
        let avg = |get: &dyn Fn(&Row) -> f64| -> f64 {
            rows.iter().map(get).sum::<f64>() / rows.len() as f64
        };
        mupod_experiments::report!(
            rep,
            "Average BW saving: {}%  |  Average energy saving: {}%",
            pct(avg(&|r| r.bw_save)),
            pct(avg(&|r| r.energy_save))
        );
        mupod_experiments::report!(
            rep,
            "(paper averages: 12.3% BW / 23.8% energy at 1%; 8.8% BW / 17.8% energy at 5%)"
        );
    }
    rep.finish();
    Ok(())
}
