//! Property tests: the two independent simplex solvers agree, and both
//! deliver feasible, non-degrading solutions — the cross-validation that
//! substitutes for Octave's `sqp` (DESIGN.md §4).

use mupod_optim::{is_in_simplex, ExponentiatedGradient, FnObjective, ProjectedGradient};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PGD and EG converge to the same value on random smooth convex
    /// objectives over the simplex.
    #[test]
    fn solvers_agree_on_random_quadratics(
        targets in prop::collection::vec(-0.5f64..1.5, 2..7),
        curvatures in prop::collection::vec(0.5f64..4.0, 2..7),
    ) {
        let n = targets.len().min(curvatures.len());
        let t = targets[..n].to_vec();
        let c = curvatures[..n].to_vec();
        let obj = FnObjective::new(n, move |xi: &[f64]| {
            xi.iter()
                .zip(&t)
                .zip(&c)
                .map(|((x, t), c)| c * (x - t).powi(2))
                .sum()
        });
        let a = ProjectedGradient::default().minimize(&obj);
        let b = ExponentiatedGradient::default().minimize(&obj);
        // 1% relative agreement: EG's multiplicative updates converge
        // slowly when the optimum pins coordinates to the boundary, so
        // exact agreement is not expected — the allocator takes the
        // better of the two anyway.
        prop_assert!(
            (a.value - b.value).abs() < 1e-2 * (1.0 + a.value.abs()),
            "pgd {} vs eg {}",
            a.value,
            b.value
        );
        prop_assert!(is_in_simplex(&a.xi, 0.0, 1e-5));
        prop_assert!(is_in_simplex(&b.xi, 0.0, 1e-5));
    }

    /// On Eq. 8-shaped objectives, both solvers respect the lower bound
    /// and neither exceeds the uniform point's value.
    #[test]
    fn solvers_feasible_on_eq8_objectives(
        rho in prop::collection::vec(1.0f64..1000.0, 2..10),
        lambda in prop::collection::vec(0.05f64..50.0, 2..10),
        sigma in 0.01f64..2.0,
    ) {
        let n = rho.len().min(lambda.len());
        let r = rho[..n].to_vec();
        let l = lambda[..n].to_vec();
        let obj = FnObjective::new(n, move |xi: &[f64]| {
            xi.iter()
                .zip(&r)
                .zip(&l)
                .map(|((x, r), l)| {
                    let delta = (l * sigma * x.max(0.0).sqrt()).max(1e-12);
                    -r * delta.log2()
                })
                .sum()
        });
        let uniform = vec![1.0 / n as f64; n];
        let uniform_value = obj.value(&uniform);

        let pgd = ProjectedGradient { lower_bound: 1e-4, ..Default::default() };
        let sol = pgd.minimize(&obj);
        prop_assert!(sol.xi.iter().all(|&x| x >= 1e-4 - 1e-9));
        prop_assert!(sol.value <= uniform_value + 1e-6);
    }
}

use mupod_optim::SimplexObjective;
