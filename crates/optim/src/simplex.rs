//! Euclidean projection onto the probability simplex.

/// Projects `v` onto the probability simplex `{x : Σx = 1, x ≥ 0}` in
/// place, using the sort-based algorithm of Duchi et al. (2008).
///
/// # Panics
///
/// Panics if `v` is empty or contains non-finite values.
///
/// # Example
///
/// ```
/// use mupod_optim::project_to_simplex;
/// let mut v = vec![0.9, 0.9, 0.9];
/// project_to_simplex(&mut v);
/// assert!(v.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-12));
/// ```
pub fn project_to_simplex(v: &mut [f64]) {
    project_to_simplex_lb(v, 0.0);
}

/// Projects `v` onto the lower-bounded simplex
/// `{x : Σx = 1, x ≥ lb}` in place.
///
/// The paper's allocator keeps every `ξ_K` strictly positive (a layer
/// granted exactly zero error budget would demand infinite precision), so
/// the solvers project onto `ξ ≥ lb` with a small `lb > 0`.
///
/// # Panics
///
/// Panics if `v` is empty, contains non-finite values, or
/// `lb · v.len() > 1` (the constraint set would be empty).
pub fn project_to_simplex_lb(v: &mut [f64], lb: f64) {
    assert!(!v.is_empty(), "cannot project an empty vector");
    assert!(
        v.iter().all(|x| x.is_finite()),
        "cannot project non-finite values"
    );
    let n = v.len();
    let mass = 1.0 - lb * n as f64;
    assert!(
        mass >= -1e-12,
        "lower bound {lb} infeasible for dimension {n}"
    );
    let mass = mass.max(0.0);
    // Shift to y = x - lb, project y onto the simplex of total mass `mass`.
    let mut y: Vec<f64> = v.iter().map(|x| x - lb).collect();
    let mut sorted = y.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let t = (cumsum - mass) / (i + 1) as f64;
        if u - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    if rho == 0 {
        // All coordinates clip; distribute the mass uniformly.
        for x in y.iter_mut() {
            *x = mass / n as f64;
        }
    } else {
        for x in y.iter_mut() {
            *x = (*x - theta).max(0.0);
        }
    }
    for (out, yi) in v.iter_mut().zip(&y) {
        *out = yi + lb;
    }
}

/// Whether `v` lies on the simplex `{x : Σx = 1, x ≥ lb}` within `tol`.
pub fn is_in_simplex(v: &[f64], lb: f64, tol: f64) -> bool {
    !v.is_empty() && v.iter().all(|&x| x >= lb - tol) && (v.iter().sum::<f64>() - 1.0).abs() <= tol
}

/// The uniform point `(1/n, …, 1/n)` — the paper's `equal_scheme`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform_point(n: usize) -> Vec<f64> {
    assert!(n > 0, "dimension must be positive");
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_of_simplex_point_is_identity() {
        let mut v = vec![0.2, 0.5, 0.3];
        let orig = v.clone();
        project_to_simplex(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_lands_on_simplex() {
        let cases: Vec<Vec<f64>> = vec![
            vec![5.0, -3.0, 0.1],
            vec![0.0, 0.0],
            vec![-1.0, -2.0, -3.0, -4.0],
            vec![100.0],
            vec![0.25, 0.25, 0.25, 0.25],
        ];
        for mut v in cases {
            project_to_simplex(&mut v);
            assert!(is_in_simplex(&v, 0.0, 1e-9), "not on simplex: {v:?}");
        }
    }

    #[test]
    fn projection_prefers_larger_coordinates() {
        let mut v = vec![10.0, 1.0, 0.0];
        project_to_simplex(&mut v);
        assert!((v[0] - 1.0).abs() < 1e-9);
        assert!(v[1].abs() < 1e-9);
        assert!(v[2].abs() < 1e-9);
    }

    #[test]
    fn hand_computed_projection() {
        // Project (0.8, 0.6): theta = (1.4 - 1)/2 = 0.2 -> (0.6, 0.4).
        let mut v = vec![0.8, 0.6];
        project_to_simplex(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_respected() {
        let mut v = vec![1.0, 0.0, 0.0, 0.0];
        project_to_simplex_lb(&mut v, 0.05);
        assert!(is_in_simplex(&v, 0.05, 1e-9), "violates bound: {v:?}");
        assert!(v[0] > v[1]);
    }

    #[test]
    fn lower_bound_at_capacity_forces_uniform() {
        let mut v = vec![9.0, -3.0];
        project_to_simplex_lb(&mut v, 0.5);
        assert!((v[0] - 0.5).abs() < 1e-9);
        assert!((v[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_lower_bound_panics() {
        let mut v = vec![0.5, 0.5];
        project_to_simplex_lb(&mut v, 0.6);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut v = vec![3.0, -1.0, 0.5, 0.2, -2.0];
        project_to_simplex_lb(&mut v, 0.01);
        let once = v.clone();
        project_to_simplex_lb(&mut v, 0.01);
        for (a, b) in v.iter().zip(&once) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_point_is_equal_scheme() {
        let u = uniform_point(5);
        assert!(is_in_simplex(&u, 0.0, 1e-12));
        assert!(u.iter().all(|&x| (x - 0.2).abs() < 1e-12));
    }
}
