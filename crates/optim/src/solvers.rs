//! First-order solvers over the simplex.

use crate::objective::SimplexObjective;
use crate::simplex::{is_in_simplex, project_to_simplex_lb, uniform_point};

/// Result of a simplex minimization.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The minimizing point.
    pub xi: Vec<f64>,
    /// Objective value at [`Solution::xi`].
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the stopping tolerance was reached before the iteration
    /// cap.
    pub converged: bool,
}

/// Projected gradient descent with Armijo backtracking.
///
/// Starts at the uniform point (the paper's `equal_scheme`), steps along
/// the negative gradient, projects back onto the lower-bounded simplex,
/// and halves the step until sufficient decrease. Converges to the KKT
/// point of Eq. 8 for the paper's smooth objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedGradient {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the projected step moves less than this (∞-norm).
    pub tol: f64,
    /// Lower bound on every coordinate (keeps `ξ_K > 0`).
    pub lower_bound: f64,
    /// Initial step size for the line search.
    pub initial_step: f64,
}

impl Default for ProjectedGradient {
    fn default() -> Self {
        Self {
            max_iters: 2000,
            tol: 1e-9,
            lower_bound: 1e-6,
            initial_step: 0.5,
        }
    }
}

impl ProjectedGradient {
    /// Minimizes `obj` from the uniform starting point.
    ///
    /// # Panics
    ///
    /// Panics if `obj.dim() == 0` or the lower bound is infeasible for
    /// the dimension.
    pub fn minimize<O: SimplexObjective + ?Sized>(&self, obj: &O) -> Solution {
        self.minimize_from(obj, &uniform_point(obj.dim()))
    }

    /// Minimizes `obj` from a caller-supplied starting point (projected
    /// onto the feasible set first).
    ///
    /// # Panics
    ///
    /// Panics if `start.len() != obj.dim()`.
    pub fn minimize_from<O: SimplexObjective + ?Sized>(&self, obj: &O, start: &[f64]) -> Solution {
        assert_eq!(start.len(), obj.dim(), "start point dimension mismatch");
        let mut xi = start.to_vec();
        project_to_simplex_lb(&mut xi, self.lower_bound);
        let mut value = obj.value(&xi);
        let mut converged = false;
        let mut iterations = 0;
        for it in 0..self.max_iters {
            iterations = it + 1;
            let grad = obj.gradient(&xi);
            let mut step = self.initial_step;
            let mut moved = 0.0f64;
            let mut accepted = false;
            // Armijo backtracking on the projected step.
            for _ in 0..40 {
                let mut cand: Vec<f64> = xi.iter().zip(&grad).map(|(x, g)| x - step * g).collect();
                project_to_simplex_lb(&mut cand, self.lower_bound);
                let cand_value = obj.value(&cand);
                let decrease: f64 = xi
                    .iter()
                    .zip(&cand)
                    .zip(&grad)
                    .map(|((x, c), g)| g * (x - c))
                    .sum();
                if cand_value <= value - 1e-4 * decrease.max(0.0) && cand_value < value {
                    moved = xi
                        .iter()
                        .zip(&cand)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0, f64::max);
                    xi = cand;
                    value = cand_value;
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted || moved < self.tol {
                converged = true;
                break;
            }
        }
        debug_assert!(is_in_simplex(&xi, self.lower_bound, 1e-6));
        Solution {
            xi,
            value,
            iterations,
            converged,
        }
    }
}

/// Exponentiated gradient (multiplicative weights / mirror descent).
///
/// Updates `ξ_K ← ξ_K · exp(−η g_K)` and renormalizes; stays strictly
/// inside the simplex by construction. Used as an independent
/// cross-check of [`ProjectedGradient`] in place of trusting a single
/// solver (DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentiatedGradient {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when the iterate moves less than this (∞-norm).
    pub tol: f64,
    /// Learning rate.
    pub eta: f64,
    /// Floor applied after each update (keeps `ξ_K ≥ lb`).
    pub lower_bound: f64,
}

impl Default for ExponentiatedGradient {
    fn default() -> Self {
        Self {
            max_iters: 20_000,
            tol: 1e-10,
            eta: 0.05,
            lower_bound: 1e-6,
        }
    }
}

impl ExponentiatedGradient {
    /// Minimizes `obj` from the uniform starting point.
    ///
    /// # Panics
    ///
    /// Panics if `obj.dim() == 0`.
    pub fn minimize<O: SimplexObjective + ?Sized>(&self, obj: &O) -> Solution {
        let mut xi = uniform_point(obj.dim());
        let mut converged = false;
        let mut iterations = 0;
        for it in 0..self.max_iters {
            iterations = it + 1;
            let grad = obj.gradient(&xi);
            // Center and normalize the gradient: exponentiated updates
            // explode for steep objectives (Eq. 8's gradient is O(1/√ξ)
            // near the boundary), so the step is taken on the unit-scaled
            // gradient direction.
            let mean_g = grad.iter().sum::<f64>() / grad.len() as f64;
            let scale = grad.iter().map(|g| (g - mean_g).abs()).fold(0.0, f64::max);
            // lint:allow(no-float-eq) reason=exact test of a fold over abs values; a gradient that is identically zero means converged, not approximately zero
            if scale == 0.0 || !scale.is_finite() {
                // lint:allow(no-float-eq) reason=same exact identically-zero-gradient test as the line above
                converged = scale == 0.0;
                break;
            }
            // 1/√t step decay gives the standard mirror-descent
            // convergence guarantee.
            let eta_t = self.eta / ((it + 1) as f64).sqrt();
            let mut cand: Vec<f64> = xi
                .iter()
                .zip(&grad)
                .map(|(x, g)| x * (-eta_t * (g - mean_g) / scale).exp())
                .collect();
            let sum: f64 = cand.iter().sum();
            for c in cand.iter_mut() {
                *c /= sum;
            }
            if self.lower_bound > 0.0 {
                project_to_simplex_lb(&mut cand, self.lower_bound);
            }
            let moved = xi
                .iter()
                .zip(&cand)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            xi = cand;
            if moved < self.tol {
                converged = true;
                break;
            }
        }
        let value = obj.value(&xi);
        Solution {
            xi,
            value,
            iterations,
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;

    fn quadratic_to(target: Vec<f64>) -> FnObjective<impl Fn(&[f64]) -> f64> {
        let dim = target.len();
        FnObjective::new(dim, move |xi: &[f64]| {
            xi.iter().zip(&target).map(|(x, t)| (x - t).powi(2)).sum()
        })
    }

    #[test]
    fn pgd_finds_interior_quadratic_optimum() {
        let obj = quadratic_to(vec![0.5, 0.3, 0.2]);
        let sol = ProjectedGradient::default().minimize(&obj);
        assert!(sol.converged);
        for (x, t) in sol.xi.iter().zip(&[0.5, 0.3, 0.2]) {
            assert!((x - t).abs() < 1e-5, "{:?}", sol.xi);
        }
    }

    #[test]
    fn pgd_clips_exterior_optimum_to_boundary() {
        // Unconstrained optimum (0.9, 0.9) is infeasible; the projection
        // of the optimum onto the simplex is (0.5, 0.5).
        let obj = quadratic_to(vec![0.9, 0.9]);
        let sol = ProjectedGradient::default().minimize(&obj);
        assert!((sol.xi[0] - 0.5).abs() < 1e-6);
        assert!((sol.xi[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn pgd_linear_objective_hits_vertex() {
        // min c·ξ picks the coordinate with smallest c.
        let obj = FnObjective::new(3, |xi: &[f64]| 3.0 * xi[0] + 1.0 * xi[1] + 2.0 * xi[2]);
        let pg = ProjectedGradient {
            lower_bound: 0.0,
            ..Default::default()
        };
        let sol = pg.minimize(&obj);
        assert!((sol.xi[1] - 1.0).abs() < 1e-6, "{:?}", sol.xi);
    }

    #[test]
    fn eg_matches_pgd_on_smooth_objective() {
        let obj = quadratic_to(vec![0.6, 0.25, 0.15]);
        let a = ProjectedGradient::default().minimize(&obj);
        let b = ExponentiatedGradient::default().minimize(&obj);
        for (x, y) in a.xi.iter().zip(&b.xi) {
            assert!((x - y).abs() < 1e-3, "pgd {:?} vs eg {:?}", a.xi, b.xi);
        }
    }

    #[test]
    fn solvers_agree_on_eq8_shaped_objective() {
        // F(ξ) = Σ ρ_K · (−log2(λ_K σ √ξ_K + θ_K)): the actual Eq. 8 form.
        let rho = [5.0, 2.0, 1.0, 3.0];
        let lam = [0.4, 0.8, 0.2, 0.5];
        let theta = [0.01, 0.02, 0.005, 0.0];
        let sigma = 0.5;
        let obj = FnObjective::new(4, move |xi: &[f64]| {
            xi.iter()
                .enumerate()
                .map(|(k, &x)| {
                    let delta = lam[k] * sigma * x.max(0.0).sqrt() + theta[k];
                    -rho[k] * delta.log2()
                })
                .sum()
        });
        let a = ProjectedGradient::default().minimize(&obj);
        let b = ExponentiatedGradient::default().minimize(&obj);
        assert!(a.value.is_finite() && b.value.is_finite());
        assert!(
            (a.value - b.value).abs() < 1e-4,
            "{} vs {}",
            a.value,
            b.value
        );
        // The heaviest-ρ layer should get the largest share (it profits
        // most from a coarse Δ).
        let amax =
            a.xi.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0;
        assert_eq!(amax, 0, "{:?}", a.xi);
    }

    #[test]
    fn pgd_respects_lower_bound() {
        let obj = FnObjective::new(3, |xi: &[f64]| xi[0]);
        let pg = ProjectedGradient {
            lower_bound: 0.05,
            ..Default::default()
        };
        let sol = pg.minimize(&obj);
        assert!(sol.xi.iter().all(|&x| x >= 0.05 - 1e-9), "{:?}", sol.xi);
    }

    #[test]
    fn minimize_from_projects_start() {
        let obj = quadratic_to(vec![0.5, 0.5]);
        let sol = ProjectedGradient::default().minimize_from(&obj, &[10.0, -10.0]);
        assert!((sol.xi[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn constant_objective_converges_immediately() {
        let obj = FnObjective::new(4, |_: &[f64]| 1.0);
        let sol = ProjectedGradient::default().minimize(&obj);
        assert!(sol.converged);
        assert!(sol.iterations <= 2);
        assert_eq!(sol.value, 1.0);
    }
}
