//! Objective functions over the simplex.

/// An objective `F(ξ)` to minimize over the probability simplex.
///
/// Implementors may override [`SimplexObjective::gradient`] with an
/// analytic gradient; the default is a central finite difference that
/// never leaves the feasible region's neighborhood (the solvers project
/// afterwards anyway).
pub trait SimplexObjective {
    /// Dimension of `ξ` (number of layers in the paper's use).
    fn dim(&self) -> usize;

    /// Objective value at `xi`.
    fn value(&self, xi: &[f64]) -> f64;

    /// Gradient at `xi`; default is central finite differences.
    fn gradient(&self, xi: &[f64]) -> Vec<f64> {
        let h = 1e-7;
        let mut g = vec![0.0; xi.len()];
        let mut probe = xi.to_vec();
        for i in 0..xi.len() {
            let orig = probe[i];
            probe[i] = orig + h;
            let up = self.value(&probe);
            probe[i] = orig - h;
            let down = self.value(&probe);
            probe[i] = orig;
            g[i] = (up - down) / (2.0 * h);
        }
        g
    }
}

/// Adapts a closure into a [`SimplexObjective`] (finite-difference
/// gradient).
///
/// # Example
///
/// ```
/// use mupod_optim::{FnObjective, SimplexObjective};
/// let obj = FnObjective::new(2, |xi: &[f64]| xi[0] * xi[0] + xi[1]);
/// assert_eq!(obj.dim(), 2);
/// let g = obj.gradient(&[0.5, 0.5]);
/// assert!((g[0] - 1.0).abs() < 1e-4);
/// assert!((g[1] - 1.0).abs() < 1e-4);
/// ```
pub struct FnObjective<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64]) -> f64> FnObjective<F> {
    /// Wraps a closure of the given dimension.
    pub fn new(dim: usize, f: F) -> Self {
        Self { dim, f }
    }
}

impl<F: Fn(&[f64]) -> f64> SimplexObjective for FnObjective<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn value(&self, xi: &[f64]) -> f64 {
        (self.f)(xi)
    }
}

impl<F> std::fmt::Debug for FnObjective<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnObjective")
            .field("dim", &self.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_difference_gradient_of_quadratic() {
        let obj = FnObjective::new(3, |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>());
        let g = obj.gradient(&[0.1, 0.5, 0.4]);
        for (gi, xi) in g.iter().zip(&[0.1, 0.5, 0.4]) {
            assert!((gi - 2.0 * xi).abs() < 1e-5);
        }
    }

    #[test]
    fn value_delegates_to_closure() {
        let obj = FnObjective::new(2, |x: &[f64]| x[0] - x[1]);
        assert_eq!(obj.value(&[3.0, 1.0]), 2.0);
    }
}
