//! Constrained optimization on the probability simplex.
//!
//! The paper solves Eq. 8 — minimize `F(ξ) = Σ_K ρ_K·(−log2 Δ_{X_K}(ξ))`
//! subject to `Σ ξ_K = 1, ξ ≥ 0` — with Octave's `sqp`. This crate is
//! the from-scratch substitute: two independent first-order methods over
//! the simplex, which cross-validate each other in tests and in the
//! `mupod-core` allocator.
//!
//! * [`ProjectedGradient`]: gradient descent with Armijo backtracking and
//!   Euclidean projection onto the (lower-bounded) simplex
//!   ([`project_to_simplex_lb`], the Duchi et al. algorithm).
//! * [`ExponentiatedGradient`]: multiplicative-weights mirror descent,
//!   which stays inside the simplex by construction.
//!
//! Both accept any [`SimplexObjective`]; a finite-difference gradient is
//! provided for objectives that do not implement their own.
//!
//! # Example
//!
//! ```
//! use mupod_optim::{FnObjective, ProjectedGradient, SimplexObjective};
//!
//! // min Σ (ξ_i − t_i)² over the simplex, t = (0.5, 0.3, 0.2): optimum t.
//! let target = [0.5, 0.3, 0.2];
//! let obj = FnObjective::new(3, move |xi: &[f64]| {
//!     xi.iter().zip(&target).map(|(x, t)| (x - t).powi(2)).sum()
//! });
//! let sol = ProjectedGradient::default().minimize(&obj);
//! assert!(sol.converged);
//! for (x, t) in sol.xi.iter().zip(&[0.5, 0.3, 0.2]) {
//!     assert!((x - t).abs() < 1e-4);
//! }
//! ```

mod objective;
mod simplex;
mod solvers;

pub use objective::{FnObjective, SimplexObjective};
pub use simplex::{is_in_simplex, project_to_simplex, project_to_simplex_lb, uniform_point};
pub use solvers::{ExponentiatedGradient, ProjectedGradient, Solution};
