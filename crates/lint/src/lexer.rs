//! A lightweight Rust lexer for the invariant checker.
//!
//! This is not a full grammar — it tokenizes just well enough that the
//! rules never fire on text inside string literals, character literals
//! or comments, and can reason about adjacency (`.unwrap(`,
//! `File::create`, `== 0.0`). Comments are captured separately because
//! two of them carry meaning for the checker: `// SAFETY:` justifications
//! and `// lint:allow(rule) reason=...` escapes.
//!
//! Handled: line and (nested) block comments, doc comments, regular /
//! raw / byte string literals, char literals vs. lifetimes, integer vs.
//! float literals (including exponents and `f32`/`f64` suffixes), raw
//! identifiers, and multi-character operators.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `File`, ...).
    Ident,
    /// Operator or delimiter (`::`, `==`, `{`, `#`, ...).
    Punct,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating-point literal (`0.0`, `1e-9`, `2.5f32`).
    Float,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
    /// Verbatim text (operators normalized to their full spelling).
    pub text: String,
}

/// A captured comment (line, block or doc).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment body, excluding the `//` / `/*` markers.
    pub text: String,
    /// True when no code token precedes the comment on its start line —
    /// such a comment attaches to the *next* line of code, a trailing
    /// comment attaches to its own line.
    pub own_line: bool,
}

/// Lexer output: significant tokens plus captured comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so lexing is greedy.
const OPS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenizes `src`, separating significant tokens from comments.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Line of the most recently emitted code token, for `own_line`.
    let mut last_tok_line = 0u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if b.is_ascii_whitespace() => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                    own_line: last_tok_line != line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[text_start..text_end].to_string(),
                    own_line: last_tok_line != start_line,
                });
            }
            b'"' => {
                i = skip_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Str,
                    text: String::new(),
                });
                last_tok_line = line;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                out.toks.push(Tok {
                    line: start_line,
                    kind: TokKind::Str,
                    text: String::new(),
                });
                last_tok_line = line;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i = skip_char_literal(bytes, i + 1);
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Char,
                    text: String::new(),
                });
                last_tok_line = line;
            }
            b'\'' => {
                let (next, kind) = lex_quote(bytes, src, i);
                out.toks.push(Tok {
                    line,
                    kind,
                    text: String::new(),
                });
                last_tok_line = line;
                i = next;
            }
            _ if is_ident_start(b) => {
                // Raw identifier r#type lexes as the ident `type`.
                let mut start = i;
                if b == b'r'
                    && bytes.get(i + 1) == Some(&b'#')
                    && bytes.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    start = i + 2;
                    i += 2;
                }
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                });
                last_tok_line = line;
            }
            _ if b.is_ascii_digit() => {
                let (next, kind, text) = lex_number(bytes, src, i);
                out.toks.push(Tok { line, kind, text });
                last_tok_line = line;
                i = next;
            }
            _ => {
                let mut matched = false;
                for op in OPS {
                    if bytes[i..].starts_with(op.as_bytes()) {
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Punct,
                            text: (*op).to_string(),
                        });
                        last_tok_line = line;
                        i += op.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if b.is_ascii() {
                        out.toks.push(Tok {
                            line,
                            kind: TokKind::Punct,
                            text: (b as char).to_string(),
                        });
                        last_tok_line = line;
                    }
                    // Non-ASCII outside strings/comments: skip the byte.
                    i += 1;
                }
            }
        }
    }
    out
}

/// `'...'` char literal or `'a` lifetime, starting at the quote.
/// Returns (next index, kind).
fn lex_quote(bytes: &[u8], _src: &str, i: usize) -> (usize, TokKind) {
    // 'x' / '\n' / '\'' are char literals; 'ident not followed by a
    // closing quote is a lifetime.
    match bytes.get(i + 1) {
        Some(b'\\') => (skip_char_literal(bytes, i), TokKind::Char),
        Some(&c) if is_ident_start(c) => {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_cont(bytes[j]) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (j + 1, TokKind::Char)
            } else {
                (j, TokKind::Lifetime)
            }
        }
        Some(_) => (skip_char_literal(bytes, i), TokKind::Char),
        None => (i + 1, TokKind::Char),
    }
}

/// Skips a char/byte literal body starting at the opening quote.
fn skip_char_literal(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips a regular `"..."` string starting at the opening quote,
/// counting embedded newlines into `line`.
fn skip_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Whether position `i` starts `r"`, `r#"`, `b"`, `br"` or `br#"`.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // Plain byte string b"..."
    bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"')
}

/// Skips any raw/byte string flavour; `i` points at the `r`/`b` prefix.
fn skip_raw_or_byte_string(bytes: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    j += 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'\\' if !raw => j += 2,
            b'"' => {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && bytes.get(k) == Some(&b'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return k;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Lexes a numeric literal starting at a digit. Returns
/// (next index, Int|Float, text).
fn lex_number(bytes: &[u8], src: &str, i: usize) -> (usize, TokKind, String) {
    let start = i;
    let mut j = i;
    let mut float = false;

    if bytes[j] == b'0'
        && matches!(
            bytes.get(j + 1),
            Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')
        )
    {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int, src[start..j].to_string());
    }

    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // A `.` continues the literal only when it is not `..` (range) and
    // not a method call like `2.max(3)`.
    if bytes.get(j) == Some(&b'.')
        && bytes.get(j + 1) != Some(&b'.')
        && !bytes.get(j + 1).copied().is_some_and(is_ident_start)
    {
        float = true;
        j += 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    if matches!(bytes.get(j), Some(b'e' | b'E')) {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if bytes.get(k).copied().is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix: f32/f64 force Float, integer suffixes keep Int.
    let suffix_start = j;
    while j < bytes.len() && is_ident_cont(bytes[j]) {
        j += 1;
    }
    let suffix = &src[suffix_start..j];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    (j, kind, src[start..j].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn no_tokens_inside_strings_or_comments() {
        let src = r###"
            let a = "unwrap() File::create"; // unwrap() in comment
            /* panic! in /* nested */ block */
            let b = r#"fs::write"#;
            let c = 'u';
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"File".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"fs".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn float_vs_int_vs_range_vs_method() {
        let lexed = lex("let x = 1.5 + 2 + 1e-9 + 3f64; for i in 0..10 { 2.max(3); }");
        let floats: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(floats, ["1.5", "1e-9", "3f64"]);
        let ints: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ints, ["2", "0", "10", "2", "3"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn comment_line_numbers_and_ownership() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn multi_char_operators_lex_whole() {
        let texts: Vec<String> = lex("a == b != c :: d .. e")
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["==", "!=", "::", ".."]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }
}
