//! Guard-scope dataflow for the concurrency rules.
//!
//! The five original rules are adjacency checks over the token stream;
//! the concurrency rules added here need one more ingredient: knowing
//! *which lock guards are live* at a given token. This module walks a
//! lexed file once and tracks:
//!
//! - **Guard bindings** — `let g = expr.lock()` / `.read()` / `.write()`
//!   (empty argument lists only, so buffered I/O `read(&mut buf)` never
//!   counts as a lock acquisition). A bound guard lives until the end of
//!   the brace block its `let` sits in, or until an early `drop(g)`;
//!   an unbound acquisition (`self.lock().field = x;`) is a temporary
//!   that dies at the end of its statement.
//! - **Lock identities** — `file_stem::receiver` (`queue::inner`,
//!   `recorder::CURRENT`); qualifying by file keeps two crates' `inner`
//!   fields from aliasing each other in the workspace graph.
//! - **Acquisition edges** — acquiring lock B while a guard of lock A is
//!   live yields the edge `A -> B`; the workspace pass in `lib.rs`
//!   assembles these (plus interprocedural edges through named calls)
//!   into the lock graph and fails on cycles.
//! - **Blocking calls under a guard** — `sleep`, empty-args `join`/
//!   `accept`, channel `recv*`, `connect`, and argumentful I/O
//!   `read`/`write`/`flush`-family calls while any guard is live.
//!   Condvar `wait*` calls are exempt: they atomically release the lock
//!   and are the *correct* way to block with a guard in scope.
//! - **Function summaries** — which locks each named function acquires
//!   and which named functions it calls while holding a lock, feeding
//!   the interprocedural propagation (DESIGN.md §15).

use crate::lexer::{Tok, TokKind};

/// Calls that block with a guard live are the deadlock/latency hazard
/// the `no-blocking-under-lock` rule exists for.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Method names too generic to use for interprocedural lock matching:
/// `.len()` on a `Vec` must not inherit the locks of `BoundedQueue::len`.
/// Direct acquisitions at a call site are still seen; only *callee
/// summary* matching skips these names.
pub const GENERIC_CALLEES: &[&str] = &[
    "lock", "read", "write", "len", "is_empty", "clear", "get", "take", "drop", "push", "pop",
    "insert", "remove", "new", "clone", "next", "send", "record", "load", "store", "swap", "iter",
    "map", "wire", "name", "state",
];

/// Rust keywords (and common constructors) that look like calls when
/// followed by `(` but are not function calls.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "unsafe", "Some", "Ok", "Err", "None", "Box", "Vec",
];

/// One acquisition made while another guard was live: `held -> acquired`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held (`stem::receiver`).
    pub held: String,
    /// Line the held guard was acquired on.
    pub held_line: u32,
    /// Lock being acquired.
    pub acquired: String,
    /// Line of the nested acquisition.
    pub line: u32,
}

/// A blocking call made while a guard was live.
#[derive(Debug, Clone)]
pub struct BlockingCall {
    /// 1-based line of the blocking call.
    pub line: u32,
    /// The call (`sleep`, `recv_timeout`, `write`, ...).
    pub what: String,
    /// Innermost live guard's lock identity.
    pub held: String,
    /// Line that guard was acquired on.
    pub held_line: u32,
}

/// A named call made while a guard was live (interprocedural feed).
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// Lock held at the call site.
    pub held: String,
    /// Line the held guard was acquired on.
    pub held_line: u32,
    /// Callee name (last path segment / method name).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// What one named function does, for workspace-level propagation.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Locks acquired directly in the body.
    pub locks: Vec<String>,
    /// Named functions called anywhere in the body.
    pub calls: Vec<String>,
}

/// A tracked guard binding, exposed for regression tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardScope {
    /// Binding name (`"<temp>"` for unbound statement temporaries).
    pub name: String,
    /// Lock identity (`stem::receiver`).
    pub lock: String,
    /// Line the guard was created on.
    pub acquire_line: u32,
    /// Line the guard died on (block close, `drop()`, or statement end).
    pub end_line: u32,
}

/// Everything the concurrency rules need from one file.
#[derive(Debug, Default)]
pub struct Concurrency {
    /// Same-function nested acquisitions.
    pub edges: Vec<LockEdge>,
    /// Blocking calls under a live guard.
    pub blocking: Vec<BlockingCall>,
    /// Named calls under a live guard.
    pub held_calls: Vec<HeldCall>,
    /// Per-function lock/call summaries, keyed by function name.
    pub fns: Vec<(String, FnSummary)>,
    /// All guard scopes seen (for tests and diagnostics).
    pub guards: Vec<GuardScope>,
}

/// A guard that is currently live during the walk.
struct LiveGuard {
    name: String,
    lock: String,
    line: u32,
    /// Brace depth of the block the binding lives in.
    depth: usize,
    /// Statement temporaries die at the next `;` at this paren depth.
    temp_paren: Option<usize>,
}

/// Walks one file's tokens and extracts guard scopes, lock edges,
/// blocking-under-lock calls and function summaries. Tokens marked
/// `exempt` (test modules) still drive brace/paren bookkeeping but
/// produce no findings.
pub fn analyze(file_stem: &str, toks: &[Tok], exempt: &[bool]) -> Concurrency {
    let mut out = Concurrency::default();
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut brace = 0usize;
    let mut paren = 0usize;
    // (binding name, brace depth at the `let`).
    let mut pending_let: Option<(String, usize)> = None;
    let mut pending_fn: Option<String> = None;
    // (fn name, brace depth of its body).
    let mut fn_stack: Vec<(String, usize)> = Vec::new();
    let mut fns: std::collections::BTreeMap<String, FnSummary> = std::collections::BTreeMap::new();

    let text = |j: usize| toks.get(j).map(|t| t.text.as_str());
    let kill = |g: LiveGuard, end_line: u32, out: &mut Concurrency| {
        out.guards.push(GuardScope {
            name: g.name,
            lock: g.lock,
            acquire_line: g.line,
            end_line,
        });
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => {
                brace += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, brace));
                }
            }
            "}" => {
                // Guards bound at this depth die with the block.
                let (dead, rest): (Vec<_>, Vec<_>) = live.drain(..).partition(|g| g.depth >= brace);
                live = rest;
                for g in dead {
                    kill(g, t.line, &mut out);
                }
                if let Some((_, d)) = fn_stack.last() {
                    if *d >= brace {
                        fn_stack.pop();
                    }
                }
                if pending_let.as_ref().is_some_and(|(_, d)| *d >= brace) {
                    pending_let = None;
                }
                brace = brace.saturating_sub(1);
            }
            "(" => paren += 1,
            ")" => paren = paren.saturating_sub(1),
            ";" => {
                let (dead, rest): (Vec<_>, Vec<_>) = live
                    .drain(..)
                    .partition(|g| g.temp_paren.is_some_and(|p| p == paren));
                live = rest;
                for g in dead {
                    kill(g, t.line, &mut out);
                }
                pending_let = None;
            }
            "let" if !exempt[i] => {
                let mut j = i + 1;
                if text(j) == Some("mut") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|n| n.kind == TokKind::Ident)
                    && matches!(text(j + 1), Some("=") | Some(":"))
                {
                    pending_let = Some((toks[j].text.clone(), brace));
                }
            }
            "fn" if t.kind == TokKind::Ident => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        pending_fn = Some(n.text.clone());
                    }
                }
            }
            "drop" if !exempt[i] && t.kind == TokKind::Ident && text(i + 1) == Some("(") => {
                // `drop(g)` / `mem::drop(g)` ends g's scope early.
                if let (Some(arg), Some(")")) = (toks.get(i + 2), text(i + 3)) {
                    if arg.kind == TokKind::Ident {
                        let (dead, rest): (Vec<_>, Vec<_>) =
                            live.drain(..).partition(|g| g.name == arg.text);
                        live = rest;
                        for g in dead {
                            kill(g, t.line, &mut out);
                        }
                    }
                }
            }
            _ if !exempt[i] && t.kind == TokKind::Ident && text(i + 1) == Some("(") => {
                let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                let name = t.text.as_str();
                let empty_args = text(i + 2) == Some(")");
                if is_acquisition(name, prev, empty_args) {
                    let tail = receiver_tail(toks, i);
                    let lock = format!("{file_stem}::{tail}");
                    for g in &live {
                        if g.lock != lock {
                            out.edges.push(LockEdge {
                                held: g.lock.clone(),
                                held_line: g.line,
                                acquired: lock.clone(),
                                line: t.line,
                            });
                        }
                    }
                    if let Some((fname, _)) = fn_stack.last() {
                        fns.entry(fname.clone())
                            .or_default()
                            .locks
                            .push(lock.clone());
                    }
                    let (gname, depth, temp_paren) = match &pending_let {
                        Some((n, d)) => (n.clone(), *d, None),
                        None => ("<temp>".to_string(), brace, Some(paren)),
                    };
                    live.push(LiveGuard {
                        name: gname,
                        lock,
                        line: t.line,
                        depth,
                        temp_paren,
                    });
                } else if CONDVAR_WAITS.contains(&name) && prev == Some(".") {
                    // Condvar waits release the guard while blocked —
                    // the correct idiom, never a finding.
                } else if let Some(what) = blocking_call(name, prev, empty_args) {
                    if let Some(g) = live.last() {
                        out.blocking.push(BlockingCall {
                            line: t.line,
                            what: what.to_string(),
                            held: g.lock.clone(),
                            held_line: g.line,
                        });
                    }
                } else if !NOT_CALLS.contains(&name) {
                    if let Some((fname, _)) = fn_stack.last() {
                        fns.entry(fname.clone())
                            .or_default()
                            .calls
                            .push(name.to_string());
                    }
                    if !GENERIC_CALLEES.contains(&name) {
                        for g in &live {
                            out.held_calls.push(HeldCall {
                                held: g.lock.clone(),
                                held_line: g.line,
                                callee: name.to_string(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // File ended: close anything still live (tail expressions).
    let last_line = toks.last().map_or(0, |t| t.line);
    for g in live.drain(..) {
        kill(g, last_line, &mut out);
    }
    out.fns = fns.into_iter().collect();
    out
}

/// Whether `name(` with `prev` before it is a `Mutex`/`RwLock`
/// acquisition. Empty argument lists only: `stream.read(&mut buf)` is
/// I/O, `rw.read()` is a lock.
fn is_acquisition(name: &str, prev: Option<&str>, empty_args: bool) -> bool {
    prev == Some(".") && empty_args && matches!(name, "lock" | "read" | "write" | "try_lock")
}

/// Whether `name(` is a blocking call (with enough argument-shape
/// disambiguation to leave `path.join("x")` and `rw.read()` alone).
fn blocking_call(name: &str, prev: Option<&str>, empty_args: bool) -> Option<&'static str> {
    let method = prev == Some(".");
    match name {
        "sleep" => Some("sleep"),
        "join" if method && empty_args => Some("join"),
        "accept" if method && empty_args => Some("accept"),
        "recv" if method => Some("recv"),
        "recv_timeout" if method => Some("recv_timeout"),
        "recv_deadline" if method => Some("recv_deadline"),
        "connect" if prev == Some("::") || method => Some("connect"),
        "read" | "write" if method && !empty_args => Some("socket/file I/O"),
        "read_exact" | "read_to_end" | "read_to_string" | "read_line" | "write_all" | "flush"
            if method =>
        {
            Some("socket/file I/O")
        }
        _ => None,
    }
}

/// The receiver identity of a method call: the identifier before the
/// final `.` (`self.inner.lock()` → `inner`, `CURRENT.read()` →
/// `CURRENT`, `self.lock()` → `self`). Computed receivers (`foo().lock()`)
/// collapse to `<expr>`.
fn receiver_tail(toks: &[Tok], call: usize) -> String {
    let recv = call.checked_sub(2).map(|j| &toks[j]);
    match recv {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Concurrency {
        let lexed = lex(src);
        let exempt = vec![false; lexed.toks.len()];
        analyze("t", &lexed.toks, &exempt)
    }

    #[test]
    fn bound_guard_lives_to_block_end_and_nested_acquire_is_an_edge() {
        let src = "\
fn f(&self) {
    let a = self.first.lock();
    {
        let b = self.second.lock();
        use_both(&a, &b);
    }
}
";
        let c = run(src);
        assert_eq!(c.edges.len(), 1);
        assert_eq!(c.edges[0].held, "t::first");
        assert_eq!(c.edges[0].acquired, "t::second");
        assert_eq!(c.edges[0].line, 4);
        let a = c.guards.iter().find(|g| g.name == "a").unwrap();
        let b = c.guards.iter().find(|g| g.name == "b").unwrap();
        assert_eq!((a.acquire_line, a.end_line), (2, 7));
        assert_eq!((b.acquire_line, b.end_line), (4, 6));
    }

    #[test]
    fn early_drop_ends_the_scope_before_the_blocking_call() {
        let src = "\
fn f(&self) {
    let g = self.state.lock();
    touch(&g);
    drop(g);
    std::thread::sleep(ms(5));
}
";
        let c = run(src);
        assert!(c.blocking.is_empty(), "{:?}", c.blocking);
        let g = &c.guards[0];
        assert_eq!((g.acquire_line, g.end_line), (2, 4));
    }

    #[test]
    fn sleep_under_live_guard_is_flagged_with_both_lines() {
        let src = "\
fn f(&self) {
    let g = self.state.lock();
    std::thread::sleep(ms(5));
}
";
        let c = run(src);
        assert_eq!(c.blocking.len(), 1);
        assert_eq!(c.blocking[0].line, 3);
        assert_eq!(c.blocking[0].held, "t::state");
        assert_eq!(c.blocking[0].held_line, 2);
    }

    #[test]
    fn statement_temporary_dies_at_the_semicolon() {
        let src = "\
fn f(&self) {
    self.state.lock().field = 1;
    std::thread::sleep(ms(5));
}
";
        let c = run(src);
        assert!(c.blocking.is_empty(), "{:?}", c.blocking);
        assert_eq!(c.guards[0].name, "<temp>");
        assert_eq!((c.guards[0].acquire_line, c.guards[0].end_line), (2, 2));
    }

    #[test]
    fn condvar_wait_is_never_blocking_and_io_read_is_not_a_lock() {
        let src = "\
fn f(&self) {
    let mut inner = self.inner.lock();
    let (g, _) = self.cv.wait_timeout(inner, d);
    inner = g;
    let n = stream.read(&mut buf);
}
";
        let c = run(src);
        // wait_timeout: exempt; stream.read(&mut buf): I/O *is* blocking
        // under the still-live guard.
        assert_eq!(c.blocking.len(), 1);
        assert_eq!(c.blocking[0].what, "socket/file I/O");
        assert_eq!(c.blocking[0].line, 5);
        // Only one acquisition was tracked (the mutex; not the I/O read).
        assert_eq!(c.guards.len(), 1);
        assert_eq!(c.guards[0].lock, "t::inner");
    }

    #[test]
    fn rwlock_empty_read_write_are_acquisitions() {
        let src = "\
fn f(&self) {
    let r = CURRENT.read();
    let w = TABLE.write();
}
";
        let c = run(src);
        assert_eq!(c.guards.len(), 2); // both die at the fn's closing brace
        let mut locks: Vec<&str> = c.edges.iter().map(|e| e.acquired.as_str()).collect();
        locks.sort_unstable();
        assert_eq!(locks, ["t::TABLE"]);
        assert_eq!(c.edges[0].held, "t::CURRENT");
    }

    #[test]
    fn fn_summaries_carry_locks_and_calls() {
        let src = "\
fn alpha(&self) {
    let g = self.a.lock();
    beta_helper();
}
fn beta_helper() {
    other.b.lock().x = 1;
}
";
        let c = run(src);
        let alpha = &c.fns.iter().find(|(n, _)| n == "alpha").unwrap().1;
        assert_eq!(alpha.locks, ["t::a"]);
        assert!(alpha.calls.contains(&"beta_helper".to_string()));
        let beta = &c.fns.iter().find(|(n, _)| n == "beta_helper").unwrap().1;
        assert_eq!(beta.locks, ["t::b"]);
        // The held call feeds interprocedural edge construction.
        assert!(c
            .held_calls
            .iter()
            .any(|h| h.held == "t::a" && h.callee == "beta_helper"));
    }

    #[test]
    fn guard_scopes_track_across_nested_blocks_and_shadowing() {
        // The lexer-level regression the fixtures satellite asks for:
        // nested blocks, early drop inside an inner block, and a
        // same-named rebinding afterwards.
        let src = "\
fn f(&self) {
    let g = self.outer.lock();
    {
        let g = self.inner.lock();
        drop(g);
        std::thread::sleep(ms(1));
    }
    drop(g);
    std::thread::sleep(ms(2));
}
";
        let c = run(src);
        // The inner drop(g) kills *both* same-named guards (conservative
        // under-approximation) — so neither sleep fires. What matters is
        // no false positive after an explicit drop.
        assert!(c.blocking.is_empty(), "{:?}", c.blocking);
        assert_eq!(c.guards.len(), 2);
    }
}
