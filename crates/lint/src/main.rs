//! The `mupod-lint` binary: `cargo run -p mupod-lint [-- --root DIR] [--strict]`.
//!
//! Exit codes: 0 — every invariant holds (all escapes explained);
//! 1 — violations found (under `--strict`, stale escapes too);
//! 2 — usage or I/O error.

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut strict = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("usage error: missing value for --root");
                    std::process::exit(2);
                };
                root = Some(PathBuf::from(value));
                i += 2;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "mupod-lint — workspace invariant checker (DESIGN.md §10, §15)\n\n\
                     USAGE: mupod-lint [--root DIR] [--strict]\n\n\
                     Scans every crate for violations of the project's nine\n\
                     invariant rules and exits non-zero on any violation or\n\
                     unexplained `lint:allow` escape. With --strict, stale\n\
                     escapes (suppressing nothing) are errors too."
                );
                return;
            }
            other => {
                eprintln!("usage error: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(find_workspace_root);
    match mupod_lint::lint_workspace(&root) {
        Ok(mut report) => {
            report.strict = strict;
            print!("{}", report.render());
            let clean = if strict {
                report.is_clean_strict()
            } else {
                report.is_clean()
            };
            if !clean {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Walks upward from the current directory to the first ancestor that
/// has a `crates/` directory, so the tool works from any crate dir
/// (`cargo run -p mupod-lint` sets cwd to the invocation dir).
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
